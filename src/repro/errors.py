"""Exception hierarchy shared by every subsystem of the reproduction.

Each subpackage raises subclasses of :class:`ReproError` so that callers can
catch either a precise error (for example :class:`SubscriptionError`) or any
library failure with a single ``except ReproError`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class XMLError(ReproError):
    """Base class for errors of the XML substrate (``repro.xmlstore``)."""


class XMLSyntaxError(XMLError):
    """Raised when the XML tokenizer or parser rejects its input.

    Carries ``line`` and ``column`` attributes (1-based) pointing at the
    offending position when they are known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class PathSyntaxError(XMLError):
    """Raised for a malformed path expression (``repro.xmlstore.paths``)."""


class DiffError(ReproError):
    """Base class for errors of the diff/versioning subsystem."""


class DeltaApplyError(DiffError):
    """Raised when a delta cannot be applied to a document version."""


class MiniSQLError(ReproError):
    """Base class for errors of the embedded relational store."""


class SchemaError(MiniSQLError):
    """Raised for invalid table definitions or rows violating a schema."""


class QueryError(ReproError):
    """Raised for malformed or unevaluable XML queries (``repro.query``)."""


class RepositoryError(ReproError):
    """Raised by the document repository (``repro.repository``)."""


class DocumentNotFound(RepositoryError):
    """Raised when a document id or URL is absent from the repository."""


class MonitoringError(ReproError):
    """Base class for Monitoring Query Processor errors (``repro.core``)."""


class UnknownEventError(MonitoringError):
    """Raised when an alert references an atomic event never registered."""


class SubscriptionError(ReproError):
    """Base class for subscription-language and manager errors."""


class SubscriptionSyntaxError(SubscriptionError):
    """Raised when the subscription parser rejects its input."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class WeakConditionError(SubscriptionError):
    """Raised for a ``where`` clause made only of weak atomic conditions.

    Section 5.1 of the paper disallows subscriptions whose condition is a
    single weak event (``new`` / ``updated`` / ``unchanged`` on ``self``)
    because every fetched document would raise an alert.
    """


class ResourceLimitError(SubscriptionError):
    """Raised when a subscription is rejected by the cost controller.

    Section 5.4 of the paper discusses blocking subscriptions that would
    require too many resources (for example ``contains "the"``).
    """


class ReportingError(ReproError):
    """Raised by the Reporter (``repro.reporting``)."""


class TriggerError(ReproError):
    """Raised by the Trigger Engine (``repro.triggers``)."""


class PipelineError(ReproError):
    """Raised by the staged ingestion pipeline for configuration mistakes
    (unknown executor name, non-positive batch size, bad fault plans) and
    for violated crawler invariants (a page table entry with no content)."""


class RecoveryError(ReproError):
    """Raised by the crash-recovery subsystem (``repro.recovery``) for
    unusable journals, checkpoint/runtime mismatches and resume misuse."""


class FetchError(ReproError):
    """Base class for failed page fetches (``repro.faults``).

    Crawling "millions of pages per day" (Section 2.2) makes timeouts,
    resets, server errors and corrupt payloads routine; the fault
    taxonomy classifies them so resilience policies can react per class.

    ``transient`` marks failures a retry may cure (the retry policy
    reschedules them at the backoff interval); permanent failures go
    straight to the dead-letter queue.  ``kind`` is the canonical label
    used by the ``faults.injected{kind=...}`` metric.
    """

    transient = True
    kind = "fetch"

    def __init__(self, message: str, url: str = ""):
        super().__init__(message)
        self.url = url


class FetchTimeout(FetchError):
    """The fetch exceeded its deadline; the page may well be fine."""

    kind = "timeout"


class FetchConnectionReset(FetchError):
    """The connection dropped mid-exchange (peer reset, broken pipe)."""

    kind = "reset"


class FetchServerError(FetchError):
    """The server answered with a 5xx status.

    Carries the ``status`` code; 5xx responses are overload or deploy
    blips far more often than permanent death, so they are transient.
    """

    kind = "http_5xx"

    def __init__(self, message: str, url: str = "", status: int = 503):
        super().__init__(message, url=url)
        self.status = status


class TruncatedFetch(FetchError):
    """The payload stopped short of its declared length (connection died
    mid-body); ``payload`` holds the partial content when known."""

    kind = "truncated"

    def __init__(self, message: str, url: str = "", payload: str = ""):
        super().__init__(message, url=url)
        self.payload = payload


class GarbageFetch(FetchError):
    """The payload arrived complete but corrupt (undecodable bytes).

    Refetching a server that serves garbage returns the same garbage, so
    this class is *not* transient: it is quarantined, not retried.
    """

    transient = False
    kind = "garbage"

    def __init__(self, message: str, url: str = "", payload: str = ""):
        super().__init__(message, url=url)
        self.payload = payload
