"""Simulated time for the whole system.

The paper's Trigger Engine evaluates continuous queries "biweekly" or
"weekly", and the Reporter supports ``daily``/``weekly``/``monthly`` report
conditions and ``atmost weekly`` rate limits.  Replaying weeks of wall-clock
time in tests and benchmarks requires a controllable clock, so every module
takes a :class:`Clock` and never calls ``time.time`` directly.

Two implementations are provided:

* :class:`SimulatedClock` — starts at an arbitrary epoch and only moves when
  ``advance`` or ``set_time`` is called.  This is what the pipeline, tests
  and benchmarks use.
* :class:`WallClock` — thin adapter over ``time.time`` for interactive use.
"""

from __future__ import annotations

import time as _time

#: Number of seconds in one day; time arithmetic throughout the library uses
#: seconds-since-epoch floats.
SECONDS_PER_DAY = 86_400.0
SECONDS_PER_HOUR = 3_600.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY
#: The paper's ``monthly`` archive/report periods; 30 days is the convention.
SECONDS_PER_MONTH = 30 * SECONDS_PER_DAY


class Clock:
    """Interface: a source of the current time in seconds since epoch."""

    def now(self) -> float:
        raise NotImplementedError


class SimulatedClock(Clock):
    """A clock that moves only when told to.

    >>> clock = SimulatedClock(start=1000.0)
    >>> clock.now()
    1000.0
    >>> clock.advance(60)
    >>> clock.now()
    1060.0
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward; negative amounts are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot move time backwards by {seconds}s")
        self._now += seconds

    def advance_days(self, days: float) -> None:
        self.advance(days * SECONDS_PER_DAY)

    def set_time(self, timestamp: float) -> None:
        """Jump to an absolute time; must not be in the past."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot set time to {timestamp} before current {self._now}"
            )
        self._now = float(timestamp)


class WallClock(Clock):
    """Real time, for interactive/production use."""

    def now(self) -> float:
        return _time.time()
