"""URL prefix-pattern detection structures (Section 6.2).

``URL extends string`` is "by far the most critical in terms of
performance".  The paper's production structure is a hash table of
prefixes: "given the URL of the document that is being fetched, we look up
each of its prefixes to see if it matches the 'URL*' pattern of some atomic
event.  The dominating cost is the look-up in the million-records hash
table."  They also tried "a dictionary structure" (a trie): ~30% faster
lookups "but in terms of memory size, the overhead was too high".

Both structures are implemented here so ``bench_url_alerter`` can reproduce
that trade-off:

* :class:`PrefixHashTable` — dict keyed by prefix string; lookup hashes
  every prefix of the URL (O(len(url)) hashes, each O(len) to compute —
  the cost the paper describes).
* :class:`PrefixTrie` — character trie; one O(len(url)) walk collects all
  matching prefixes, at a large per-node memory cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set


class PrefixHashTable:
    """Hash-table prefix matcher (the paper's production structure)."""

    def __init__(self):
        self._codes_by_prefix: Dict[str, Set[int]] = {}
        #: Lengths at which at least one registered prefix exists; looking
        #: up only these lengths preserves the hash-table design while
        #: skipping lengths that cannot match.
        self._lengths: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._codes_by_prefix)

    def add(self, prefix: str, code: int) -> None:
        entries = self._codes_by_prefix.setdefault(prefix, set())
        if not entries:
            self._lengths[len(prefix)] = self._lengths.get(len(prefix), 0) + 1
        entries.add(code)

    def remove(self, prefix: str, code: int) -> None:
        entries = self._codes_by_prefix.get(prefix)
        if entries is None:
            return
        entries.discard(code)
        if not entries:
            del self._codes_by_prefix[prefix]
            remaining = self._lengths.get(len(prefix), 0) - 1
            if remaining <= 0:
                self._lengths.pop(len(prefix), None)
            else:
                self._lengths[len(prefix)] = remaining

    def matches(self, url: str) -> Set[int]:
        """Codes of all registered prefixes that ``url`` extends."""
        out: Set[int] = set()
        table = self._codes_by_prefix
        for length in self._lengths:
            if length <= len(url):
                entries = table.get(url[:length])
                if entries:
                    out |= entries
        return out

    def matches_scanning_all_prefixes(self, url: str) -> Set[int]:
        """The paper's literal strategy: hash every prefix of the URL.

        Kept for the benchmark ablation; ``matches`` skips impossible
        lengths but performs the same hash-table lookups otherwise.
        """
        out: Set[int] = set()
        table = self._codes_by_prefix
        for end in range(1, len(url) + 1):
            entries = table.get(url[:end])
            if entries:
                out |= entries
        return out


class _TrieNode:
    __slots__ = ("children", "codes")

    def __init__(self):
        self.children: Dict[str, "_TrieNode"] = {}
        self.codes: Optional[Set[int]] = None


class PrefixTrie:
    """Character-trie prefix matcher (the paper's memory-hungry variant)."""

    def __init__(self):
        self._root = _TrieNode()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, prefix: str, code: int) -> None:
        node = self._root
        for ch in prefix:
            child = node.children.get(ch)
            if child is None:
                child = _TrieNode()
                node.children[ch] = child
            node = child
        if node.codes is None:
            node.codes = set()
            self._count += 1
        node.codes.add(code)

    def remove(self, prefix: str, code: int) -> None:
        # Walk down remembering the path for pruning.
        path: List[tuple] = []
        node = self._root
        for ch in prefix:
            child = node.children.get(ch)
            if child is None:
                return
            path.append((node, ch))
            node = child
        if node.codes is None:
            return
        node.codes.discard(code)
        if node.codes:
            return
        node.codes = None
        self._count -= 1
        for parent, ch in reversed(path):
            child = parent.children[ch]
            if child.codes is None and not child.children:
                del parent.children[ch]
            else:
                break

    def matches(self, url: str) -> Set[int]:
        out: Set[int] = set()
        node = self._root
        if node.codes:
            out |= node.codes
        for ch in url:
            node = node.children.get(ch)
            if node is None:
                break
            if node.codes:
                out |= node.codes
        return out

    def node_count(self) -> int:
        """Trie size — the memory overhead the paper rejected."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count
