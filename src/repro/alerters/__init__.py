"""Alerters (Section 6): atomic-event detection on the document flow.

* :class:`URLAlerter` — metadata conditions (URL patterns, ids, dates,
  statuses), with both prefix structures of Section 6.2.
* :class:`XMLAlerter` — the postorder WordTable/TagTable algorithm for
  ``contains`` / ``strict contains`` plus element-level change events.
* :class:`HTMLAlerter` — keyword containment on raw pages (the extension
  the paper left unimplemented).
* :class:`AlerterChain` — collection, ordering, weak/strong gating.
"""

from .base import Alerter
from .chain import AlerterChain, DetectorState, merge_detections
from .context import FetchedDocument
from .html_alerter import HTMLAlerter, strip_markup
from .url_alerter import URLAlerter
from .url_patterns import PrefixHashTable, PrefixTrie
from .xml_alerter import XMLAlerter

__all__ = [
    "Alerter",
    "AlerterChain",
    "DetectorState",
    "FetchedDocument",
    "merge_detections",
    "HTMLAlerter",
    "strip_markup",
    "URLAlerter",
    "PrefixHashTable",
    "PrefixTrie",
    "XMLAlerter",
]
