"""The HTML Alerter.

The paper lists HTML alerters in the architecture but notes they were not
implemented ("Only the first two have been implemented", Section 3); we
build them as the extension the design calls for.  HTML pages are not
warehoused, so the only content condition available is keyword containment
on the raw page text (tags stripped); document-level statuses come from the
page-signature comparison done by the repository.
"""

from __future__ import annotations

import re
from typing import Any, Dict, FrozenSet, Set

from ..core.events import AtomicEventKey
from ..xmlstore.words import iter_words
from .base import Alerter, Detection, reject_unknown
from .context import FetchedDocument

_TAG_RE = re.compile(r"<[^>]*>")
_SCRIPT_RE = re.compile(
    r"<(script|style)\b[^>]*>.*?</\1>", re.IGNORECASE | re.DOTALL
)


def strip_markup(html: str) -> str:
    """Visible text of an HTML page (crude but sufficient for keywords)."""
    without_blocks = _SCRIPT_RE.sub(" ", html)
    return _TAG_RE.sub(" ", without_blocks)


class HTMLAlerter(Alerter):
    kinds: FrozenSet[str] = frozenset({"self_contains"})

    def __init__(self):
        self._words: Dict[str, Set[int]] = {}

    def register(self, code: int, key: AtomicEventKey) -> None:
        if key.kind != "self_contains":
            reject_unknown(self, key)
        self._words.setdefault(str(key.argument), set()).add(code)

    def unregister(self, code: int, key: AtomicEventKey) -> None:
        if key.kind != "self_contains":
            reject_unknown(self, key)
        entries = self._words.get(str(key.argument))
        if entries is not None:
            entries.discard(code)
            if not entries:
                del self._words[str(key.argument)]

    def detect(self, fetched: FetchedDocument) -> Detection:
        codes: Set[int] = set()
        data: Dict[int, Any] = {}
        if fetched.raw_content is None or not self._words:
            return codes, data
        table = self._words
        for word in iter_words(strip_markup(fetched.raw_content)):
            entries = table.get(word)
            if entries:
                codes |= entries
        return codes, data
