"""The XML Alerter (Section 6.3).

Handles the element-level conditions::

    ( changekind ) tag ( (strict) contains word )

plus ``self contains word``.  Word/tag detection follows the paper's
algorithm: a postorder traversal of the tree where, at each node, the set
of *interesting* words below it is available — "this is where we benefit
from the postordering".  ``contains`` means the word occurs anywhere in the
element's subtree; ``strict contains`` means in a data child of the element
itself ("two data children of the node may be separated by an element
node").

The data structures mirror Figure 8: a ``WordTable`` keyed by word whose
entries are ``TagTable``s keyed by tag yielding atomic-event codes — one
pair of tables for ``contains``, one for ``strict contains``.

Change conditions (``new Product`` ...) are evaluated against the
element-level change classification computed by the diff subsystem
(``repro.diff.changes``): "for the detection of changes we compute the
delta between the document that is being loaded and its previous version".
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.events import AtomicEventKey
from ..xmlstore.nodes import ElementNode, TextNode
from ..xmlstore.serializer import serialize
from ..xmlstore.words import iter_words
from .base import Alerter, Detection, reject_unknown
from .context import FetchedDocument

_CHANGE_KINDS = {
    "tag_new": "new",
    "tag_updated": "updated",
    "tag_deleted": "deleted",
}

#: At most this many matched elements are serialized into an alert's data
#: payload per atomic event (keeps alerts bounded on huge catalogs).
MAX_PAYLOAD_ELEMENTS = 32


class XMLAlerter(Alerter):
    kinds: FrozenSet[str] = frozenset(
        {"self_contains", "tag_present", "tag_new", "tag_updated",
         "tag_deleted"}
    )

    def __init__(self):
        #: word -> codes for ``self contains word``.
        self._self_words: Dict[str, Set[int]] = {}
        #: WordTable for ``contains``: word -> TagTable (tag -> codes).
        self._contains: Dict[str, Dict[str, Set[int]]] = {}
        #: WordTable for ``strict contains``.
        self._strict: Dict[str, Dict[str, Set[int]]] = {}
        #: tag -> codes for bare ``tag`` presence conditions.
        self._present: Dict[str, Set[int]] = {}
        #: change kind -> tag -> [(word or None, strict, code)].
        self._changes: Dict[str, Dict[str, List[Tuple[Optional[str], bool, int]]]] = {
            "new": {},
            "updated": {},
            "deleted": {},
        }
        #: Words that appear in any word table (the pruning filter).
        self._interesting_words: Dict[str, int] = {}

    # -- registration -----------------------------------------------------------

    def register(self, code: int, key: AtomicEventKey) -> None:
        kind = key.kind
        if kind == "self_contains":
            word = str(key.argument)
            self._self_words.setdefault(word, set()).add(code)
            self._track_word(word, +1)
        elif kind == "tag_present":
            tag, word, strict = key.argument  # type: ignore[misc]
            if word is None:
                self._present.setdefault(tag, set()).add(code)
            else:
                table = self._strict if strict else self._contains
                table.setdefault(word, {}).setdefault(tag, set()).add(code)
                self._track_word(word, +1)
        elif kind in _CHANGE_KINDS:
            tag, word, strict = key.argument  # type: ignore[misc]
            change_kind = _CHANGE_KINDS[kind]
            self._changes[change_kind].setdefault(tag, []).append(
                (word, strict, code)
            )
        else:
            reject_unknown(self, key)

    def unregister(self, code: int, key: AtomicEventKey) -> None:
        kind = key.kind
        if kind == "self_contains":
            word = str(key.argument)
            entries = self._self_words.get(word)
            if entries is not None:
                entries.discard(code)
                if not entries:
                    del self._self_words[word]
                self._track_word(word, -1)
        elif kind == "tag_present":
            tag, word, strict = key.argument  # type: ignore[misc]
            if word is None:
                entries = self._present.get(tag)
                if entries is not None:
                    entries.discard(code)
                    if not entries:
                        del self._present[tag]
            else:
                table = self._strict if strict else self._contains
                tag_table = table.get(word)
                if tag_table is not None:
                    entries = tag_table.get(tag)
                    if entries is not None:
                        entries.discard(code)
                        if not entries:
                            del tag_table[tag]
                    if not tag_table:
                        del table[word]
                    self._track_word(word, -1)
        elif kind in _CHANGE_KINDS:
            tag, word, strict = key.argument  # type: ignore[misc]
            change_kind = _CHANGE_KINDS[kind]
            tag_entries = self._changes[change_kind].get(tag)
            if tag_entries is not None:
                self._changes[change_kind][tag] = [
                    entry for entry in tag_entries if entry[2] != code
                ]
                if not self._changes[change_kind][tag]:
                    del self._changes[change_kind][tag]
        else:
            reject_unknown(self, key)

    def _track_word(self, word: str, delta: int) -> None:
        count = self._interesting_words.get(word, 0) + delta
        if count <= 0:
            self._interesting_words.pop(word, None)
        else:
            self._interesting_words[word] = count

    # -- detection ----------------------------------------------------------------

    def detect(self, fetched: FetchedDocument) -> Detection:
        codes: Set[int] = set()
        data: Dict[int, Any] = {}
        if fetched.document is None:
            return codes, data
        self._walk(fetched.document.root, codes)
        self._detect_changes(fetched, codes, data)
        return codes, data

    def _walk(self, element: ElementNode, codes: Set[int]) -> Set[str]:
        """Postorder walk; returns the interesting words of the subtree.

        Only words present in some word table are propagated upward, the
        space optimization Section 6.3 describes ("keeping in this
        structure only words that are interesting").
        """
        interesting = self._interesting_words
        subtree_words: Set[str] = set()
        direct_words: Set[str] = set()
        for child in element.children:
            if isinstance(child, TextNode):
                for word in iter_words(child.data):
                    if word in interesting:
                        direct_words.add(word)
            else:
                assert isinstance(child, ElementNode)
                subtree_words |= self._walk(child, codes)
        subtree_words |= direct_words

        tag = element.tag
        present = self._present.get(tag)
        if present:
            codes |= present
        for word in subtree_words:
            entries = self._self_words.get(word)
            if entries:
                codes |= entries
            tag_table = self._contains.get(word)
            if tag_table:
                tagged = tag_table.get(tag)
                if tagged:
                    codes |= tagged
        for word in direct_words:
            tag_table = self._strict.get(word)
            if tag_table:
                tagged = tag_table.get(tag)
                if tagged:
                    codes |= tagged
        return subtree_words

    # -- element-level change events -----------------------------------------------

    def _detect_changes(
        self,
        fetched: FetchedDocument,
        codes: Set[int],
        data: Dict[int, Any],
    ) -> None:
        changes = fetched.changes
        if changes is None:
            if fetched.status == "new" and fetched.document is not None:
                # A brand-new document: every element counts as new.
                new_table = self._changes["new"]
                if new_table:
                    for node in fetched.document.root.preorder():
                        if isinstance(node, ElementNode):
                            self._match_change(
                                new_table, node, codes, data
                            )
            return
        for change_kind, elements in (
            ("new", changes.new_elements),
            ("updated", changes.updated_elements),
            ("deleted", changes.deleted_elements),
        ):
            table = self._changes[change_kind]
            if not table:
                continue
            for element in elements:
                self._match_change(table, element, codes, data)

    def _match_change(
        self,
        table: Dict[str, List[Tuple[Optional[str], bool, int]]],
        element: ElementNode,
        codes: Set[int],
        data: Dict[int, Any],
    ) -> None:
        entries = table.get(element.tag)
        if not entries:
            return
        subtree_words: Optional[Set[str]] = None
        direct_words: Optional[Set[str]] = None
        for word, strict, code in entries:
            if word is None:
                matched = True
            elif strict:
                if direct_words is None:
                    direct_words = _direct_words(element)
                matched = word in direct_words
            else:
                if subtree_words is None:
                    subtree_words = _subtree_words(element)
                matched = word in subtree_words
            if matched:
                codes.add(code)
                payload = data.setdefault(code, [])
                if len(payload) < MAX_PAYLOAD_ELEMENTS:
                    payload.append(serialize(element))


def _direct_words(element: ElementNode) -> Set[str]:
    words: Set[str] = set()
    for child in element.children:
        if isinstance(child, TextNode):
            words |= set(iter_words(child.data))
    return words


def _subtree_words(element: ElementNode) -> Set[str]:
    """Distinct words of every text node under ``element``.

    Collected per text node, never across node boundaries (the same word
    definition the postorder walk and the warehouse index use).
    """
    words: Set[str] = set()
    for node in element.preorder():
        if isinstance(node, TextNode):
            words |= set(iter_words(node.data))
    return words
