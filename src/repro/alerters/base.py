"""Alerter protocol.

"The role of the Alerters is to detect these events for each document
entering the system" (Section 3).  The Subscription Manager "(dynamically)
warns the Alerters of the creation of new events, their codes and semantic"
— hence ``register``/``unregister``.  ``detect`` returns the codes raised
for one document plus any per-event data requested by select clauses.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Set, Tuple

from ..core.events import AtomicEventKey
from ..errors import MonitoringError
from .context import FetchedDocument

#: ``detect`` result: (codes raised, {code: data payload}).
Detection = Tuple[Set[int], Dict[int, Any]]


class Alerter:
    """Base class: kind routing + registration bookkeeping."""

    #: Event-key kinds this alerter handles; subclasses set this.
    kinds: FrozenSet[str] = frozenset()

    def handles(self, key: AtomicEventKey) -> bool:
        return key.kind in self.kinds

    def register(self, code: int, key: AtomicEventKey) -> None:
        """Start detecting the event ``key`` under ``code``."""
        raise NotImplementedError

    def unregister(self, code: int, key: AtomicEventKey) -> None:
        """Stop detecting ``key``."""
        raise NotImplementedError

    def detect(self, fetched: FetchedDocument) -> Detection:
        raise NotImplementedError


def reject_unknown(alerter: Alerter, key: AtomicEventKey) -> None:
    raise MonitoringError(
        f"{type(alerter).__name__} does not handle event kind {key.kind!r}"
    )
