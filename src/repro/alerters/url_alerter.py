"""The URL Alerter (Section 6.2).

Detects every atomic condition that reads only document *metadata*: the
three URL pattern families (``extends`` / ``filename`` / exact), warehouse
identifiers (DOCID, DTDID, DTD url, domain), fetch dates (LastAccessed /
LastUpdate) and the document-level change statuses.  "We use several data
structures depending on the nature of the conditions ... essentially hash
tables and extensible arrays."
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Set, Tuple

from ..core.events import AtomicEventKey
from ..diff.changes import DOC_NEW, DOC_UNCHANGED, DOC_UPDATED
from .base import Alerter, Detection, reject_unknown
from .context import FetchedDocument
from .url_patterns import PrefixHashTable, PrefixTrie

_STATUS_KINDS = {
    "doc_new": DOC_NEW,
    "doc_updated": DOC_UPDATED,
    "doc_unchanged": DOC_UNCHANGED,
    "doc_deleted": "deleted",
}
_DATE_KINDS = ("last_accessed", "last_update")

_CMP_FUNCS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class URLAlerter(Alerter):
    kinds: FrozenSet[str] = frozenset(
        {
            "url_extends",
            "url_eq",
            "filename_eq",
            "dtd_eq",
            "dtdid_eq",
            "docid_eq",
            "domain_eq",
            "last_accessed",
            "last_update",
            "doc_new",
            "doc_updated",
            "doc_unchanged",
            "doc_deleted",
        }
    )

    def __init__(self, prefix_structure: str = "hash"):
        """``prefix_structure`` is "hash" (production) or "trie" (ablation)."""
        if prefix_structure == "trie":
            self._prefixes: Any = PrefixTrie()
        else:
            self._prefixes = PrefixHashTable()
        self._exact_urls: Dict[str, Set[int]] = {}
        self._filenames: Dict[str, Set[int]] = {}
        self._dtd_urls: Dict[str, Set[int]] = {}
        self._dtd_ids: Dict[int, Set[int]] = {}
        self._doc_ids: Dict[int, Set[int]] = {}
        self._domains: Dict[str, Set[int]] = {}
        self._statuses: Dict[str, Set[int]] = {}
        #: kind -> list of (comparator, timestamp, code)
        self._dates: Dict[str, List[Tuple[str, float, int]]] = {
            kind: [] for kind in _DATE_KINDS
        }

    # -- registration -----------------------------------------------------------

    def register(self, code: int, key: AtomicEventKey) -> None:
        kind = key.kind
        if kind == "url_extends":
            self._prefixes.add(str(key.argument), code)
        elif kind == "url_eq":
            self._exact_urls.setdefault(str(key.argument), set()).add(code)
        elif kind == "filename_eq":
            self._filenames.setdefault(str(key.argument), set()).add(code)
        elif kind == "dtd_eq":
            self._dtd_urls.setdefault(str(key.argument), set()).add(code)
        elif kind == "dtdid_eq":
            self._dtd_ids.setdefault(int(key.argument), set()).add(code)  # type: ignore[arg-type]
        elif kind == "docid_eq":
            self._doc_ids.setdefault(int(key.argument), set()).add(code)  # type: ignore[arg-type]
        elif kind == "domain_eq":
            self._domains.setdefault(str(key.argument), set()).add(code)
        elif kind in _STATUS_KINDS:
            self._statuses.setdefault(_STATUS_KINDS[kind], set()).add(code)
        elif kind in _DATE_KINDS:
            comparator, timestamp = key.argument  # type: ignore[misc]
            self._dates[kind].append((comparator, float(timestamp), code))
        else:
            reject_unknown(self, key)

    def unregister(self, code: int, key: AtomicEventKey) -> None:
        kind = key.kind
        if kind == "url_extends":
            self._prefixes.remove(str(key.argument), code)
        elif kind == "url_eq":
            _discard(self._exact_urls, str(key.argument), code)
        elif kind == "filename_eq":
            _discard(self._filenames, str(key.argument), code)
        elif kind == "dtd_eq":
            _discard(self._dtd_urls, str(key.argument), code)
        elif kind == "dtdid_eq":
            _discard(self._dtd_ids, int(key.argument), code)  # type: ignore[arg-type]
        elif kind == "docid_eq":
            _discard(self._doc_ids, int(key.argument), code)  # type: ignore[arg-type]
        elif kind == "domain_eq":
            _discard(self._domains, str(key.argument), code)
        elif kind in _STATUS_KINDS:
            _discard(self._statuses, _STATUS_KINDS[kind], code)
        elif kind in _DATE_KINDS:
            entries = self._dates[kind]
            self._dates[kind] = [e for e in entries if e[2] != code]
        else:
            reject_unknown(self, key)

    # -- detection ----------------------------------------------------------------

    def detect(self, fetched: FetchedDocument) -> Detection:
        codes: Set[int] = set()
        meta = fetched.meta

        codes |= self._prefixes.matches(fetched.url)
        entries = self._exact_urls.get(fetched.url)
        if entries:
            codes |= entries
        entries = self._filenames.get(meta.filename)
        if entries:
            codes |= entries
        if meta.dtd_url is not None:
            entries = self._dtd_urls.get(meta.dtd_url)
            if entries:
                codes |= entries
        if meta.dtd_id is not None:
            entries = self._dtd_ids.get(meta.dtd_id)
            if entries:
                codes |= entries
        entries = self._doc_ids.get(meta.doc_id)
        if entries:
            codes |= entries
        if meta.domain is not None:
            entries = self._domains.get(meta.domain)
            if entries:
                codes |= entries
        entries = self._statuses.get(fetched.status)
        if entries:
            codes |= entries
        for kind, value in (
            ("last_accessed", meta.last_accessed),
            ("last_update", meta.last_updated),
        ):
            for comparator, threshold, code in self._dates[kind]:
                if _CMP_FUNCS[comparator](value, threshold):
                    codes.add(code)

        data: Dict[int, Any] = {}
        return codes, data


def _discard(table: Dict, key: Any, code: int) -> None:
    entries = table.get(key)
    if entries is not None:
        entries.discard(code)
        if not entries:
            del table[key]
