"""What an alerter sees for one fetched document.

The loader/URL-manager side of the system (simulated by
``repro.pipeline.stream``) packages each fetch into a
:class:`FetchedDocument`: metadata, change status, the parsed document (for
XML), the element-level change classification (when an old version existed)
and the raw content (for HTML keyword scans).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..diff.changes import DocumentChanges
from ..repository.metadata import DocumentMeta
from ..xmlstore.nodes import Document


@dataclass
class FetchedDocument:
    url: str
    meta: DocumentMeta
    #: DOC_NEW / DOC_UPDATED / DOC_UNCHANGED (repro.diff.changes constants).
    status: str
    document: Optional[Document] = None
    changes: Optional[DocumentChanges] = None
    raw_content: Optional[str] = None

    @property
    def is_xml(self) -> bool:
        return self.document is not None
