"""Alerter chain: routing, collection, ordering, weak/strong gating.

"An essential aspect of this process is that we collect all the atomic
events of interest on a given document before sending them to the
Monitoring Query Processor" (Section 6.1) — the chain runs every applicable
alerter, merges their event sets, sorts the codes (Section 6.2: the MQP
"takes advantage of the ordering") and builds one :class:`Alert`.

Section 5.1's gating also lives here: weak events (document statuses) are
included in the alert only when at least one *strong* event fired;
otherwise no alert is sent at all — "a document is detected as potentially
interesting if at least a strong atomic event of interest ... is detected.
In this case only, an alert ... is sent."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..core.events import AtomicEventKey, WEAK_KINDS
from ..core.processor import Alert
from ..errors import MonitoringError
from ..observability.metrics import MetricsRegistry, NULL_REGISTRY
from ..observability.names import (
    COUNTER_ALERTS_BUILT,
    COUNTER_ALERTS_SUPPRESSED,
    STAGE_ALERTERS_BUILD_ALERT,
)
from ..observability.tracing import StageTracer
from .base import Alerter
from .context import FetchedDocument
from .html_alerter import HTMLAlerter
from .url_alerter import URLAlerter
from .xml_alerter import XMLAlerter


def merge_detections(
    alerters: Sequence[Alerter], fetched: FetchedDocument
) -> Tuple[Set[int], Dict[int, Any]]:
    """Run every alerter over one document and merge the detections.

    Pure: only the registered pattern tables are read, so the same
    function serves the in-process chain and the process-pool workers
    (which run it over a pickled :class:`DetectorState` snapshot).
    """
    codes: Set[int] = set()
    data: Dict[int, Any] = {}
    for alerter in alerters:
        detected, payload = alerter.detect(fetched)
        codes |= detected
        data.update(payload)
    return codes, data


#: Process-unique serial per chain, so a worker-side detector cache can
#: never confuse snapshots of two different chains (id() values can be
#: recycled after garbage collection; these serials never are).
_CHAIN_SERIALS = itertools.count(1)


@dataclass(frozen=True)
class DetectorState:
    """A picklable snapshot of one chain's pure detection tables.

    ``token`` is ``(chain serial, chain version)``: it changes whenever a
    registration changes, so worker processes can cache the unpickled
    snapshot and only rebuild when the chain actually changed.
    """

    token: Tuple[int, int]
    alerters: Tuple[Alerter, ...]

    def detect_events(
        self, fetched: FetchedDocument
    ) -> Tuple[Set[int], Dict[int, Any]]:
        return merge_detections(self.alerters, fetched)


class AlerterChain:
    """Dispatches registrations by event kind and merges detections."""

    def __init__(
        self,
        alerters: Optional[List[Alerter]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if alerters is None:
            alerters = [URLAlerter(), XMLAlerter(), HTMLAlerter()]
        self.alerters = alerters
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._latency = StageTracer(self.metrics).stage_histogram(
            STAGE_ALERTERS_BUILD_ALERT
        )
        self._built = self.metrics.counter(COUNTER_ALERTS_BUILT)
        self._suppressed = self.metrics.counter(COUNTER_ALERTS_SUPPRESSED)
        #: Codes of weak events currently registered (for gating).
        self._weak_codes: Set[int] = set()
        self._registered: Dict[int, List[Alerter]] = {}
        #: Bumped on every (un)registration; ``detector_state`` tokens
        #: embed it so stale worker-side snapshots are never reused.
        self.version = 0
        self._serial = next(_CHAIN_SERIALS)

    # -- registration -----------------------------------------------------------

    def register(self, code: int, key: AtomicEventKey) -> None:
        targets = [a for a in self.alerters if a.handles(key)]
        if not targets:
            raise MonitoringError(
                f"no alerter handles event kind {key.kind!r}"
            )
        for alerter in targets:
            alerter.register(code, key)
        self._registered[code] = targets
        if key.kind in WEAK_KINDS:
            self._weak_codes.add(code)
        self.version += 1

    def unregister(self, code: int, key: AtomicEventKey) -> None:
        targets = self._registered.pop(code, None)
        if targets is None:
            return
        for alerter in targets:
            alerter.unregister(code, key)
        self._weak_codes.discard(code)
        self.version += 1

    def detector_state(self) -> DetectorState:
        """Snapshot the pure detection tables for out-of-process use."""
        return DetectorState(
            token=(self._serial, self.version),
            alerters=tuple(self.alerters),
        )

    # -- detection ----------------------------------------------------------------

    def build_alert(self, fetched: FetchedDocument) -> Optional[Alert]:
        """Run all alerters; return the alert, or None if only weak events
        (or nothing) fired."""
        start = self.metrics.now()
        codes, data = self.detect_events(fetched)
        return self._finish(self.assemble_alert(fetched, codes, data), start)

    def detect_events(
        self, fetched: FetchedDocument
    ) -> Tuple[Set[int], Dict[int, Any]]:
        """Run every alerter over one document and merge the detections.

        This is the pure, read-only half of :meth:`build_alert`: it only
        reads the registered pattern tables, so executors may run it
        concurrently across documents on worker threads (or, via
        :meth:`detector_state`, in worker processes).
        """
        return merge_detections(self.alerters, fetched)

    def finish_alert(
        self,
        fetched: FetchedDocument,
        detection: Tuple[Set[int], Dict[int, Any]],
    ) -> Optional[Alert]:
        """Gate and assemble a pre-computed detection (second half of
        :meth:`build_alert` for executors that ran :meth:`detect_events` on
        a worker thread); metric counts match :meth:`build_alert` exactly.
        """
        start = self.metrics.now()
        codes, data = detection
        return self._finish(self.assemble_alert(fetched, codes, data), start)

    def assemble_alert(
        self,
        fetched: FetchedDocument,
        codes: Set[int],
        data: Dict[int, Any],
    ) -> Optional[Alert]:
        """Section 5.1 weak/strong gating + alert assembly (no metrics)."""
        if not codes:
            return None
        strong = codes - self._weak_codes
        if not strong:
            return None
        return Alert(
            document_url=fetched.url,
            event_codes=sorted(codes),
            data=data,
        )

    def _finish(self, alert: Optional[Alert], start: float) -> Optional[Alert]:
        self._latency.observe(self.metrics.now() - start)
        if alert is not None:
            self._built.inc()
        else:
            self._suppressed.inc()
        return alert
