"""Lightweight stage-span tracing on top of the metrics registry.

A *stage* is one named step of the document pipeline (``repository.store_xml``,
``mqp.process_alert``, ...).  Entering a span records the start time from the
registry's time source; leaving it feeds the elapsed time into the stage's
latency histogram (``<stage>.latency_seconds``, whose ``count`` is the stage
call count) and remembers the completed span in a bounded ring for
introspection.

Hot paths that cannot afford a context manager per call cache the histogram
returned by :meth:`StageTracer.stage_histogram` and time themselves inline;
both routes feed the same metrics.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)

#: Suffix every stage latency histogram shares.
LATENCY_SUFFIX = ".latency_seconds"


@dataclass(frozen=True)
class Span:
    """One completed stage execution."""

    stage: str
    start: float
    end: float
    labels: Dict[str, str]

    @property
    def duration(self) -> float:
        return self.end - self.start


class StageTracer:
    """Times named stages into per-stage latency histograms.

    ``keep`` bounds the in-memory ring of completed spans (0 disables
    retention entirely, which is what the assembled system uses — the
    histograms alone carry the trajectory).
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        keep: int = 0,
    ):
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._keep = keep
        self._recent: Deque[Span] = deque(maxlen=keep if keep > 0 else 1)

    def stage_histogram(self, stage: str, **labels: str) -> Histogram:
        """The histogram a span of ``stage`` observes into (cacheable)."""
        return self.metrics.histogram(
            stage + LATENCY_SUFFIX, DEFAULT_LATENCY_BUCKETS, **labels
        )

    @contextmanager
    def span(self, stage: str, **labels: str) -> Iterator[None]:
        """Time one stage execution; exceptions still close the span."""
        histogram = self.stage_histogram(stage, **labels)
        start = self.metrics.now()
        try:
            yield
        finally:
            end = self.metrics.now()
            histogram.observe(end - start)
            if self._keep > 0:
                self._recent.append(
                    Span(stage=stage, start=start, end=end, labels=labels)
                )

    def recent(self) -> List[Span]:
        """Completed spans, oldest first (empty unless ``keep`` > 0)."""
        return list(self._recent) if self._keep > 0 else []
