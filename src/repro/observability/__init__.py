"""Pipeline-wide observability: metrics registry + stage-span tracing.

The paper argues for Xyleme with measured, per-stage behavior (documents/day
through the crawler, alerts/second through the MQP, notifications/day out of
the Reporter).  This package gives the reproduction the same visibility:

* :class:`MetricsRegistry` — dependency-free counters, gauges and
  fixed-bucket latency histograms, deterministic under
  :class:`~repro.clock.SimulatedClock`;
* :class:`NullRegistry` / :data:`NULL_REGISTRY` — the injectable no-op every
  instrumented class defaults to, guaranteeing observability never perturbs
  behavior;
* :class:`StageTracer` — spans over named pipeline stages feeding
  ``<stage>.latency_seconds`` histograms;
* :mod:`repro.observability.names` — the canonical metric-name list that
  ``docs/OBSERVABILITY.md`` is tested against.

The assembled :class:`~repro.pipeline.SubscriptionSystem` owns one registry
and exposes ``system.metrics_snapshot()``.
"""

from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    render_key,
    split_key,
)
from .names import ALL_METRIC_NAMES, COUNTER_NAMES, GAUGE_NAMES, STAGE_NAMES
from .tracing import LATENCY_SUFFIX, Span, StageTracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "render_key",
    "split_key",
    "ALL_METRIC_NAMES",
    "COUNTER_NAMES",
    "GAUGE_NAMES",
    "STAGE_NAMES",
    "LATENCY_SUFFIX",
    "Span",
    "StageTracer",
]
