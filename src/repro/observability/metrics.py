"""Dependency-free metrics primitives for the whole pipeline.

The paper evaluates the Xyleme subscription system stage by stage
(documents/day through the crawler, alerts/second through the MQP,
notifications/day through the Reporter); this module provides the raw
material for the same per-stage accounting in the reproduction: counters,
gauges and fixed-bucket latency histograms, interned in one
:class:`MetricsRegistry`.

Design constraints (shared by every instrumented call site):

* **zero dependencies** — plain dicts and lists, stdlib only;
* **injectable** — every instrumented class takes ``metrics=None`` and
  falls back to the shared :data:`NULL_REGISTRY`, whose primitives are
  no-ops, so uninstrumented construction keeps the old behavior and cost;
* **deterministic under a simulated clock** — a registry built over a
  :class:`~repro.clock.SimulatedClock` times stages with that clock, so
  tests can assert *exact* histogram bucket placement; a registry built
  without a clock uses ``time.perf_counter`` for real latencies.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from ..clock import Clock

#: Fixed latency buckets (seconds).  The last implicit bucket is +Inf.
#: Chosen to straddle the paper's regime: sub-millisecond matching, tens of
#: milliseconds for store+diff, seconds for whole-tick timer sweeps.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)

#: Label rendering for +Inf, matching the Prometheus convention.
INF_LABEL = "+Inf"


def format_bound(bound: float) -> str:
    """Stable text form of a bucket upper bound (``0.005`` not ``5e-03``)."""
    text = f"{bound:.6f}".rstrip("0")
    return text + "0" if text.endswith(".") else text


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depths, shard loads)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram; ``count`` doubles as the stage call count."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        #: Non-cumulative counts; one extra slot for the +Inf bucket.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        # First bound >= value is this value's bucket; past the last bound
        # bisect returns len(bounds), which is exactly the +Inf slot.
        self.bucket_counts[bisect_left(self.bounds, value)] += 1

    def bucket_for(self, value: float) -> str:
        """Label of the bucket ``value`` falls in (for test assertions)."""
        for bound in self.bounds:
            if value <= bound:
                return format_bound(bound)
        return INF_LABEL

    def snapshot(self) -> Dict[str, object]:
        buckets = {
            format_bound(bound): self.bucket_counts[i]
            for i, bound in enumerate(self.bounds)
        }
        buckets[INF_LABEL] = self.bucket_counts[-1]
        return {"count": self.count, "sum": self.sum, "buckets": buckets}


def render_key(name: str, labels: Dict[str, str]) -> str:
    """``name{k=v,...}`` with labels sorted — the snapshot dict key."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`render_key`."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels = dict(
        part.split("=", 1) for part in rest.rstrip("}").split(",") if part
    )
    return name, labels


class MetricsRegistry:
    """Interns metrics by (name, labels) and times stages.

    ``clock`` selects the time source for :meth:`now`: a
    :class:`~repro.clock.SimulatedClock` makes every measured latency exact
    (tests advance the clock themselves), ``None`` means wall time via
    ``time.perf_counter``.
    """

    #: Instrumented call sites may skip work entirely for no-op registries.
    enabled = True

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- time ---------------------------------------------------------------

    def now(self) -> float:
        if self.clock is not None:
            return self.clock.now()
        return time.perf_counter()

    # -- metric interning ---------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = render_key(name, labels)
        found = self._counters.get(key)
        if found is None:
            found = self._counters[key] = Counter()
        return found

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = render_key(name, labels)
        found = self._gauges.get(key)
        if found is None:
            found = self._gauges[key] = Gauge()
        return found

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = render_key(name, labels)
        found = self._histograms.get(key)
        if found is None:
            found = self._histograms[key] = Histogram(buckets)
        return found

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view of every metric (JSON-serialisable)."""
        return {
            "counters": {
                key: counter.value
                for key, counter in sorted(self._counters.items())
            },
            "gauges": {
                key: gauge.value
                for key, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                key: histogram.snapshot()
                for key, histogram in sorted(self._histograms.items())
            },
        }

    def counter_total(self, name: str) -> float:
        """Sum of one counter across all label sets."""
        return sum(
            counter.value
            for key, counter in self._counters.items()
            if split_key(key)[0] == name
        )

    def histogram_total(self, name: str) -> int:
        """Sum of one histogram's observation count across label sets."""
        return sum(
            histogram.count
            for key, histogram in self._histograms.items()
            if split_key(key)[0] == name
        )


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """No-op registry: instrumentation with this installed must leave every
    observable behavior of the instrumented code byte-identical."""

    enabled = False

    def __init__(self):
        super().__init__(clock=None)
        self._null_counter = _NullCounter()
        self._null_gauge = _NullGauge()
        self._null_histogram = _NullHistogram(())

    def now(self) -> float:
        return 0.0

    def counter(self, name: str, **labels: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._null_gauge

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._null_histogram

    def snapshot(self) -> Dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Shared default for every ``metrics=None`` call site.
NULL_REGISTRY = NullRegistry()
