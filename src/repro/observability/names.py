"""Canonical metric and stage names.

One authoritative list so the instrumented call sites, the snapshot
readers, ``docs/OBSERVABILITY.md`` and ``tests/test_docs_consistency.py``
cannot drift apart: the doc must mention every name below, and every
metric-shaped name the doc mentions must exist here.
"""

from __future__ import annotations

from typing import Tuple

from .tracing import LATENCY_SUFFIX

# -- stages (each emits `<stage>.latency_seconds`; its `count` is the call
# count for that stage) ------------------------------------------------------

STAGE_REPOSITORY_STORE_XML = "repository.store_xml"
STAGE_REPOSITORY_STORE_HTML = "repository.store_html"
STAGE_ALERTERS_BUILD_ALERT = "alerters.build_alert"
STAGE_MQP_PROCESS_ALERT = "mqp.process_alert"
STAGE_TRIGGERS_TICK = "triggers.tick"
STAGE_REPORTER_TICK = "reporter.tick"

STAGE_NAMES: Tuple[str, ...] = (
    STAGE_REPOSITORY_STORE_XML,
    STAGE_REPOSITORY_STORE_HTML,
    STAGE_ALERTERS_BUILD_ALERT,
    STAGE_MQP_PROCESS_ALERT,
    STAGE_TRIGGERS_TICK,
    STAGE_REPORTER_TICK,
)

# -- counters ----------------------------------------------------------------

COUNTER_REPOSITORY_OUTCOMES = "repository.outcomes"  # labels: kind, status
COUNTER_ALERTS_BUILT = "alerters.alerts_built"
COUNTER_ALERTS_SUPPRESSED = "alerters.alerts_suppressed"
COUNTER_MQP_NOTIFICATIONS = "mqp.notifications"  # label: shard
COUNTER_TRIGGER_EVALUATIONS = "triggers.evaluations"
COUNTER_REPORTS_GENERATED = "reporter.reports"
COUNTER_DOCUMENTS_FED = "pipeline.documents_fed"
COUNTER_DOCUMENTS_REJECTED = "pipeline.documents_rejected"  # label: reason
COUNTER_NOTIFICATIONS_EMITTED = "pipeline.notifications_emitted"

COUNTER_NAMES: Tuple[str, ...] = (
    COUNTER_REPOSITORY_OUTCOMES,
    COUNTER_ALERTS_BUILT,
    COUNTER_ALERTS_SUPPRESSED,
    COUNTER_MQP_NOTIFICATIONS,
    COUNTER_TRIGGER_EVALUATIONS,
    COUNTER_REPORTS_GENERATED,
    COUNTER_DOCUMENTS_FED,
    COUNTER_DOCUMENTS_REJECTED,
    COUNTER_NOTIFICATIONS_EMITTED,
)

# -- gauges ------------------------------------------------------------------

GAUGE_SUBSCRIPTIONS = "pipeline.subscriptions"

GAUGE_NAMES: Tuple[str, ...] = (GAUGE_SUBSCRIPTIONS,)


def stage_latency_name(stage: str) -> str:
    return stage + LATENCY_SUFFIX


#: Every metric name the assembled system can emit.
ALL_METRIC_NAMES: Tuple[str, ...] = tuple(
    sorted(
        COUNTER_NAMES
        + GAUGE_NAMES
        + tuple(stage_latency_name(stage) for stage in STAGE_NAMES)
    )
)
