"""Canonical metric and stage names.

One authoritative list so the instrumented call sites, the snapshot
readers, ``docs/OBSERVABILITY.md`` and ``tests/test_docs_consistency.py``
cannot drift apart: the doc must mention every name below, and every
metric-shaped name the doc mentions must exist here.
"""

from __future__ import annotations

from typing import Tuple

from .tracing import LATENCY_SUFFIX

# -- stages (each emits `<stage>.latency_seconds`; its `count` is the call
# count for that stage) ------------------------------------------------------

STAGE_REPOSITORY_STORE_XML = "repository.store_xml"
STAGE_REPOSITORY_STORE_HTML = "repository.store_html"
STAGE_ALERTERS_BUILD_ALERT = "alerters.build_alert"
STAGE_MQP_PROCESS_ALERT = "mqp.process_alert"
STAGE_TRIGGERS_TICK = "triggers.tick"
STAGE_REPORTER_TICK = "reporter.tick"

STAGE_NAMES: Tuple[str, ...] = (
    STAGE_REPOSITORY_STORE_XML,
    STAGE_REPOSITORY_STORE_HTML,
    STAGE_ALERTERS_BUILD_ALERT,
    STAGE_MQP_PROCESS_ALERT,
    STAGE_TRIGGERS_TICK,
    STAGE_REPORTER_TICK,
)

# -- executor stages (batch path only: they appear when documents are fed
# through feed_batch / run_stream, not through single-document feeds, so
# they are catalogued separately from the always-present STAGE_NAMES) -------

STAGE_EXECUTOR_RUN_BATCH = "executor.run_batch"  # label: executor
STAGE_EXECUTOR_STAGE = "executor.stage"  # labels: executor, stage

EXECUTOR_STAGE_NAMES: Tuple[str, ...] = (
    STAGE_EXECUTOR_RUN_BATCH,
    STAGE_EXECUTOR_STAGE,
)

# -- counters ----------------------------------------------------------------

COUNTER_REPOSITORY_OUTCOMES = "repository.outcomes"  # labels: kind, status
COUNTER_ALERTS_BUILT = "alerters.alerts_built"
COUNTER_ALERTS_SUPPRESSED = "alerters.alerts_suppressed"
COUNTER_MQP_NOTIFICATIONS = "mqp.notifications"  # label: shard
COUNTER_TRIGGER_EVALUATIONS = "triggers.evaluations"
COUNTER_REPORTS_GENERATED = "reporter.reports"
COUNTER_DOCUMENTS_FED = "pipeline.documents_fed"
COUNTER_DOCUMENTS_REJECTED = "pipeline.documents_rejected"  # label: reason
COUNTER_NOTIFICATIONS_EMITTED = "pipeline.notifications_emitted"

# Fault-tolerance counters (``repro.faults`` + resilient crawling): they
# appear only when a fault injector / retry policy / breaker actually
# fires, so zero-fault snapshots stay free of them.
COUNTER_FAULTS_INJECTED = "faults.injected"  # label: kind
COUNTER_RETRY_ATTEMPTS = "retry.attempts"
COUNTER_BREAKER_STATE_CHANGES = "breaker.state_changes"  # label: to
COUNTER_EXECUTOR_FALLBACKS = "executor.fallbacks"  # label: executor
COUNTER_DLQ_QUARANTINED = "dlq.quarantined"  # label: source

# Bounded-ingest counters (the queue between the fetch front-end and the
# batch executor, ``repro.pipeline.ingest``): they appear only when a
# stream actually runs through the bounded queue.
COUNTER_INGEST_BACKPRESSURE_WAITS = "ingest.backpressure_waits"
COUNTER_FRONTEND_FETCHES = "frontend.fetches"

# Crash-recovery counters (``repro.recovery``): lazily interned — they
# appear only when recovery is enabled on a system (or a process worker
# hits its watchdog), so zero-recovery snapshots are byte-identical to
# systems without a journal.
COUNTER_RECOVERY_CHECKPOINTS = "recovery.checkpoints"
COUNTER_RECOVERY_REPLAYED = "recovery.replayed"
COUNTER_RECOVERY_DEDUPED = "recovery.deduped"
COUNTER_EXECUTOR_WATCHDOG_TIMEOUTS = "executor.watchdog_timeouts"

COUNTER_NAMES: Tuple[str, ...] = (
    COUNTER_REPOSITORY_OUTCOMES,
    COUNTER_ALERTS_BUILT,
    COUNTER_ALERTS_SUPPRESSED,
    COUNTER_MQP_NOTIFICATIONS,
    COUNTER_TRIGGER_EVALUATIONS,
    COUNTER_REPORTS_GENERATED,
    COUNTER_DOCUMENTS_FED,
    COUNTER_DOCUMENTS_REJECTED,
    COUNTER_NOTIFICATIONS_EMITTED,
    COUNTER_FAULTS_INJECTED,
    COUNTER_RETRY_ATTEMPTS,
    COUNTER_BREAKER_STATE_CHANGES,
    COUNTER_EXECUTOR_FALLBACKS,
    COUNTER_DLQ_QUARANTINED,
    COUNTER_INGEST_BACKPRESSURE_WAITS,
    COUNTER_FRONTEND_FETCHES,
    COUNTER_RECOVERY_CHECKPOINTS,
    COUNTER_RECOVERY_REPLAYED,
    COUNTER_RECOVERY_DEDUPED,
    COUNTER_EXECUTOR_WATCHDOG_TIMEOUTS,
)

# -- gauges ------------------------------------------------------------------

GAUGE_SUBSCRIPTIONS = "pipeline.subscriptions"
GAUGE_EXECUTOR_QUEUE_DEPTH = "executor.queue_depth"
GAUGE_DLQ_DEPTH = "dlq.depth"

GAUGE_NAMES: Tuple[str, ...] = (
    GAUGE_SUBSCRIPTIONS,
    GAUGE_EXECUTOR_QUEUE_DEPTH,
    GAUGE_DLQ_DEPTH,
)

# -- free-standing histograms (not latency-suffixed stage histograms) --------

HISTOGRAM_BATCH_SIZE = "executor.batch_size"  # label: executor

HISTOGRAM_NAMES: Tuple[str, ...] = (HISTOGRAM_BATCH_SIZE,)


def stage_latency_name(stage: str) -> str:
    return stage + LATENCY_SUFFIX


#: Every metric name the assembled system can emit.
ALL_METRIC_NAMES: Tuple[str, ...] = tuple(
    sorted(
        COUNTER_NAMES
        + GAUGE_NAMES
        + HISTOGRAM_NAMES
        + tuple(
            stage_latency_name(stage)
            for stage in STAGE_NAMES + EXECUTOR_STAGE_NAMES
        )
    )
)
