"""The (Xyleme) Reporter — Section 3 and Section 5.3.

The generic Reporter "stores the notifications it receives.  When a report
condition is satisfied, it sends these notifications as an XML document."
The Xyleme Reporter then "post-processes this report, basically by applying
an XML query to it", and delivers by email (and, as our extension, web
publication).

Per subscription the Reporter enforces:

* the ``when`` disjunction (count / periodic / immediate terms);
* ``atmost N`` — "after 500 notifications, we stop registering the new
  notifications until the next report";
* ``atmost <frequency>`` — a delivery rate limit;
* ``archive <frequency>`` — retention in the report archive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..clock import Clock, SimulatedClock
from ..errors import ReportingError
from ..language.ast import ReportCondition
from ..observability.metrics import MetricsRegistry, NULL_REGISTRY
from ..observability.names import (
    COUNTER_REPORTS_GENERATED,
    STAGE_REPORTER_TICK,
)
from ..observability.tracing import StageTracer
from ..language.frequencies import period_seconds
from ..xmlstore.nodes import Document, ElementNode
from ..xmlstore.serializer import serialize
from .archive import ReportArchive
from .conditions import BufferState, condition_holds
from .email_sink import EmailSink, WebPublisher

#: Applied to the raw ``<Report>`` document when a report query is present;
#: wiring in the warehouse query engine happens in the pipeline layer so
#: the Reporter itself stays generic (it "can be used in a more general
#: setting", Section 3).
ReportQueryRunner = Callable[[str, Document], Document]


@dataclass
class ReportRegistration:
    subscription_id: int
    when: ReportCondition
    recipients: Tuple[str, ...] = ()
    report_query: Optional[str] = None
    atmost_count: Optional[int] = None
    atmost_frequency: Optional[str] = None
    archive_frequency: Optional[str] = None
    report_name: str = "Report"


@dataclass
class _SubscriptionBuffer:
    registration: ReportRegistration
    state: BufferState
    notifications: List[ElementNode] = field(default_factory=list)
    suppressed: int = 0  # dropped past the atmost count
    last_delivery_at: Optional[float] = None
    pending_rate_limited: bool = False


@dataclass
class ReporterStats:
    notifications_received: int = 0
    notifications_suppressed: int = 0
    reports_generated: int = 0
    emails_sent: int = 0


class Reporter:
    def __init__(
        self,
        clock: Optional[Clock] = None,
        email_sink: Optional[EmailSink] = None,
        publisher: Optional[WebPublisher] = None,
        archive: Optional[ReportArchive] = None,
        report_query_runner: Optional[ReportQueryRunner] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.clock = clock if clock is not None else SimulatedClock()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._tick_latency = StageTracer(self.metrics).stage_histogram(
            STAGE_REPORTER_TICK
        )
        self._reports = self.metrics.counter(COUNTER_REPORTS_GENERATED)
        self.email_sink = (
            email_sink if email_sink is not None else EmailSink(self.clock)
        )
        self.publisher = publisher if publisher is not None else WebPublisher()
        self.archive = (
            archive if archive is not None else ReportArchive(self.clock)
        )
        self.report_query_runner = report_query_runner
        self.stats = ReporterStats()
        self._buffers: Dict[int, _SubscriptionBuffer] = {}
        #: Crash recovery taps deliveries here (``repro.recovery``); the
        #: hook fires for every non-empty delivery, before buffering.
        self.delivery_hook: Optional[
            Callable[[int, Optional[str], List[ElementNode]], None]
        ] = None

    # -- registration ---------------------------------------------------------

    def register(self, registration: ReportRegistration) -> None:
        if registration.subscription_id in self._buffers:
            raise ReportingError(
                f"subscription {registration.subscription_id} already has a"
                " report buffer"
            )
        self._buffers[registration.subscription_id] = _SubscriptionBuffer(
            registration=registration,
            state=BufferState(self.clock.now()),
        )

    def unregister(self, subscription_id: int) -> None:
        self._buffers.pop(subscription_id, None)
        self.archive.drop_subscription(subscription_id)

    def registered(self, subscription_id: int) -> bool:
        return subscription_id in self._buffers

    # -- notification intake -----------------------------------------------------

    def deliver(
        self,
        subscription_id: int,
        query_name: Optional[str],
        elements: List[ElementNode],
    ) -> None:
        """Buffer a batch of notification elements for one subscription."""
        buffer = self._buffers.get(subscription_id)
        if buffer is None:
            raise ReportingError(
                f"no report buffer for subscription {subscription_id}"
            )
        if not elements:
            return
        if self.delivery_hook is not None:
            self.delivery_hook(subscription_id, query_name, elements)
        now = self.clock.now()
        limit = buffer.registration.atmost_count
        accepted = elements
        if limit is not None:
            room = limit - len(buffer.notifications)
            if room <= 0:
                accepted = []
            elif len(elements) > room:
                accepted = elements[:room]
        dropped = len(elements) - len(accepted)
        if dropped:
            buffer.suppressed += dropped
            self.stats.notifications_suppressed += dropped
        if accepted:
            buffer.notifications.extend(accepted)
            buffer.state.record_arrivals(query_name, len(accepted), now)
            self.stats.notifications_received += len(accepted)
        self._maybe_report(buffer)

    # -- timers ---------------------------------------------------------------------

    def tick(self) -> int:
        """Re-evaluate periodic conditions and rate-limited deliveries.

        Returns the number of reports generated by this tick.
        """
        start = self.metrics.now()
        generated = 0
        for buffer in list(self._buffers.values()):
            if self._maybe_report(buffer):
                generated += 1
        self.email_sink.drain_backlog()
        self.archive.garbage_collect()
        self._tick_latency.observe(self.metrics.now() - start)
        return generated

    # -- reporting ---------------------------------------------------------------------

    def _maybe_report(self, buffer: _SubscriptionBuffer) -> bool:
        now = self.clock.now()
        if not buffer.notifications and not buffer.pending_rate_limited:
            return False
        due = buffer.pending_rate_limited or condition_holds(
            buffer.registration.when, buffer.state, now
        )
        if not due:
            return False
        frequency = buffer.registration.atmost_frequency
        if frequency is not None and buffer.last_delivery_at is not None:
            if now - buffer.last_delivery_at < period_seconds(frequency):
                # "atmost weekly means we do not send a report more
                # frequently than once a week even if the when condition
                # triggers more often" — hold until the window opens.
                buffer.pending_rate_limited = True
                return False
        if not buffer.notifications:
            buffer.pending_rate_limited = False
            return False
        self._generate_report(buffer, now)
        return True

    def _generate_report(
        self, buffer: _SubscriptionBuffer, now: float
    ) -> None:
        registration = buffer.registration
        root = ElementNode(registration.report_name)
        for element in buffer.notifications:
            root.append(element)
        report_document = Document(root)
        if (
            registration.report_query is not None
            and self.report_query_runner is not None
        ):
            report_document = self.report_query_runner(
                registration.report_query, report_document
            )
        body = serialize(report_document)

        for recipient in registration.recipients:
            self.email_sink.send(
                recipient,
                subject=f"[Xyleme] report for subscription"
                f" {registration.subscription_id}",
                body=body,
            )
            self.stats.emails_sent += 1
        self.publisher.publish(registration.subscription_id, body)
        if registration.archive_frequency is not None:
            self.archive.archive(
                registration.subscription_id,
                body,
                registration.archive_frequency,
            )
        buffer.notifications = []
        buffer.suppressed = 0
        buffer.state.reset_after_report(now)
        buffer.last_delivery_at = now
        buffer.pending_rate_limited = False
        self.stats.reports_generated += 1
        self._reports.inc()

    # -- introspection -------------------------------------------------------------------

    def pending_count(self, subscription_id: int) -> int:
        buffer = self._buffers.get(subscription_id)
        return len(buffer.notifications) if buffer is not None else 0

    def force_report(self, subscription_id: int) -> bool:
        """Generate a report now regardless of the when clause (admin API)."""
        buffer = self._buffers.get(subscription_id)
        if buffer is None or not buffer.notifications:
            return False
        self._generate_report(buffer, self.clock.now())
        return True
