"""Reporter subsystem: buffers, report conditions, delivery, archive."""

from .archive import ArchivedReport, ReportArchive
from .conditions import BufferState, condition_holds, has_periodic_term
from .email_sink import Email, EmailSink, WebPublisher
from .reporter import Reporter, ReporterStats, ReportRegistration

__all__ = [
    "ArchivedReport",
    "ReportArchive",
    "BufferState",
    "condition_holds",
    "has_periodic_term",
    "Email",
    "EmailSink",
    "WebPublisher",
    "Reporter",
    "ReporterStats",
    "ReportRegistration",
]
