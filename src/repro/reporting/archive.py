"""Report archiving (the ``archive`` clause, Section 5.3).

"``archive monthly`` requests to archive the reports for this particular
subscription for a month before garbage collecting them."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..clock import Clock
from ..language.frequencies import period_seconds


@dataclass(frozen=True)
class ArchivedReport:
    subscription_id: int
    body: str
    archived_at: float
    expires_at: float


class ReportArchive:
    def __init__(self, clock: Clock):
        self.clock = clock
        self._by_subscription: Dict[int, List[ArchivedReport]] = {}
        self.total_archived = 0
        self.total_collected = 0

    def archive(
        self, subscription_id: int, body: str, retention_frequency: str
    ) -> ArchivedReport:
        now = self.clock.now()
        report = ArchivedReport(
            subscription_id=subscription_id,
            body=body,
            archived_at=now,
            expires_at=now + period_seconds(retention_frequency),
        )
        self._by_subscription.setdefault(subscription_id, []).append(report)
        self.total_archived += 1
        return report

    def reports_for(self, subscription_id: int) -> List[ArchivedReport]:
        return list(self._by_subscription.get(subscription_id, ()))

    def garbage_collect(self) -> int:
        """Drop expired reports; returns how many were collected."""
        now = self.clock.now()
        collected = 0
        for subscription_id in list(self._by_subscription):
            kept = [
                report
                for report in self._by_subscription[subscription_id]
                if report.expires_at > now
            ]
            collected += len(self._by_subscription[subscription_id]) - len(kept)
            if kept:
                self._by_subscription[subscription_id] = kept
            else:
                del self._by_subscription[subscription_id]
        self.total_collected += collected
        return collected

    def drop_subscription(self, subscription_id: int) -> None:
        self._by_subscription.pop(subscription_id, None)
