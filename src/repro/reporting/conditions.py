"""Report-condition evaluation (the ``when`` clause, Section 5.3).

A report condition is a disjunction of terms; "a report is generated
whenever one of the reporting conditions holds":

* ``immediate`` — as soon as anything is added;
* a frequency — one period elapsed since the last report;
* ``count >= n`` / ``count(QueryName) >= n`` — gathered notifications.

The evaluation is separated from the Reporter so it is testable alone and
reusable (the Trigger Engine shares the periodic logic).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..language.ast import (
    CountCondition,
    ImmediateCondition,
    PeriodicCondition,
    ReportCondition,
)
from ..language.frequencies import period_seconds


class BufferState:
    """What a report condition may look at: counts and timing."""

    def __init__(self, now: float):
        self.total_count = 0
        self.counts_by_query: Dict[str, int] = {}
        self.last_report_at = now
        self.last_arrival_at: Optional[float] = None

    def record_arrivals(self, query_name: Optional[str], count: int, now: float) -> None:
        self.total_count += count
        if query_name is not None:
            self.counts_by_query[query_name] = (
                self.counts_by_query.get(query_name, 0) + count
            )
        self.last_arrival_at = now

    def reset_after_report(self, now: float) -> None:
        """"The generation of a report ... empties the global buffer"."""
        self.total_count = 0
        self.counts_by_query.clear()
        self.last_report_at = now
        self.last_arrival_at = None


def condition_holds(
    condition: ReportCondition, state: BufferState, now: float
) -> bool:
    return any(_term_holds(term, state, now) for term in condition.terms)


def _term_holds(term: object, state: BufferState, now: float) -> bool:
    if isinstance(term, ImmediateCondition):
        return state.total_count > 0
    if isinstance(term, PeriodicCondition):
        return now - state.last_report_at >= period_seconds(term.frequency)
    if isinstance(term, CountCondition):
        if term.query_name is None:
            return state.total_count >= term.threshold
        return (
            state.counts_by_query.get(term.query_name, 0) >= term.threshold
        )
    raise TypeError(f"unknown report-condition term {term!r}")


def has_periodic_term(condition: ReportCondition) -> bool:
    """Whether the Reporter must re-check this condition on timer ticks."""
    return any(
        isinstance(term, PeriodicCondition) for term in condition.terms
    )


def shortest_period(condition: ReportCondition) -> Optional[float]:
    periods = [
        period_seconds(term.frequency)
        for term in condition.terms
        if isinstance(term, PeriodicCondition)
    ]
    return min(periods) if periods else None
