"""Delivery sinks for reports.

The paper's Reporter emails reports ("Reports are for the moment sent by
email"; the implementation supported "hundreds of thousands of emails per
day on a single PC", limited by the UNIX sendmail daemon) and the authors
"are considering the support of an access to reports via web publication".
Both are provided:

* :class:`EmailSink` — a simulated mail spool with per-day accounting and a
  configurable daily capacity modelling the sendmail bottleneck.
* :class:`WebPublisher` — report retrieval by id, the web-publication
  extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..clock import Clock, SECONDS_PER_DAY, SimulatedClock


@dataclass(frozen=True)
class Email:
    recipient: str
    subject: str
    body: str
    sent_at: float


class EmailSink:
    """Simulated sendmail: spools messages, counts per-day throughput.

    ``daily_capacity`` models the sendmail limitation; deliveries beyond it
    in one (simulated) day are deferred to the backlog and drained first on
    following days.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        daily_capacity: int = 300_000,
        keep_messages: int = 1000,
    ):
        self.clock = clock if clock is not None else SimulatedClock()
        self.daily_capacity = daily_capacity
        self.keep_messages = keep_messages
        self.sent: List[Email] = []
        self.backlog: List[Email] = []
        self.total_sent = 0
        self.total_deferred = 0
        self._day_counts: Dict[int, int] = {}

    def _day_of(self, timestamp: float) -> int:
        return int(timestamp // SECONDS_PER_DAY)

    def send(self, recipient: str, subject: str, body: str) -> bool:
        """Deliver (or defer) one email; returns True when sent now."""
        now = self.clock.now()
        email = Email(recipient, subject, body, now)
        day = self._day_of(now)
        if self._day_counts.get(day, 0) >= self.daily_capacity:
            self.backlog.append(email)
            self.total_deferred += 1
            return False
        self._record(email, day)
        return True

    def drain_backlog(self) -> int:
        """Send backlog messages within today's remaining capacity."""
        now = self.clock.now()
        day = self._day_of(now)
        drained = 0
        while self.backlog and self._day_counts.get(day, 0) < self.daily_capacity:
            email = self.backlog.pop(0)
            self._record(
                Email(email.recipient, email.subject, email.body, now), day
            )
            drained += 1
        return drained

    def _record(self, email: Email, day: int) -> None:
        self._day_counts[day] = self._day_counts.get(day, 0) + 1
        self.total_sent += 1
        self.sent.append(email)
        if len(self.sent) > self.keep_messages:
            del self.sent[: len(self.sent) - self.keep_messages]

    def sent_on_day(self, day: int) -> int:
        return self._day_counts.get(day, 0)


class WebPublisher:
    """Stores reports retrievable by (subscription id, report number)."""

    def __init__(self, keep_per_subscription: int = 100):
        self.keep_per_subscription = keep_per_subscription
        self._reports: Dict[int, List[str]] = {}

    def publish(self, subscription_id: int, body: str) -> int:
        """Store a report; returns its report number (0-based)."""
        reports = self._reports.setdefault(subscription_id, [])
        reports.append(body)
        if len(reports) > self.keep_per_subscription:
            del reports[0]
        return len(reports) - 1

    def fetch(self, subscription_id: int, number: int = -1) -> Optional[str]:
        reports = self._reports.get(subscription_id)
        if not reports:
            return None
        try:
            return reports[number]
        except IndexError:
            return None

    def count(self, subscription_id: int) -> int:
        return len(self._reports.get(subscription_id, ()))
