"""The stable public API of the reproduction, in one import.

Everything an application (or a benchmark, or a notebook) needs to run
the Figure 3 monitoring system lives here, re-exported from its home
module under one flat namespace::

    from repro import api

    system = api.SubscriptionSystem(executor="process:workers=4,batch=64")
    system.subscribe(source, owner_email="me@example.org")
    with api.IngestSession(system) as session:
        session.run_crawl(crawler)

The groups:

* **system** — :class:`SubscriptionSystem`, :class:`Fetch`,
  :class:`FeedResult`, the errors;
* **ingestion** — :class:`IngestSession`, :class:`IngestReport`,
  :class:`AsyncFetchFrontend`, :class:`BoundedFetchQueue`;
* **executors** — :class:`ExecutorSpec`, :func:`create_executor`,
  :func:`register_executor`, :func:`available_executors`, and the
  executor classes themselves for direct construction;
* **resilience** — fault injection, retry, breaker and dead-letter types;
* **recovery** — :class:`RecoveryManager`, :class:`CrashPoint` and the
  kill-point harness behind ``SubscriptionSystem.enable_recovery`` /
  ``recover_runtime`` (see ``docs/ROBUSTNESS.md``);
* **observability** — the metrics registry types.

Modules under ``repro.*`` remain importable directly, but this facade is
the compatibility surface: names here do not move between releases,
whereas internal module layout may.  The deprecated entry points they
replace (``repro.pipeline.executor.make_executor``) emit a
``DeprecationWarning`` and delegate here.
"""

from __future__ import annotations

from .clock import SimulatedClock, WallClock
from .errors import (
    PipelineError,
    RecoveryError,
    ReproError,
    SubscriptionSyntaxError,
    XMLSyntaxError,
)
from .faults import (
    KILL_POINTS,
    CircuitBreaker,
    CrashPoint,
    DeadLetterEntry,
    DeadLetterQueue,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from .recovery import RecoveryManager, RuntimeJournal
from .observability import MetricsRegistry, NULL_REGISTRY, NullRegistry
from .pipeline import (
    AsyncFetchFrontend,
    BatchExecutor,
    BoundedFetchQueue,
    DEFAULT_BATCH_SIZE,
    ExecutorSpec,
    Fetch,
    FeedResult,
    IngestReport,
    IngestSession,
    ProcessExecutor,
    SerialExecutor,
    ShardFanoutExecutor,
    SubscriptionSystem,
    ThreadedExecutor,
    from_pairs,
)
from .pipeline.executors import available as available_executors
from .pipeline.executors import create as create_executor
from .pipeline.executors import register as register_executor
from .webworld import SimulatedCrawler, SiteGenerator

__all__ = [
    # system
    "SubscriptionSystem",
    "Fetch",
    "FeedResult",
    "from_pairs",
    "ReproError",
    "PipelineError",
    "SubscriptionSyntaxError",
    "XMLSyntaxError",
    # ingestion
    "IngestSession",
    "IngestReport",
    "AsyncFetchFrontend",
    "BoundedFetchQueue",
    # executors
    "ExecutorSpec",
    "create_executor",
    "register_executor",
    "available_executors",
    "BatchExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "ShardFanoutExecutor",
    "DEFAULT_BATCH_SIZE",
    # resilience
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "CircuitBreaker",
    "DeadLetterQueue",
    "DeadLetterEntry",
    # recovery
    "RecoveryManager",
    "RuntimeJournal",
    "RecoveryError",
    "CrashPoint",
    "KILL_POINTS",
    # observability + substrate
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "SimulatedClock",
    "WallClock",
    "SimulatedCrawler",
    "SiteGenerator",
]
