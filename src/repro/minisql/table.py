"""In-memory table with primary-key and secondary hash indexes.

Mutations emit *physical* per-row effects (rowid + full row state) to an
observer callback; the database writes these to the write-ahead log, and
recovery replays them verbatim.  Logical predicates are evaluated only once,
at mutation time — never during recovery.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

from ..errors import MiniSQLError, SchemaError
from .predicates import Everything, Predicate
from .types import TableSchema

#: observer(op, table_name, payload); op in {"insert", "update", "delete"}.
Observer = Callable[[str, str, Dict[str, Any]], None]


class Table:
    """Rows are stored as dicts keyed by an internal rowid."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: Dict[int, Dict[str, Any]] = {}
        self._next_rowid = 1
        self._primary_index: Dict[Any, int] = {}
        self._secondary: Dict[str, Dict[Any, set]] = {}
        self.observer: Optional[Observer] = None

    # -- helpers -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[Dict[str, Any]]:
        """Yield copies of all rows (callers cannot corrupt indexes)."""
        for row in self._rows.values():
            yield dict(row)

    def create_index(self, column: str) -> None:
        """Create a secondary hash index over ``column`` (idempotent)."""
        self.schema.column(column)  # raises SchemaError on unknown column
        if column in self._secondary:
            return
        index: Dict[Any, set] = {}
        for rowid, row in self._rows.items():
            index.setdefault(row[column], set()).add(rowid)
        self._secondary[column] = index

    def _notify(self, op: str, payload: Dict[str, Any]) -> None:
        if self.observer is not None:
            self.observer(op, self.name, payload)

    # -- physical operations (shared by API calls and WAL replay) -----------

    def apply_physical(self, op: str, payload: Dict[str, Any]) -> None:
        """Replay one logged effect. Used by recovery only."""
        if op == "insert":
            self._store(payload["rowid"], payload["row"])
        elif op == "update":
            self._replace(payload["rowid"], payload["row"])
        elif op == "delete":
            self._remove(payload["rowid"])
        else:
            raise MiniSQLError(f"unknown WAL operation {op!r}")

    def _store(self, rowid: int, stored: Dict[str, Any]) -> None:
        self._rows[rowid] = stored
        if rowid >= self._next_rowid:
            self._next_rowid = rowid + 1
        pk = self.schema.primary_key
        if pk is not None:
            self._primary_index[stored[pk]] = rowid
        for column, index in self._secondary.items():
            index.setdefault(stored[column], set()).add(rowid)

    def _replace(self, rowid: int, updated: Dict[str, Any]) -> None:
        row = self._rows[rowid]
        pk = self.schema.primary_key
        if pk is not None and updated[pk] != row[pk]:
            del self._primary_index[row[pk]]
            self._primary_index[updated[pk]] = rowid
        for column, index in self._secondary.items():
            if updated[column] != row[column]:
                index[row[column]].discard(rowid)
                index.setdefault(updated[column], set()).add(rowid)
        self._rows[rowid] = updated

    def _remove(self, rowid: int) -> None:
        row = self._rows.pop(rowid)
        pk = self.schema.primary_key
        if pk is not None:
            self._primary_index.pop(row[pk], None)
        for column, index in self._secondary.items():
            index.get(row[column], set()).discard(rowid)

    # -- mutations ---------------------------------------------------------

    def insert(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Insert a row; returns the stored (coerced, completed) row."""
        stored = self.schema.validate_row(row)
        pk = self.schema.primary_key
        if pk is not None and stored[pk] in self._primary_index:
            raise MiniSQLError(
                f"duplicate primary key {stored[pk]!r} in table {self.name!r}"
            )
        rowid = self._next_rowid
        self._store(rowid, stored)
        self._notify("insert", {"rowid": rowid, "row": dict(stored)})
        return dict(stored)

    def update(self, where: Predicate, changes: Dict[str, Any]) -> int:
        """Update matching rows; returns the number updated."""
        for column in changes:
            self.schema.column(column)
        count = 0
        for rowid in list(self._candidate_rowids(where)):
            row = self._rows.get(rowid)
            if row is None or not where.matches(row):
                continue
            updated = dict(row)
            updated.update(changes)
            updated = self.schema.validate_row(updated)
            pk = self.schema.primary_key
            if (
                pk is not None
                and updated[pk] != row[pk]
                and updated[pk] in self._primary_index
            ):
                raise MiniSQLError(
                    f"update would duplicate primary key {updated[pk]!r}"
                )
            self._replace(rowid, updated)
            self._notify("update", {"rowid": rowid, "row": dict(updated)})
            count += 1
        return count

    def delete(self, where: Predicate) -> int:
        """Delete matching rows; returns the number deleted."""
        count = 0
        for rowid in list(self._candidate_rowids(where)):
            row = self._rows.get(rowid)
            if row is None or not where.matches(row):
                continue
            self._remove(rowid)
            self._notify("delete", {"rowid": rowid})
            count += 1
        return count

    # -- queries -----------------------------------------------------------

    def select(
        self,
        where: Optional[Predicate] = None,
        columns: Optional[List[str]] = None,
        order_by: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Return matching rows (copies), optionally projected and ordered."""
        predicate = where if where is not None else Everything()
        if columns is not None:
            for column in columns:
                self.schema.column(column)
        results = []
        for rowid in self._candidate_rowids(predicate):
            row = self._rows.get(rowid)
            if row is not None and predicate.matches(row):
                results.append(dict(row))
        if order_by is not None:
            self.schema.column(order_by)
            results.sort(key=lambda r: (r[order_by] is None, r[order_by]))
        if limit is not None:
            results = results[:limit]
        if columns is not None:
            results = [{c: row[c] for c in columns} for row in results]
        return results

    def count(self, where: Optional[Predicate] = None) -> int:
        if where is None:
            return len(self._rows)
        return len(self.select(where))

    def get(self, key: Any) -> Optional[Dict[str, Any]]:
        """Primary-key point lookup; None when absent."""
        pk = self.schema.primary_key
        if pk is None:
            raise SchemaError(f"table {self.name!r} has no primary key")
        rowid = self._primary_index.get(key)
        return dict(self._rows[rowid]) if rowid is not None else None

    def _candidate_rowids(self, where: Predicate) -> Iterator[int]:
        """Narrow the scan using the primary or a secondary index."""
        pk = self.schema.primary_key
        if pk is not None:
            key = where.equality_on(pk)
            if key is not None:
                rowid = self._primary_index.get(key)
                if rowid is not None:
                    yield rowid
                return
        for column, index in self._secondary.items():
            key = where.equality_on(column)
            if key is not None:
                yield from list(index.get(key, ()))
                return
        yield from list(self._rows)
