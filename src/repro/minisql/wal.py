"""Write-ahead log: durability and recovery for the embedded store.

Format: one JSON object per line.  Record kinds:

* ``{"op": "create_table", "schema": {...}}``
* ``{"op": "create_index", "table": ..., "column": ...}``
* ``{"op": "insert"|"update"|"delete", "table": ..., "payload": {...}}``
* ``{"op": "checkpoint"}`` — everything before the *last* checkpoint marker
  is superseded by the snapshot file written alongside it.

A checkpoint writes a full snapshot (``<path>.snapshot``) atomically
(temp file + rename) and truncates the log.  Recovery loads the snapshot if
present, then replays the remaining log records.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, Optional, TextIO

from ..errors import MiniSQLError


class WriteAheadLog:
    """Append-only JSON-lines log with explicit sync points."""

    def __init__(self, path: str, sync_every: int = 1):
        self.path = path
        self.sync_every = max(1, sync_every)
        self._pending = 0
        self._handle: Optional[TextIO] = None

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        self.open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writing -----------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self.open()
        assert self._handle is not None
        self._handle.write(json.dumps(record, separators=(",", ":")))
        self._handle.write("\n")
        self._pending += 1
        if self._pending >= self.sync_every:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._pending = 0

    def truncate(self) -> None:
        """Drop all log content (called right after a snapshot)."""
        self.close()
        with open(self.path, "w", encoding="utf-8"):
            pass
        self.open()

    # -- reading -----------------------------------------------------------

    def records(self) -> Iterator[Dict[str, Any]]:
        """Yield log records; a torn final line (crash mid-write) is skipped."""
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    # Torn tail write: the record was never acknowledged.
                    return
                raise MiniSQLError(
                    f"corrupt WAL record at line {index + 1} of {self.path}"
                )


def snapshot_path(wal_path: str) -> str:
    return wal_path + ".snapshot"


def write_snapshot(wal_path: str, state: Dict[str, Any]) -> None:
    """Atomically write the snapshot next to the WAL."""
    target = snapshot_path(wal_path)
    temp = target + ".tmp"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(state, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, target)


def read_snapshot(wal_path: str) -> Optional[Dict[str, Any]]:
    target = snapshot_path(wal_path)
    if not os.path.exists(target):
        return None
    with open(target, "r", encoding="utf-8") as handle:
        return json.load(handle)
