"""Predicate expressions for ``WHERE`` clauses of the embedded store.

Composable, evaluated against row dictionaries::

    where = And(Eq("owner", "nguyen"), Like("url", "http://inria.fr/%"))
    rows = table.select(where)

``Like`` supports the SQL ``%`` (any run) and ``_`` (one character)
wildcards, which is all the Subscription Manager needs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple


class Predicate:
    """Base class; subclasses implement :meth:`matches`."""

    def matches(self, row: Dict[str, Any]) -> bool:
        raise NotImplementedError

    # Equality-lookup extraction lets tables use their primary-key or
    # secondary indexes instead of scanning.
    def equality_on(self, column: str) -> Optional[Any]:
        """If the predicate pins ``column`` to one value, return it."""
        return None


@dataclass(frozen=True)
class Everything(Predicate):
    def matches(self, row: Dict[str, Any]) -> bool:
        return True


@dataclass(frozen=True)
class Eq(Predicate):
    column: str
    value: Any

    def matches(self, row: Dict[str, Any]) -> bool:
        return row.get(self.column) == self.value

    def equality_on(self, column: str) -> Optional[Any]:
        return self.value if column == self.column else None


@dataclass(frozen=True)
class Ne(Predicate):
    column: str
    value: Any

    def matches(self, row: Dict[str, Any]) -> bool:
        return row.get(self.column) != self.value


@dataclass(frozen=True)
class Lt(Predicate):
    column: str
    value: Any

    def matches(self, row: Dict[str, Any]) -> bool:
        current = row.get(self.column)
        return current is not None and current < self.value


@dataclass(frozen=True)
class Le(Predicate):
    column: str
    value: Any

    def matches(self, row: Dict[str, Any]) -> bool:
        current = row.get(self.column)
        return current is not None and current <= self.value


@dataclass(frozen=True)
class Gt(Predicate):
    column: str
    value: Any

    def matches(self, row: Dict[str, Any]) -> bool:
        current = row.get(self.column)
        return current is not None and current > self.value


@dataclass(frozen=True)
class Ge(Predicate):
    column: str
    value: Any

    def matches(self, row: Dict[str, Any]) -> bool:
        current = row.get(self.column)
        return current is not None and current >= self.value


@dataclass(frozen=True)
class IsNull(Predicate):
    column: str

    def matches(self, row: Dict[str, Any]) -> bool:
        return row.get(self.column) is None


class Like(Predicate):
    """SQL LIKE with ``%`` and ``_`` wildcards (case-sensitive)."""

    def __init__(self, column: str, pattern: str):
        self.column = column
        self.pattern = pattern
        regex = "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
            for ch in pattern
        )
        self._regex = re.compile(f"^{regex}$", re.DOTALL)

    def matches(self, row: Dict[str, Any]) -> bool:
        value = row.get(self.column)
        return isinstance(value, str) and bool(self._regex.match(value))

    def __repr__(self) -> str:
        return f"Like({self.column!r}, {self.pattern!r})"


class And(Predicate):
    def __init__(self, *parts: Predicate):
        self.parts: Tuple[Predicate, ...] = parts

    def matches(self, row: Dict[str, Any]) -> bool:
        return all(part.matches(row) for part in self.parts)

    def equality_on(self, column: str) -> Optional[Any]:
        for part in self.parts:
            value = part.equality_on(column)
            if value is not None:
                return value
        return None

    def __repr__(self) -> str:
        return f"And{self.parts!r}"


class Or(Predicate):
    def __init__(self, *parts: Predicate):
        self.parts: Tuple[Predicate, ...] = parts

    def matches(self, row: Dict[str, Any]) -> bool:
        return any(part.matches(row) for part in self.parts)

    def __repr__(self) -> str:
        return f"Or{self.parts!r}"


class Not(Predicate):
    def __init__(self, part: Predicate):
        self.part = part

    def matches(self, row: Dict[str, Any]) -> bool:
        return not self.part.matches(row)

    def __repr__(self) -> str:
        return f"Not({self.part!r})"
