"""Embedded relational store — the reproduction's MySQL substitute.

The paper's Subscription Manager "uses the same MySQL database for
recovery" (Section 3).  This package provides the surface that role needs:
typed tables, predicates, point lookups, secondary indexes, and WAL-based
durability with snapshot checkpoints.
"""

from .database import Database
from .predicates import (
    And,
    Eq,
    Everything,
    Ge,
    Gt,
    IsNull,
    Le,
    Like,
    Lt,
    Ne,
    Not,
    Or,
    Predicate,
)
from .table import Table
from .types import BOOLEAN, INTEGER, REAL, TEXT, Column, TableSchema, schema
from .wal import WriteAheadLog

__all__ = [
    "Database",
    "And",
    "Eq",
    "Everything",
    "Ge",
    "Gt",
    "IsNull",
    "Le",
    "Like",
    "Lt",
    "Ne",
    "Not",
    "Or",
    "Predicate",
    "Table",
    "BOOLEAN",
    "INTEGER",
    "REAL",
    "TEXT",
    "Column",
    "TableSchema",
    "schema",
    "WriteAheadLog",
]
