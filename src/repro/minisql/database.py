"""Database: named tables + optional WAL-backed durability.

Usage::

    db = Database(path="/tmp/subscriptions.wal")     # durable
    users = db.create_table(schema("users",
        Column("id", INTEGER, primary_key=True),
        Column("email", TEXT, nullable=False)))
    users.insert({"id": 1, "email": "nguyen@inria.fr"})
    db.checkpoint()

    recovered = Database.recover("/tmp/subscriptions.wal")

An in-memory database (``path=None``) skips logging entirely; the
Subscription Manager uses that mode in benchmarks.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import MiniSQLError
from .table import Table
from .types import TableSchema
from .wal import WriteAheadLog, read_snapshot, write_snapshot


class Database:
    def __init__(self, path: Optional[str] = None, sync_every: int = 1):
        self.path = path
        self._tables: Dict[str, Table] = {}
        self._wal: Optional[WriteAheadLog] = None
        if path is not None:
            self._wal = WriteAheadLog(path, sync_every=sync_every)
            self._wal.open()

    # -- schema ------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise MiniSQLError(f"table {schema.name!r} already exists")
        table = Table(schema)
        table.observer = self._on_mutation
        self._tables[schema.name] = table
        if self._wal is not None:
            self._wal.append({"op": "create_table", "schema": schema.to_dict()})
        return table

    def create_index(self, table_name: str, column: str) -> None:
        self.table(table_name).create_index(column)
        if self._wal is not None:
            self._wal.append(
                {"op": "create_index", "table": table_name, "column": column}
            )

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise MiniSQLError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self):
        return sorted(self._tables)

    # -- durability ---------------------------------------------------------

    def _on_mutation(self, op: str, table_name: str, payload: Dict[str, Any]) -> None:
        if self._wal is not None:
            self._wal.append({"op": op, "table": table_name, "payload": payload})

    def checkpoint(self) -> None:
        """Write a full snapshot and truncate the WAL."""
        if self._wal is None:
            return
        state = {
            "tables": [
                {
                    "schema": table.schema.to_dict(),
                    "indexes": sorted(table._secondary),
                    "rows": [
                        {"rowid": rowid, "row": row}
                        for rowid, row in table._rows.items()
                    ],
                }
                for table in self._tables.values()
            ]
        }
        write_snapshot(self.path, state)  # type: ignore[arg-type]
        self._wal.truncate()

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recovery ------------------------------------------------------------

    @staticmethod
    def recover(path: str, sync_every: int = 1) -> "Database":
        """Rebuild a database from its snapshot + WAL."""
        db = Database(path=None)
        snapshot = read_snapshot(path)
        if snapshot is not None:
            for entry in snapshot["tables"]:
                schema = TableSchema.from_dict(entry["schema"])
                table = Table(schema)
                for column in entry["indexes"]:
                    table.create_index(column)
                for stored in entry["rows"]:
                    table.apply_physical(
                        "insert",
                        {"rowid": stored["rowid"], "row": stored["row"]},
                    )
                db._tables[schema.name] = table
        log = WriteAheadLog(path)
        for record in log.records():
            op = record["op"]
            if op == "checkpoint":
                continue
            if op == "create_table":
                schema = TableSchema.from_dict(record["schema"])
                if schema.name not in db._tables:
                    db._tables[schema.name] = Table(schema)
                continue
            if op == "create_index":
                db.table(record["table"]).create_index(record["column"])
                continue
            db.table(record["table"]).apply_physical(op, record["payload"])
        # Re-attach durability to the same WAL file.
        db.path = path
        db._wal = WriteAheadLog(path, sync_every=sync_every)
        db._wal.open()
        for table in db._tables.values():
            table.observer = db._on_mutation
        return db
