"""Column types and schemas for the embedded relational store.

The Subscription Manager of the paper persists subscriptions, users and
event-code assignments in MySQL "for recovery" (Section 3).  ``repro.minisql``
plays that role.  This module defines the typed schema layer: column types,
value validation/coercion, and :class:`TableSchema`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import SchemaError

INTEGER = "INTEGER"
REAL = "REAL"
TEXT = "TEXT"
BOOLEAN = "BOOLEAN"

_COLUMN_TYPES = (INTEGER, REAL, TEXT, BOOLEAN)


@dataclass(frozen=True)
class Column:
    """One column: name, type, nullability, primary-key flag."""

    name: str
    type: str
    nullable: bool = True
    primary_key: bool = False

    def __post_init__(self):
        if self.type not in _COLUMN_TYPES:
            raise SchemaError(
                f"unknown column type {self.type!r} for column {self.name!r}"
            )
        if self.primary_key and self.nullable:
            # Primary keys are implicitly NOT NULL, as in SQL.
            object.__setattr__(self, "nullable", False)

    def coerce(self, value: Any) -> Any:
        """Validate/coerce ``value`` for this column; raise SchemaError."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is NOT NULL")
            return None
        if self.type == INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(
                    f"column {self.name!r} expects INTEGER, got {value!r}"
                )
            return value
        if self.type == REAL:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(
                    f"column {self.name!r} expects REAL, got {value!r}"
                )
            return float(value)
        if self.type == TEXT:
            if not isinstance(value, str):
                raise SchemaError(
                    f"column {self.name!r} expects TEXT, got {value!r}"
                )
            return value
        if not isinstance(value, bool):
            raise SchemaError(
                f"column {self.name!r} expects BOOLEAN, got {value!r}"
            )
        return value


@dataclass(frozen=True)
class TableSchema:
    """Ordered set of columns with at most one primary key."""

    name: str
    columns: Tuple[Column, ...]
    _by_name: Dict[str, Column] = field(
        default_factory=dict, compare=False, repr=False
    )

    def __post_init__(self):
        if not self.columns:
            raise SchemaError(f"table {self.name!r} has no columns")
        by_name: Dict[str, Column] = {}
        primary_keys = []
        for column in self.columns:
            if column.name in by_name:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            by_name[column.name] = column
            if column.primary_key:
                primary_keys.append(column.name)
        if len(primary_keys) > 1:
            raise SchemaError(
                f"table {self.name!r} declares several primary keys"
            )
        object.__setattr__(self, "_by_name", by_name)

    @property
    def primary_key(self) -> Optional[str]:
        for column in self.columns:
            if column.primary_key:
                return column.name
        return None

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def validate_row(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Return a full, coerced row dict (missing columns become NULL)."""
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise SchemaError(
                f"unknown columns {sorted(unknown)} for table {self.name!r}"
            )
        return {
            column.name: column.coerce(row.get(column.name))
            for column in self.columns
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form, used by the WAL."""
        return {
            "name": self.name,
            "columns": [
                {
                    "name": c.name,
                    "type": c.type,
                    "nullable": c.nullable,
                    "primary_key": c.primary_key,
                }
                for c in self.columns
            ],
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "TableSchema":
        columns = tuple(
            Column(
                name=c["name"],
                type=c["type"],
                nullable=c["nullable"],
                primary_key=c["primary_key"],
            )
            for c in payload["columns"]
        )
        return TableSchema(name=payload["name"], columns=columns)


def schema(name: str, *columns: Column) -> TableSchema:
    """Convenience constructor: ``schema("users", Column("id", INTEGER, primary_key=True), ...)``."""
    return TableSchema(name=name, columns=tuple(columns))
