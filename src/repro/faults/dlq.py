"""Bounded dead-letter quarantine for poison documents.

A fetch whose retries are exhausted (or that failed permanently), and a
document the pipeline keeps rejecting, must not be silently dropped — at
web scale "drop and forget" loses subscriptions' data — nor retried
forever.  They are quarantined here: a bounded FIFO of
:class:`DeadLetterEntry` records carrying everything needed to re-feed
the document later (URL, raw content, page kind) plus the failure
forensics (error class, message, attempt count, quarantine time).

The queue is inspectable and requeue-able from the CLI
(``repro-monitor dlq list|requeue|purge`` over a JSON file written with
:meth:`DeadLetterQueue.save`) and observable through the ``dlq.depth``
gauge and the ``dlq.quarantined{source=...}`` counter.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import asdict, dataclass
from typing import Deque, Dict, Iterator, List, Optional

from ..errors import PipelineError
from ..observability.metrics import MetricsRegistry, NULL_REGISTRY
from ..observability.names import COUNTER_DLQ_QUARANTINED, GAUGE_DLQ_DEPTH
from ..pipeline.stream import Fetch, XML_PAGE

#: Where an entry came from: the crawler's fetch path or the pipeline's
#: per-document rejection path.
SOURCE_CRAWL = "crawl"
SOURCE_PIPELINE = "pipeline"


@dataclass
class DeadLetterEntry:
    """One quarantined document, replayable via :meth:`to_fetch`."""

    url: str
    content: str
    kind: str = XML_PAGE
    error: str = ""
    error_class: str = ""
    source: str = SOURCE_CRAWL
    attempts: int = 1
    quarantined_at: float = 0.0

    def to_fetch(self) -> Fetch:
        return Fetch(url=self.url, content=self.content, kind=self.kind)

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "DeadLetterEntry":
        return cls(**payload)


class DeadLetterQueue:
    """Bounded FIFO of poison documents; oldest entries are evicted.

    ``capacity`` bounds memory: pushing into a full queue evicts the
    oldest entry and counts it in :attr:`dropped` (a real system would
    page these to cold storage; the reproduction records the loss).
    ``metrics`` wires the ``dlq.depth`` gauge and the
    ``dlq.quarantined{source=...}`` counter.
    """

    def __init__(
        self,
        capacity: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if capacity < 1:
            raise PipelineError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._entries: Deque[DeadLetterEntry] = deque()
        self.dropped = 0
        self.total_quarantined = 0
        self._depth_gauge = self.metrics.gauge(GAUGE_DLQ_DEPTH)
        self._depth_gauge.set(0)

    # -- writing -----------------------------------------------------------

    def push(self, entry: DeadLetterEntry) -> None:
        if len(self._entries) >= self.capacity:
            self._entries.popleft()
            self.dropped += 1
        self._entries.append(entry)
        self.total_quarantined += 1
        self.metrics.counter(
            COUNTER_DLQ_QUARANTINED, source=entry.source
        ).inc()
        self._depth_gauge.set(len(self._entries))

    def drain(self) -> List[DeadLetterEntry]:
        """Remove and return every entry (the requeue primitive)."""
        entries = list(self._entries)
        self._entries.clear()
        self._depth_gauge.set(0)
        return entries

    def purge(self) -> int:
        """Discard every entry; returns how many were dropped."""
        count = len(self._entries)
        self._entries.clear()
        self._depth_gauge.set(0)
        return count

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DeadLetterEntry]:
        return iter(self._entries)

    def entries(self) -> List[DeadLetterEntry]:
        return list(self._entries)

    # -- persistence -------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the queue as a JSON document (CLI interchange format).

        Atomic: the JSON is written to a sibling temp file, fsynced and
        ``os.replace``d over ``path``, so a crash mid-save leaves either
        the old file or the new one — never a truncated hybrid.
        """
        payload = {
            "capacity": self.capacity,
            "dropped": self.dropped,
            "entries": [entry.to_dict() for entry in self._entries],
        }
        temp_path = path + ".tmp"
        try:
            with open(temp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        finally:
            if os.path.exists(temp_path):
                os.remove(temp_path)

    @classmethod
    def load(
        cls,
        path: str,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "DeadLetterQueue":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        queue = cls(
            capacity=int(payload.get("capacity", 1024)), metrics=metrics
        )
        for record in payload.get("entries", []):
            queue._entries.append(DeadLetterEntry.from_dict(record))
        queue.dropped = int(payload.get("dropped", 0))
        queue.total_quarantined = len(queue._entries)
        queue._depth_gauge.set(len(queue._entries))
        return queue
