"""Deterministic kill-point harness for crash-recovery testing.

A crash-recovery story is only as good as the crashes it is tested
against.  This module lets a test (or the ``--kill`` CLI flag) plant a
*kill point*: the next time execution reaches the named point, a
:class:`CrashPoint` is raised, simulating the process dying exactly
there.  The points are placed at the pipeline's recovery-relevant
boundaries:

``post-fetch``
    a batch has been pulled off the bounded queue but not yet executed;
``post-match``
    match results exist in memory but nothing has been delivered;
``pre-deliver``
    immediately before a notification is journaled;
``post-deliver``
    after the journal append but before the in-memory buffers see it;
``mid-checkpoint``
    between writing the checkpoint snapshot and truncating the journal.

:class:`CrashPoint` deliberately subclasses :class:`BaseException`, not
``ReproError`` — the pipeline's per-document error handling and the
executors' degraded-mode guards catch ``Exception``/``ReproError``, and
a simulated process death must sail straight through both, exactly like
``SIGKILL`` would.

The switch is a process-global so the CLI, the system and the tests all
see the same one; ``install(point, at=n)`` arms it for the *n*-th hit of
``point``, and ``clear()`` disarms it (tests should clear in a finally).
"""

from __future__ import annotations

from typing import Optional

#: Every registered kill point, in pipeline order.
KILL_POINT_POST_FETCH = "post-fetch"
KILL_POINT_POST_MATCH = "post-match"
KILL_POINT_PRE_DELIVER = "pre-deliver"
KILL_POINT_POST_DELIVER = "post-deliver"
KILL_POINT_MID_CHECKPOINT = "mid-checkpoint"

KILL_POINTS = (
    KILL_POINT_POST_FETCH,
    KILL_POINT_POST_MATCH,
    KILL_POINT_PRE_DELIVER,
    KILL_POINT_POST_DELIVER,
    KILL_POINT_MID_CHECKPOINT,
)


class CrashPoint(BaseException):
    """A simulated process death at a named kill point.

    BaseException on purpose: no ``except Exception`` handler anywhere in
    the pipeline may absorb it — a real crash cannot be caught.
    """

    def __init__(self, point: str, hit: int):
        super().__init__(f"simulated crash at kill point {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


class _KillSwitch:
    __slots__ = ("point", "at", "hits")

    def __init__(self, point: str, at: int):
        self.point = point
        self.at = at
        self.hits = 0


_armed: Optional[_KillSwitch] = None


def install(point: str, at: int = 1) -> None:
    """Arm the global switch: crash on the ``at``-th hit of ``point``."""
    global _armed
    if point not in KILL_POINTS:
        raise ValueError(
            f"unknown kill point {point!r}; expected one of {KILL_POINTS}"
        )
    if at < 1:
        raise ValueError(f"at must be >= 1, got {at}")
    _armed = _KillSwitch(point, at)


def clear() -> None:
    """Disarm the switch (call from a ``finally`` in tests)."""
    global _armed
    _armed = None


def armed_point() -> Optional[str]:
    """The currently armed point name, or None."""
    return _armed.point if _armed is not None else None


def maybe_kill(point: str) -> None:
    """Call at a kill point; raises :class:`CrashPoint` if armed for it."""
    switch = _armed
    if switch is None or switch.point != point:
        return
    switch.hits += 1
    if switch.hits >= switch.at:
        clear()
        raise CrashPoint(point, switch.hits)
