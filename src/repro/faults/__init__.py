"""Fault tolerance: injection, retry/backoff, breakers, dead letters.

The paper's regime — "millions of pages per day" (Section 2.2) — makes
fetch failure handling a core monitor concern, not an afterthought.
This subsystem supplies both halves of that story:

* **injection** (:class:`FaultPlan` / :class:`FaultInjector`) — seeded,
  deterministic failures (timeout, reset, HTTP 5xx, truncated payload,
  garbage bytes) surfaced as the :class:`~repro.errors.FetchError`
  taxonomy, so resilience can be *tested* rather than hoped for;
* **resilience** (:class:`RetryPolicy`, :class:`CircuitBreaker`,
  :class:`DeadLetterQueue`) — the policies the crawler and pipeline use
  to survive those failures: exponential backoff with deterministic
  jitter, per-URL closed/open/half-open breakers that stop dead hosts
  from consuming fetch budget, and a bounded quarantine for poison
  documents.

A third half rides along for the crash-recovery subsystem
(:mod:`repro.recovery`): the **kill-point harness**
(:mod:`repro.faults.killpoints`) — deterministic process "crashes"
(:class:`CrashPoint`) armed at named pipeline points (:data:`KILL_POINTS`)
so recovery can be property-tested at every dangerous instant.

Everything emits canonical metrics (``faults.injected{kind}``,
``retry.attempts``, ``breaker.state_changes{to}``, ``dlq.depth``,
``dlq.quarantined{source}``) through the shared
:class:`~repro.observability.MetricsRegistry`; see docs/ROBUSTNESS.md.
"""

from .dlq import (
    DeadLetterEntry,
    DeadLetterQueue,
    SOURCE_CRAWL,
    SOURCE_PIPELINE,
)
from .injector import FAULT_KINDS, FaultInjector, FaultPlan, TRANSIENT_KINDS
from .killpoints import (
    CrashPoint,
    KILL_POINT_MID_CHECKPOINT,
    KILL_POINT_POST_DELIVER,
    KILL_POINT_POST_FETCH,
    KILL_POINT_POST_MATCH,
    KILL_POINT_PRE_DELIVER,
    KILL_POINTS,
    armed_point,
    clear,
    install,
    maybe_kill,
)
from .retry import CLOSED, CircuitBreaker, HALF_OPEN, OPEN, RetryPolicy

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "CrashPoint",
    "DeadLetterEntry",
    "DeadLetterQueue",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "HALF_OPEN",
    "KILL_POINTS",
    "KILL_POINT_MID_CHECKPOINT",
    "KILL_POINT_POST_DELIVER",
    "KILL_POINT_POST_FETCH",
    "KILL_POINT_POST_MATCH",
    "KILL_POINT_PRE_DELIVER",
    "OPEN",
    "RetryPolicy",
    "SOURCE_CRAWL",
    "SOURCE_PIPELINE",
    "TRANSIENT_KINDS",
    "armed_point",
    "clear",
    "install",
    "maybe_kill",
]
