"""Fault tolerance: injection, retry/backoff, breakers, dead letters.

The paper's regime — "millions of pages per day" (Section 2.2) — makes
fetch failure handling a core monitor concern, not an afterthought.
This subsystem supplies both halves of that story:

* **injection** (:class:`FaultPlan` / :class:`FaultInjector`) — seeded,
  deterministic failures (timeout, reset, HTTP 5xx, truncated payload,
  garbage bytes) surfaced as the :class:`~repro.errors.FetchError`
  taxonomy, so resilience can be *tested* rather than hoped for;
* **resilience** (:class:`RetryPolicy`, :class:`CircuitBreaker`,
  :class:`DeadLetterQueue`) — the policies the crawler and pipeline use
  to survive those failures: exponential backoff with deterministic
  jitter, per-URL closed/open/half-open breakers that stop dead hosts
  from consuming fetch budget, and a bounded quarantine for poison
  documents.

Everything emits canonical metrics (``faults.injected{kind}``,
``retry.attempts``, ``breaker.state_changes{to}``, ``dlq.depth``,
``dlq.quarantined{source}``) through the shared
:class:`~repro.observability.MetricsRegistry`; see docs/ROBUSTNESS.md.
"""

from .dlq import (
    DeadLetterEntry,
    DeadLetterQueue,
    SOURCE_CRAWL,
    SOURCE_PIPELINE,
)
from .injector import FAULT_KINDS, FaultInjector, FaultPlan, TRANSIENT_KINDS
from .retry import CLOSED, CircuitBreaker, HALF_OPEN, OPEN, RetryPolicy

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "DeadLetterEntry",
    "DeadLetterQueue",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "HALF_OPEN",
    "OPEN",
    "RetryPolicy",
    "SOURCE_CRAWL",
    "SOURCE_PIPELINE",
    "TRANSIENT_KINDS",
]
