"""Retry/backoff policy and per-URL circuit breakers.

Two policies decide what happens after a failed fetch:

* :class:`RetryPolicy` — exponential backoff with *deterministic* jitter
  (a CRC of ``(url, attempt)``, not wall-clock randomness, so seeded
  simulations replay exactly) and a capped attempt budget.  The crawler
  reschedules a failed URL at the backoff interval instead of its
  nominal refresh interval.
* :class:`CircuitBreaker` — the classical closed → open → half-open
  machine, one per URL: after ``failure_threshold`` consecutive failures
  the circuit opens and the URL stops consuming fetch budget until
  ``reset_timeout`` elapses, when a single half-open probe is allowed
  through; a clean probe closes the circuit, a failed one re-opens it.

State transitions are observable: ``on_state_change(old, new)`` fires on
every edge, which the crawler wires to the
``breaker.state_changes{to=...}`` counter.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import PipelineError

#: Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and capped attempts.

    ``max_attempts`` counts every attempt including the first: the
    default of 6 allows 5 retries before a fetch is declared poison and
    quarantined.  ``backoff(attempt, url)`` is the delay before retry
    number ``attempt`` (1-based), jittered by ±``jitter`` of itself
    using a CRC of ``(url, attempt)`` so two runs with the same inputs
    schedule identical retries.
    """

    max_attempts: int = 6
    base_delay: float = 60.0
    multiplier: float = 2.0
    max_delay: float = 3600.0
    jitter: float = 0.1

    def __post_init__(self):
        if self.max_attempts < 1:
            raise PipelineError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay <= 0 or self.max_delay <= 0:
            raise PipelineError("backoff delays must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise PipelineError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def backoff(self, attempt: int, url: str = "") -> float:
        """Delay in seconds before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise PipelineError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.max_delay,
            self.base_delay * self.multiplier ** (attempt - 1),
        )
        if self.jitter:
            token = f"{url}#{attempt}".encode("utf-8")
            fraction = zlib.crc32(token) / 2**32  # [0, 1)
            delay *= 1.0 + self.jitter * (2.0 * fraction - 1.0)
        return delay


class CircuitBreaker:
    """Closed → open → half-open failure isolation for one URL.

    ``allow(now)`` gates fetch attempts: always ``True`` while closed;
    while open it returns ``False`` until ``reset_timeout`` has elapsed
    since opening, then transitions to half-open and releases exactly one
    probe.  ``record_success`` / ``record_failure`` feed outcomes back.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 6 * 3600.0,
        on_state_change: Optional[Callable[[str, str], None]] = None,
    ):
        if failure_threshold < 1:
            raise PipelineError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise PipelineError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.on_state_change = on_state_change
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.state_changes = 0

    def _transition(self, new_state: str) -> None:
        if new_state == self.state:
            return
        old_state, self.state = self.state, new_state
        self.state_changes += 1
        if self.on_state_change is not None:
            self.on_state_change(old_state, new_state)

    def allow(self, now: float) -> bool:
        """May a fetch attempt for this URL proceed at ``now``?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            opened = self.opened_at if self.opened_at is not None else now
            if now - opened >= self.reset_timeout:
                self._transition(HALF_OPEN)
                return True  # the half-open probe
            return False
        # Half-open: the probe is already in flight; hold everything else.
        return False

    def retry_at(self, now: float) -> float:
        """Earliest time a blocked attempt could be allowed through."""
        if self.state == CLOSED:
            return now
        if self.opened_at is None:
            return now + self.reset_timeout
        return max(now, self.opened_at + self.reset_timeout)

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        self.opened_at = None
        self._transition(CLOSED)

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            # The probe failed: straight back to open, timer restarted.
            self.opened_at = now
            self._transition(OPEN)
        elif (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.opened_at = now
            self._transition(OPEN)
