"""Seeded, deterministic fault injection for the fetch stream.

Xyleme crawls "millions of pages per day" (Section 2.2); at that volume
timeouts, resets, 5xx responses and corrupt payloads are not exceptional,
they are the steady state.  The simulation's crawler can never fail, so
this module manufactures the failures: a :class:`FaultPlan` fixes
per-class injection rates and a seed, and a :class:`FaultInjector` rolls
one deterministic pseudo-random draw per fetch attempt, surfacing the
chosen failure as the matching :class:`~repro.errors.FetchError` subclass.

Determinism contract: the injector owns its *own* RNG stream, so wiring
one into a :class:`~repro.webworld.crawler.SimulatedCrawler` never
perturbs the crawler's content-evolution RNG — a faulty run and a
fault-free run evolve every page identically, which is what makes exact
convergence (same notification set once every retry lands) provable.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import (
    FetchConnectionReset,
    FetchError,
    FetchServerError,
    FetchTimeout,
    GarbageFetch,
    PipelineError,
    TruncatedFetch,
)
from ..observability.metrics import MetricsRegistry, NULL_REGISTRY
from ..observability.names import COUNTER_FAULTS_INJECTED

#: Canonical fault classes, in the (fixed) order the injector's single
#: uniform draw is mapped over — reordering would change seeded runs.
FAULT_KINDS: Tuple[str, ...] = (
    "timeout", "reset", "http_5xx", "truncated", "garbage",
)

#: Fault kinds whose errors are transient (retry may cure them).
TRANSIENT_KINDS: Tuple[str, ...] = (
    "timeout", "reset", "http_5xx", "truncated",
)


@dataclass(frozen=True)
class FaultPlan:
    """Per-class injection rates (probability per fetch attempt) + seed."""

    timeout_rate: float = 0.0
    reset_rate: float = 0.0
    http_5xx_rate: float = 0.0
    truncated_rate: float = 0.0
    garbage_rate: float = 0.0
    seed: int = 0

    def __post_init__(self):
        for kind, rate in self.rates().items():
            if rate < 0.0:
                raise PipelineError(
                    f"fault rate for {kind!r} must be >= 0, got {rate}"
                )
        total = self.total_rate()
        if total > 1.0 + 1e-9:
            raise PipelineError(
                f"fault rates must sum to <= 1.0, got {total}"
            )

    def rates(self) -> Dict[str, float]:
        """kind -> rate, in :data:`FAULT_KINDS` order."""
        return {
            "timeout": self.timeout_rate,
            "reset": self.reset_rate,
            "http_5xx": self.http_5xx_rate,
            "truncated": self.truncated_rate,
            "garbage": self.garbage_rate,
        }

    def total_rate(self) -> float:
        return sum(self.rates().values())

    @classmethod
    def transient_only(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Spread ``rate`` evenly across the four transient classes.

        The chaos-smoke regime: every injected failure is curable by a
        retry, so a healthy system must end the run with an empty
        dead-letter queue.
        """
        share = rate / len(TRANSIENT_KINDS)
        return cls(
            timeout_rate=share,
            reset_rate=share,
            http_5xx_rate=share,
            truncated_rate=share,
            seed=seed,
        )

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Spread ``rate`` evenly across all five classes (garbage too)."""
        share = rate / len(FAULT_KINDS)
        return cls(
            timeout_rate=share,
            reset_rate=share,
            http_5xx_rate=share,
            truncated_rate=share,
            garbage_rate=share,
            seed=seed,
        )


def _status_for(url: str) -> int:
    """Deterministic 5xx status per URL (no extra RNG draw)."""
    return 500 + zlib.crc32(url.encode("utf-8")) % 5


def _build_fault(kind: str, url: str, content: Optional[str]) -> FetchError:
    if kind == "timeout":
        return FetchTimeout(f"fetch of {url} timed out", url=url)
    if kind == "reset":
        return FetchConnectionReset(
            f"connection reset while fetching {url}", url=url
        )
    if kind == "http_5xx":
        status = _status_for(url)
        return FetchServerError(
            f"server answered {status} for {url}", url=url, status=status
        )
    if kind == "truncated":
        payload = content[: len(content) // 3] if content else ""
        return TruncatedFetch(
            f"payload of {url} truncated mid-body", url=url, payload=payload
        )
    if kind == "garbage":
        payload = "�" * 16 + (content[:16] if content else "")
        return GarbageFetch(
            f"payload of {url} is undecodable garbage",
            url=url,
            payload=payload,
        )
    raise PipelineError(f"unknown fault kind {kind!r}")


class FaultInjector:
    """Rolls one deterministic draw per fetch attempt against a plan.

    ``roll`` returns the injected :class:`FetchError` (counted under
    ``faults.injected{kind=...}`` and in :attr:`injected`) or ``None``
    when the attempt passes clean.  One uniform draw is consumed per
    call, mapped over cumulative per-class rates in
    :data:`FAULT_KINDS` order, so the full fault sequence is a pure
    function of the plan.
    """

    def __init__(
        self, plan: FaultPlan, metrics: Optional[MetricsRegistry] = None
    ):
        self.plan = plan
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.rng = random.Random(plan.seed)
        #: kind -> count of faults injected so far.
        self.injected: Dict[str, int] = {}
        self.rolls = 0
        self._cumulative: List[Tuple[float, str]] = []
        edge = 0.0
        for kind in FAULT_KINDS:
            rate = plan.rates()[kind]
            if rate > 0.0:
                edge += rate
                self._cumulative.append((edge, kind))

    def roll(
        self, url: str, content: Optional[str] = None
    ) -> Optional[FetchError]:
        """Decide the fate of one fetch attempt for ``url``."""
        self.rolls += 1
        draw = self.rng.random()
        for edge, kind in self._cumulative:
            if draw < edge:
                self.injected[kind] = self.injected.get(kind, 0) + 1
                self.metrics.counter(
                    COUNTER_FAULTS_INJECTED, kind=kind
                ).inc()
                return _build_fault(kind, url, content)
        return None

    def wrap(
        self,
        stream: Iterable,
        on_fault: Optional[Callable] = None,
    ) -> Iterator:
        """Filter a plain fetch stream through the plan.

        Fetches that roll clean pass through; faulty ones are handed to
        ``on_fault(fetch, error)`` (default: collected in
        :attr:`dropped`) instead of being yielded.  This is the
        stream-level seam for sources without a crawler's scheduling —
        the :class:`~repro.webworld.crawler.SimulatedCrawler` instead
        calls :meth:`roll` directly so it can retry at backoff.
        """
        if on_fault is None:
            on_fault = self.dropped.append_pair
        for fetch in stream:
            fault = self.roll(fetch.url, fetch.content)
            if fault is None:
                yield fetch
            else:
                on_fault(fetch, fault)

    @property
    def dropped(self) -> "_DroppedLog":
        log = getattr(self, "_dropped", None)
        if log is None:
            log = self._dropped = _DroppedLog()
        return log


class _DroppedLog(list):
    """Default ``on_fault`` sink of :meth:`FaultInjector.wrap`."""

    def append_pair(self, fetch, error) -> None:
        self.append((fetch, error))
