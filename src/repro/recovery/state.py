"""Capture and restore of the live pipeline runtime.

``capture_runtime`` walks a :class:`~repro.pipeline.system.SubscriptionSystem`
(and optionally the crawler feeding it) and returns one JSON-serializable
dict; ``restore_runtime`` replays that dict into a *freshly built* system
whose subscriptions were already recovered
(``Database.recover`` + ``SubscriptionManager.recover()`` — definitions
come from the MiniSQL WAL, runtime state from here).

What is checkpointed:

* the simulated clock;
* the Reporter's per-subscription buffers (pending notification elements,
  suppression/rate-limit state, ``when``-condition counters);
* the repository's current document versions (inline, using the same
  encoding as :mod:`repro.repository.persistence` — required so a resumed
  re-feed diffs as ``DOC_UPDATED`` against the same XIDs rather than
  registering every page as ``DOC_NEW``);
* the crawler cursor: page table + contents, the due-time heap, retry
  states, per-URL circuit breakers, counters, and every RNG involved in
  content evolution (crawler, change model, insertion generator, fault
  injector) so the resumed run regenerates byte-identical fetches;
* the change-rate estimator's fetch histories (when one is wired);
* the dead-letter queue.

What is *not* checkpointed (documented scope limits): the trigger
engine's answer store, the email sink's backlog, the report archive and
the metric registries.  Sinks are at-least-once across a crash — the
journal is the exactly-once channel.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from ..diff.xids import XidSpace, max_xid
from ..errors import RecoveryError
from ..faults.dlq import DeadLetterEntry, DeadLetterQueue
from ..faults.retry import CircuitBreaker
from ..repository.metadata import XML, DocumentMeta
from ..repository.store import _StoredDocument
from ..webworld.crawler import CrawledPage, _RetryState
from ..xmlstore.parser import parse
from ..xmlstore.serializer import serialize

#: Bumped on any incompatible change to the state layout.
STATE_VERSION = 1


# -- RNG state ---------------------------------------------------------------


def _encode_rng(rng: random.Random) -> List:
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def _decode_rng(rng: random.Random, payload: List) -> None:
    version, internal, gauss_next = payload
    rng.setstate((version, tuple(internal), gauss_next))


# -- capture -----------------------------------------------------------------


def capture_runtime(
    system: Any,
    crawler: Optional[Any] = None,
    estimator: Optional[Any] = None,
) -> Dict[str, Any]:
    """One JSON-serializable snapshot of the running pipeline."""
    state: Dict[str, Any] = {
        "version": STATE_VERSION,
        "clock": system.clock.now(),
        "documents_fed": system.documents_fed,
        "documents_rejected": system.documents_rejected,
        "reporter": _capture_reporter(system.reporter),
        "repository": _capture_repository(system.repository),
    }
    if system.dead_letters is not None:
        state["dead_letters"] = _capture_dlq(system.dead_letters)
    if crawler is not None:
        state["crawler"] = _capture_crawler(crawler)
    if estimator is not None:
        state["estimator"] = estimator.state_dict()
    return state


def _capture_reporter(reporter: Any) -> Dict[str, Any]:
    buffers: Dict[str, Any] = {}
    for subscription_id, buffer in reporter._buffers.items():
        buffers[str(subscription_id)] = {
            "notifications": [
                serialize(element) for element in buffer.notifications
            ],
            "suppressed": buffer.suppressed,
            "last_delivery_at": buffer.last_delivery_at,
            "pending_rate_limited": buffer.pending_rate_limited,
            "state": {
                "total_count": buffer.state.total_count,
                "counts_by_query": dict(buffer.state.counts_by_query),
                "last_report_at": buffer.state.last_report_at,
                "last_arrival_at": buffer.state.last_arrival_at,
            },
        }
    return {"buffers": buffers}


def _capture_repository(repository: Any) -> Dict[str, Any]:
    documents = []
    for stored in repository._docs.values():
        meta = stored.meta
        entry: Dict[str, Any] = {
            "doc_id": meta.doc_id,
            "url": meta.url,
            "kind": meta.kind,
            "dtd_url": meta.dtd_url,
            "dtd_id": meta.dtd_id,
            "domain": meta.domain,
            "last_accessed": meta.last_accessed,
            "last_updated": meta.last_updated,
            "signature": meta.signature,
            "version": meta.version,
            "importance": meta.importance,
        }
        if stored.current is not None:
            entry["xml"] = serialize(stored.current)
            entry["xids"] = [
                node.xid for node in stored.current.preorder()
            ]
            assert stored.xid_space is not None
            entry["next_xid"] = stored.xid_space.next_xid
        documents.append(entry)
    return {
        "documents": documents,
        "next_doc_id": repository._next_doc_id,
    }


def _capture_dlq(dlq: DeadLetterQueue) -> Dict[str, Any]:
    return {
        "capacity": dlq.capacity,
        "dropped": dlq.dropped,
        "total_quarantined": dlq.total_quarantined,
        "entries": [entry.to_dict() for entry in dlq.entries()],
    }


def _capture_crawler(crawler: Any) -> Dict[str, Any]:
    change_model = crawler.change_model
    if change_model.element_factory != change_model._default_factory:
        raise RecoveryError(
            "cannot checkpoint a crawler whose change model uses a custom"
            " element_factory (its state is not capturable); use the"
            " default factory or checkpoint without the crawler"
        )
    pages = []
    for page in crawler._pages.values():
        pages.append(
            {
                "url": page.url,
                "kind": page.kind,
                "content": (
                    serialize(page.document)
                    if page.document is not None
                    else page.html
                ),
                "importance": page.importance,
                "change_probability": page.change_probability,
                "refresh_interval": page.refresh_interval,
                "next_fetch": page.next_fetch,
                "fetch_count": page.fetch_count,
            }
        )
    breakers = {}
    for url, breaker in crawler._breakers.items():
        breakers[url] = {
            "failure_threshold": breaker.failure_threshold,
            "reset_timeout": breaker.reset_timeout,
            "state": breaker.state,
            "consecutive_failures": breaker.consecutive_failures,
            "opened_at": breaker.opened_at,
            "state_changes": breaker.state_changes,
        }
    state: Dict[str, Any] = {
        "rng": _encode_rng(crawler.rng),
        "base_interval": crawler.base_interval,
        "pages": pages,
        "queue": [[due, url] for due, url in crawler._queue],
        "retry_states": {
            url: {
                "fetch": {
                    "url": retry.fetch.url,
                    "content": retry.fetch.content,
                    "kind": retry.fetch.kind,
                },
                "due": retry.due,
                "attempt": retry.attempt,
            }
            for url, retry in crawler._retry_states.items()
        },
        "breakers": breakers,
        "counters": {
            "fetches_emitted": crawler.fetches_emitted,
            "faults_seen": crawler.faults_seen,
            "retries_scheduled": crawler.retries_scheduled,
            "dead_lettered": crawler.dead_lettered,
        },
        "change_model": {
            "rng": _encode_rng(change_model.rng),
            "insert_serial": change_model._insert_serial,
            "generator_rng": _encode_rng(change_model._insert_generator.rng),
        },
    }
    if crawler.fault_injector is not None:
        injector = crawler.fault_injector
        state["injector"] = {
            "rng": _encode_rng(injector.rng),
            "rolls": injector.rolls,
            "injected": dict(injector.injected),
        }
    return state


# -- restore -----------------------------------------------------------------


def restore_runtime(
    system: Any,
    state: Dict[str, Any],
    crawler: Optional[Any] = None,
    estimator: Optional[Any] = None,
) -> None:
    """Replay a :func:`capture_runtime` snapshot into a fresh system.

    The system's subscriptions must already be recovered (so the
    Reporter's buffers exist); the repository must be empty.  ``crawler``
    / ``estimator``, when given, are restored in place from the matching
    snapshot sections.
    """
    version = state.get("version")
    if version != STATE_VERSION:
        raise RecoveryError(
            f"runtime snapshot version {version!r} is not supported"
            f" (expected {STATE_VERSION})"
        )
    try:
        system.clock.set_time(state["clock"])
    except ValueError as exc:
        raise RecoveryError(
            f"cannot rewind the system clock to the checkpoint: {exc}"
        ) from None
    system.documents_fed = int(state["documents_fed"])
    system.documents_rejected = int(state["documents_rejected"])
    _restore_repository(system.repository, state["repository"])
    _restore_reporter(system.reporter, state["reporter"])
    if "dead_letters" in state:
        if system.dead_letters is None:
            system.dead_letters = DeadLetterQueue(
                capacity=int(state["dead_letters"]["capacity"]),
                metrics=system.metrics,
            )
        _restore_dlq(system.dead_letters, state["dead_letters"])
    if crawler is not None:
        if "crawler" not in state:
            raise RecoveryError(
                "the checkpoint holds no crawler state (it was written"
                " without a crawler attached)"
            )
        _restore_crawler(crawler, state["crawler"])
    if estimator is not None and "estimator" in state:
        estimator.restore_state(state["estimator"])


def _restore_reporter(reporter: Any, state: Dict[str, Any]) -> None:
    for key, payload in state["buffers"].items():
        subscription_id = int(key)
        buffer = reporter._buffers.get(subscription_id)
        if buffer is None:
            raise RecoveryError(
                f"checkpoint names subscription {subscription_id} but the"
                " recovered manager has no report buffer for it — recover"
                " the subscription database first"
            )
        buffer.notifications = [
            parse(xml).root for xml in payload["notifications"]
        ]
        buffer.suppressed = int(payload["suppressed"])
        buffer.last_delivery_at = payload["last_delivery_at"]
        buffer.pending_rate_limited = bool(payload["pending_rate_limited"])
        buffer.state.total_count = int(payload["state"]["total_count"])
        buffer.state.counts_by_query = dict(
            payload["state"]["counts_by_query"]
        )
        buffer.state.last_report_at = payload["state"]["last_report_at"]
        buffer.state.last_arrival_at = payload["state"]["last_arrival_at"]


def _restore_repository(repository: Any, state: Dict[str, Any]) -> None:
    if len(repository):
        raise RecoveryError(
            "restore_runtime needs an empty repository (build a fresh"
            " system before recovering)"
        )
    for entry in state["documents"]:
        meta = DocumentMeta(
            doc_id=entry["doc_id"],
            url=entry["url"],
            kind=entry["kind"],
            dtd_url=entry["dtd_url"],
            dtd_id=entry["dtd_id"],
            domain=entry["domain"],
            last_accessed=entry["last_accessed"],
            last_updated=entry["last_updated"],
            signature=entry["signature"],
            version=entry["version"],
            importance=entry["importance"],
        )
        document = None
        xid_space: Optional[XidSpace] = None
        if entry["kind"] == XML:
            document = parse(entry["xml"])
            nodes = list(document.preorder())
            if len(nodes) != len(entry["xids"]):
                raise RecoveryError(
                    f"checkpoint for document {meta.url} is corrupt: XID"
                    " list does not match the node count"
                )
            for node, xid in zip(nodes, entry["xids"]):
                node.xid = xid
            floor = max(entry["next_xid"], max_xid(document) + 1)
            xid_space = XidSpace(first_xid=floor)
        stored = _StoredDocument(
            meta=meta, current=document, xid_space=xid_space
        )
        repository._by_url[meta.url] = meta.doc_id
        repository._docs[meta.doc_id] = stored
        if document is not None:
            if meta.dtd_url is not None:
                repository.classifier.dtd_registry.register(meta.dtd_url)
            repository.indexes.index_document(
                meta.doc_id, document, domain=meta.domain
            )
    repository._next_doc_id = int(state["next_doc_id"])


def _restore_dlq(dlq: DeadLetterQueue, state: Dict[str, Any]) -> None:
    dlq.purge()
    for record in state["entries"]:
        dlq._entries.append(DeadLetterEntry.from_dict(record))
    dlq.dropped = int(state["dropped"])
    dlq.total_quarantined = int(state["total_quarantined"])
    dlq._depth_gauge.set(len(dlq._entries))


def _restore_crawler(crawler: Any, state: Dict[str, Any]) -> None:
    import heapq

    from ..pipeline.stream import Fetch

    _decode_rng(crawler.rng, state["rng"])
    crawler.base_interval = state["base_interval"]
    crawler._pages = {}
    for entry in state["pages"]:
        is_xml = entry["kind"] == XML
        crawler._pages[entry["url"]] = CrawledPage(
            url=entry["url"],
            kind=entry["kind"],
            document=parse(entry["content"]) if is_xml else None,
            html=None if is_xml else entry["content"],
            importance=entry["importance"],
            change_probability=entry["change_probability"],
            refresh_interval=entry["refresh_interval"],
            next_fetch=entry["next_fetch"],
            fetch_count=entry["fetch_count"],
        )
    queue = [(due, url) for due, url in state["queue"]]
    heapq.heapify(queue)
    crawler._queue = queue
    crawler._retry_states = {
        url: _RetryState(
            fetch=Fetch(
                url=payload["fetch"]["url"],
                content=payload["fetch"]["content"],
                kind=payload["fetch"]["kind"],
            ),
            due=payload["due"],
            attempt=payload["attempt"],
        )
        for url, payload in state["retry_states"].items()
    }
    crawler._breakers = {}
    for url, payload in state["breakers"].items():
        # _breaker_for wires the metric-recording on_state_change wrapper;
        # the dynamic fields are then restored *directly* (not through
        # _transition) so restoration never fires spurious state-change
        # metrics.
        breaker = crawler._breaker_for(url)
        if breaker is None:
            breaker = crawler._breakers[url] = CircuitBreaker(
                failure_threshold=int(payload["failure_threshold"]),
                reset_timeout=payload["reset_timeout"],
            )
        breaker.failure_threshold = int(payload["failure_threshold"])
        breaker.reset_timeout = payload["reset_timeout"]
        breaker.state = payload["state"]
        breaker.consecutive_failures = int(payload["consecutive_failures"])
        breaker.opened_at = payload["opened_at"]
        breaker.state_changes = int(payload["state_changes"])
    counters = state["counters"]
    crawler.fetches_emitted = int(counters["fetches_emitted"])
    crawler.faults_seen = int(counters["faults_seen"])
    crawler.retries_scheduled = int(counters["retries_scheduled"])
    crawler.dead_lettered = int(counters["dead_lettered"])

    change_model = crawler.change_model
    if change_model._insert_generator is None:
        raise RecoveryError(
            "cannot restore crawler state into a change model with a"
            " custom element_factory"
        )
    payload = state["change_model"]
    _decode_rng(change_model.rng, payload["rng"])
    change_model._insert_serial = int(payload["insert_serial"])
    _decode_rng(change_model._insert_generator.rng, payload["generator_rng"])

    if "injector" in state:
        if crawler.fault_injector is None:
            raise RecoveryError(
                "the checkpoint was written with a fault injector wired;"
                " rebuild the crawler with the same FaultPlan before"
                " restoring"
            )
        payload = state["injector"]
        _decode_rng(crawler.fault_injector.rng, payload["rng"])
        crawler.fault_injector.rolls = int(payload["rolls"])
        crawler.fault_injector.injected = {
            kind: int(count)
            for kind, count in payload["injected"].items()
        }
