"""End-to-end crash recovery: durable runtime journal + exactly-once resume.

The paper's Subscription Manager keeps its state in MySQL "for recovery";
PR 3 reproduced that for subscription *definitions* (the MiniSQL WAL).
This package extends crash-consistency to the *runtime*: the Reporter's
buffered notifications, the crawler/refresh schedule cursor, circuit
breakers and the dead-letter queue — everything a crash mid-stream would
otherwise silently lose or double-deliver.

Three pieces:

* :class:`RuntimeJournal` — a JSON-lines WAL (reusing
  :mod:`repro.minisql.wal`) of delivered-notification ids, periodically
  compacted into a full runtime snapshot (checkpoint + truncate);
* :mod:`repro.recovery.state` — capture/restore of the live runtime
  (reporter buffers, repository, crawler cursor, breakers, DLQ, RNGs);
* :class:`RecoveryManager` — the coordinator wired into a
  :class:`~repro.pipeline.system.SubscriptionSystem`: journals every
  delivery, checkpoints every ``checkpoint_every`` batches (at
  stream-quiescent points), and dedups redelivery on resume so the
  journal is an exactly-once channel.

Entry points: ``SubscriptionSystem.enable_recovery()`` /
``SubscriptionSystem.recover_runtime()``, ``IngestSession.resume()`` and
the ``repro-monitor resume`` CLI subcommand.  The deterministic crash
harness lives in :mod:`repro.faults.killpoints`.  See
docs/ROBUSTNESS.md, "Crash recovery & exactly-once delivery".
"""

from .journal import RuntimeJournal
from .manager import RecoveryManager
from .state import capture_runtime, restore_runtime

__all__ = [
    "RecoveryManager",
    "RuntimeJournal",
    "capture_runtime",
    "restore_runtime",
]
