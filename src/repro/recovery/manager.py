"""The RecoveryManager: exactly-once delivery accounting + checkpoints.

One manager attaches to one :class:`~repro.pipeline.system.SubscriptionSystem`
(via ``enable_recovery`` / ``recover_runtime``) and does three jobs:

* **journal every delivery** — it taps ``Reporter.delivery_hook``, so
  each outgoing notification is assigned a deterministic delivery id and
  appended to the :class:`~repro.recovery.journal.RuntimeJournal`
  *before* the in-memory report buffers absorb it;
* **checkpoint periodically** — every ``checkpoint_every`` ingested
  batches it captures the full runtime
  (:func:`repro.recovery.state.capture_runtime`) and compacts the
  journal.  Checkpoints only happen at stream-quiescent points: while an
  :class:`~repro.pipeline.ingest.IngestSession` stream is active the
  checkpoint is deferred to stream end (the feeder thread would race the
  crawler state otherwise);
* **dedup on resume** — after a crash, ``recover_runtime`` reloads the
  journal; the resumed run rewinds to the checkpoint and regenerates the
  post-checkpoint window, and the manager recognises the recomputed
  delivery ids in its ``seen`` set, counting them under
  ``recovery.deduped`` instead of journaling them twice.

Delivery ids are content-addressed: the SHA-1 of
``(subscription_id, query_name, serialized elements, clock.now())``
plus a per-digest occurrence counter (``<digest>:<n>``), so identical
payloads delivered repeatedly stay distinct while a *replayed* delivery
of the same content at the same simulated instant maps onto the same id.
Occurrence counters are restored from the snapshot only — never advanced
by log replay — which is exactly what lets the regenerated window
recompute identical ids.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Set

from ..errors import RecoveryError
from ..faults.killpoints import (
    KILL_POINT_POST_DELIVER,
    KILL_POINT_PRE_DELIVER,
    maybe_kill,
)
from ..observability.names import (
    COUNTER_RECOVERY_CHECKPOINTS,
    COUNTER_RECOVERY_DEDUPED,
    COUNTER_RECOVERY_REPLAYED,
)
from ..xmlstore.serializer import serialize
from .journal import RuntimeJournal
from .state import capture_runtime, restore_runtime


class RecoveryManager:
    """Coordinates journal, checkpoints and exactly-once dedup for one
    system (see the module docstring)."""

    def __init__(
        self,
        system: Any,
        path: str,
        crawler: Optional[Any] = None,
        estimator: Optional[Any] = None,
        checkpoint_every: int = 64,
        sync_every: int = 1,
        metadata: Optional[Dict[str, Any]] = None,
    ):
        if checkpoint_every < 1:
            raise RecoveryError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.system = system
        #: Free-form JSON carried inside every checkpoint (the CLI stores
        #: its scenario configuration here so ``resume`` is self-contained).
        self.metadata = metadata
        self.crawler = crawler
        self.estimator = estimator
        self.checkpoint_every = checkpoint_every
        self.journal = RuntimeJournal(path, sync_every=sync_every)
        self.seen: Set[str] = set()
        self.occurrences: Dict[str, int] = {}
        self.checkpoints = 0
        self.deduped = 0
        self.replayed = 0
        self._batches_since_checkpoint = 0
        self._stream_active = False
        self._checkpoint_due = False

    # -- wiring ------------------------------------------------------------

    def attach(self) -> None:
        """Hook into the system: tap deliveries, claim ``system.recovery``
        and intern the recovery counters (lazily — they only enter the
        metric registry once recovery is enabled, so zero-recovery
        snapshots are unchanged)."""
        if self.system.recovery is not None and self.system.recovery is not self:
            raise RecoveryError(
                "the system already has a RecoveryManager attached"
            )
        self.system.recovery = self
        self.system.reporter.delivery_hook = self._on_deliver
        self._checkpoint_counter = self.system.metrics.counter(
            COUNTER_RECOVERY_CHECKPOINTS
        )
        self._deduped_counter = self.system.metrics.counter(
            COUNTER_RECOVERY_DEDUPED
        )
        self._replayed_counter = self.system.metrics.counter(
            COUNTER_RECOVERY_REPLAYED
        )

    # -- delivery journal --------------------------------------------------

    def _delivery_id(
        self,
        subscription_id: int,
        query_name: Optional[str],
        elements: List[Any],
    ) -> str:
        payload = json.dumps(
            [
                subscription_id,
                query_name,
                [serialize(element) for element in elements],
                self.system.clock.now(),
            ],
            sort_keys=True,
            separators=(",", ":"),
        )
        digest = hashlib.sha1(payload.encode("utf-8")).hexdigest()
        occurrence = self.occurrences.get(digest, 0) + 1
        self.occurrences[digest] = occurrence
        return f"{digest}:{occurrence}"

    def _on_deliver(
        self,
        subscription_id: int,
        query_name: Optional[str],
        elements: List[Any],
    ) -> None:
        maybe_kill(KILL_POINT_PRE_DELIVER)
        delivery_id = self._delivery_id(subscription_id, query_name, elements)
        if delivery_id in self.seen:
            # A resumed run regenerating the post-checkpoint window: the
            # journal already holds this delivery, so only the in-memory
            # redelivery proceeds.
            self.deduped += 1
            self._deduped_counter.inc()
        else:
            self.journal.append_delivery(delivery_id)
            self.seen.add(delivery_id)
        maybe_kill(KILL_POINT_POST_DELIVER)

    # -- checkpoint cadence ------------------------------------------------

    def note_batch(self) -> None:
        """Called by the system after every ingested batch; triggers a
        checkpoint each ``checkpoint_every`` batches (deferred to stream
        end while a stream is active)."""
        self._batches_since_checkpoint += 1
        if self._batches_since_checkpoint >= self.checkpoint_every:
            if self._stream_active:
                self._checkpoint_due = True
            else:
                self.checkpoint()

    def stream_started(self) -> None:
        self._stream_active = True

    def stream_finished(self) -> None:
        """Stream drained cleanly — fire any deferred checkpoint now that
        the runtime is quiescent."""
        self._stream_active = False
        if self._checkpoint_due:
            self.checkpoint()

    def stream_aborted(self) -> None:
        """Stream unwound on an exception (including a
        :class:`~repro.faults.killpoints.CrashPoint`): never checkpoint
        here — the runtime is mid-stream and a snapshot of it would not
        be a sound resume point."""
        self._stream_active = False

    def checkpoint(self) -> None:
        """Capture the runtime and compact the journal."""
        state = capture_runtime(
            self.system, crawler=self.crawler, estimator=self.estimator
        )
        if self.metadata is not None:
            state["metadata"] = self.metadata
        self.journal.checkpoint(
            state, self.seen, self.occurrences, self.checkpoints + 1
        )
        self.checkpoints += 1
        self._checkpoint_counter.inc()
        self._batches_since_checkpoint = 0
        self._checkpoint_due = False

    def close(self) -> None:
        self.journal.close()

    # -- resume ------------------------------------------------------------

    def recover(self) -> None:
        """Load the journal and rebuild the runtime into ``self.system``
        (which must be freshly built with its subscriptions already
        recovered).  Used by ``SubscriptionSystem.recover_runtime``."""
        if not self.journal.exists():
            raise RecoveryError(
                f"no checkpoint found at {self.journal.path}.snapshot —"
                " nothing to recover"
            )
        state, seen, occurrences, replayed = self.journal.load()
        if state is None:
            raise RecoveryError(
                f"checkpoint at {self.journal.path} holds no runtime state"
            )
        restore_runtime(
            self.system,
            state,
            crawler=self.crawler,
            estimator=self.estimator,
        )
        if self.metadata is None:
            self.metadata = state.get("metadata")
        self.seen = seen
        self.occurrences = occurrences
        self.replayed = replayed
        self.checkpoints = self.journal.loaded_checkpoints
        self.attach()
        if replayed:
            self._replayed_counter.inc(replayed)
