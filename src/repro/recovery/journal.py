"""The runtime journal: delivered-notification WAL + checkpoint snapshots.

Layout on disk (same machinery as the MiniSQL store,
:mod:`repro.minisql.wal`):

* ``<path>`` — JSON-lines log, one record per journaled delivery::

      {"op": "deliver", "id": "<sha1-digest>:<occurrence>"}

* ``<path>.snapshot`` — the last checkpoint, written atomically
  (temp file + ``os.replace``)::

      {"state": {...runtime state...},      # see repro.recovery.state
       "seen": ["<id>", ...],               # ids delivered before the ckpt
       "occurrences": {"<digest>": n, ...}, # per-digest delivery counts
       "checkpoints": k}

A checkpoint writes the snapshot *first*, then truncates the log — a
crash between the two (the ``mid-checkpoint`` kill point) leaves stale
pre-snapshot records in the log, which :meth:`RuntimeJournal.load`
absorbs idempotently: replaying a delivery id already in the snapshot's
``seen`` set is a no-op.

Exactly-once accounting: ``load`` returns ``replayed`` — the number of
log ids *not* covered by the snapshot, i.e. deliveries made after the
last checkpoint.  A resumed run regenerates exactly that window (the
runtime rewinds to the checkpoint), recomputes the same ids, and dedups
them against ``seen`` — so ``recovery.deduped == recovery.replayed``
once the resumed run has caught up, and the journal never holds a
duplicate id.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Set, Tuple

from ..errors import RecoveryError
from ..faults.killpoints import KILL_POINT_MID_CHECKPOINT, maybe_kill
from ..minisql.wal import (
    WriteAheadLog,
    read_snapshot,
    snapshot_path,
    write_snapshot,
)

_OP_DELIVER = "deliver"


class RuntimeJournal:
    """Durable record of deliveries + periodic runtime checkpoints."""

    def __init__(self, path: str, sync_every: int = 1):
        self.path = path
        self._wal = WriteAheadLog(path, sync_every=sync_every)
        #: Cumulative checkpoint count read back by :meth:`load` (so a
        #: resumed run keeps numbering checkpoints where it left off).
        self.loaded_checkpoints = 0

    # -- writing -----------------------------------------------------------

    def append_delivery(self, delivery_id: str) -> None:
        """Journal one delivered-notification id (fsynced per
        ``sync_every``; the default of 1 makes every delivery durable
        before the in-memory buffers see it)."""
        self._wal.append({"op": _OP_DELIVER, "id": delivery_id})

    def checkpoint(
        self,
        state: Dict[str, Any],
        seen: Set[str],
        occurrences: Dict[str, int],
        checkpoints: int,
    ) -> None:
        """Write a full runtime snapshot, then truncate the log."""
        write_snapshot(
            self.path,
            {
                "state": state,
                "seen": sorted(seen),
                "occurrences": occurrences,
                "checkpoints": checkpoints,
            },
        )
        maybe_kill(KILL_POINT_MID_CHECKPOINT)
        self._wal.truncate()

    def close(self) -> None:
        self._wal.close()

    # -- reading -----------------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(snapshot_path(self.path))

    def load(
        self,
    ) -> Tuple[Optional[Dict[str, Any]], Set[str], Dict[str, int], int]:
        """Read the snapshot and replay the log.

        Returns ``(state, seen, occurrences, replayed)`` where ``state``
        is the checkpointed runtime (``None`` if no checkpoint was ever
        written), ``seen`` is the union of the snapshot's delivered ids
        and the log's, ``occurrences`` comes from the snapshot *only*
        (log replay must not advance it — the resumed run regenerates
        the post-checkpoint deliveries and must recompute the same
        occurrence numbers), and ``replayed`` counts the log ids absent
        from the snapshot.
        """
        snapshot = read_snapshot(self.path)
        state: Optional[Dict[str, Any]] = None
        seen: Set[str] = set()
        occurrences: Dict[str, int] = {}
        if snapshot is not None:
            state = snapshot.get("state")
            self.loaded_checkpoints = int(snapshot.get("checkpoints", 0))
            seen = set(snapshot.get("seen", []))
            occurrences = {
                digest: int(count)
                for digest, count in snapshot.get("occurrences", {}).items()
            }
        replayed = 0
        for record in self._wal.records():
            if record.get("op") != _OP_DELIVER:
                raise RecoveryError(
                    f"unknown journal record {record!r} in {self.path}"
                )
            delivery_id = record["id"]
            if delivery_id not in seen:
                seen.add(delivery_id)
                replayed += 1
        return state, seen, occurrences, replayed
