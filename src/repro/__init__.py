"""repro — reproduction of "Monitoring XML Data on the Web" (SIGMOD 2001).

The package implements the Xyleme change-control / subscription subsystem
described by Nguyen, Abiteboul, Cobéna and Preda, plus every substrate it
depends on, in pure Python:

* ``repro.core`` — the Monitoring Query Processor and the **Atomic Event
  Sets** algorithm (the paper's primary contribution), with the naive and
  counting baselines and the two distribution axes;
* ``repro.language`` — the subscription language (monitoring queries,
  continuous queries, reports, refresh, virtual subscriptions);
* ``repro.alerters`` — URL / XML / HTML alerters;
* ``repro.subscription`` — the Subscription Manager (compilation, routing,
  cost control, SQL-backed persistence and recovery);
* ``repro.triggers`` / ``repro.reporting`` — Trigger Engine and Reporter;
* ``repro.xmlstore`` / ``repro.diff`` / ``repro.query`` /
  ``repro.repository`` / ``repro.minisql`` — XML, versioning, query and
  storage substrates;
* ``repro.webworld`` — the synthetic web and the paper's controlled
  experiment workloads;
* ``repro.pipeline`` — :class:`SubscriptionSystem`, the assembled system;
* ``repro.observability`` — metrics registry + stage tracing threaded
  through every stage above (``system.metrics_snapshot()``);
* ``repro.faults`` — seeded fault injection plus the resilience toolkit
  (retry with backoff, circuit breakers, dead-letter quarantine) the
  crawler and pipeline use to survive a hostile web.

Quickstart::

    from repro import SubscriptionSystem

    system = SubscriptionSystem()
    system.subscribe('''
        subscription Products
        monitoring NewProduct
        select X
        from self//Product X
        where URL extends "http://www.shop.example/catalog/"
          and new X
        report when immediate
    ''', owner_email="me@example.org")
    system.feed_xml("http://www.shop.example/catalog/products.xml",
                    "<catalog><Product><name>camera</name></Product></catalog>")
"""

from .clock import SimulatedClock, WallClock
from .core import (
    AESMatcher,
    Alert,
    AtomicEventKey,
    CountingMatcher,
    EventRegistry,
    FlowPartitionedProcessor,
    MonitoringQueryProcessor,
    NaiveMatcher,
    Notification,
    SubscriptionPartitionedProcessor,
)
from .errors import ReproError
from .language import parse_subscription, validate_subscription
from .observability import (
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    StageTracer,
)
from .pipeline import Fetch, FeedResult, SubscriptionSystem
from .query import QueryEngine, parse_query
from .repository import Repository, SemanticClassifier
from .webworld import (
    SimulatedCrawler,
    SiteGenerator,
    SyntheticWorkload,
    WorkloadParams,
)
from .xmlstore import Document, ElementNode, TextNode, parse, serialize

__version__ = "1.0.0"

__all__ = [
    "SimulatedClock",
    "WallClock",
    "AESMatcher",
    "Alert",
    "AtomicEventKey",
    "CountingMatcher",
    "EventRegistry",
    "FlowPartitionedProcessor",
    "MonitoringQueryProcessor",
    "NaiveMatcher",
    "Notification",
    "SubscriptionPartitionedProcessor",
    "ReproError",
    "parse_subscription",
    "validate_subscription",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "StageTracer",
    "Fetch",
    "FeedResult",
    "SubscriptionSystem",
    "QueryEngine",
    "parse_query",
    "Repository",
    "SemanticClassifier",
    "SimulatedCrawler",
    "SiteGenerator",
    "SyntheticWorkload",
    "WorkloadParams",
    "Document",
    "ElementNode",
    "TextNode",
    "parse",
    "serialize",
    "__version__",
]
