"""Frequencies used by continuous queries, reports, refresh and archive.

The paper's example says ``try biweekly ... twice a week``, so ``biweekly``
means *semi-weekly* (every 3.5 days), not fortnightly.  ``monthly`` is 30
days by convention.
"""

from __future__ import annotations

from ..clock import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MONTH,
    SECONDS_PER_WEEK,
)
from ..errors import SubscriptionSyntaxError

HOURLY = "hourly"
DAILY = "daily"
BIWEEKLY = "biweekly"
WEEKLY = "weekly"
MONTHLY = "monthly"

PERIODS = {
    HOURLY: SECONDS_PER_HOUR,
    DAILY: SECONDS_PER_DAY,
    BIWEEKLY: SECONDS_PER_WEEK / 2,
    WEEKLY: SECONDS_PER_WEEK,
    MONTHLY: SECONDS_PER_MONTH,
}

FREQUENCY_WORDS = frozenset(PERIODS)


def period_seconds(frequency: str) -> float:
    """Seconds of one period of ``frequency`` (raises on unknown words)."""
    try:
        return PERIODS[frequency]
    except KeyError:
        raise SubscriptionSyntaxError(
            f"unknown frequency {frequency!r}; expected one of"
            f" {sorted(PERIODS)}"
        ) from None
