"""Lexer for the subscription language.

Token kinds: WORD, STRING, NUMBER, CMP (comparators), PUNCT and TEMPLATE
(a balanced XML snippet following ``select``, captured verbatim).  ``%``
starts a comment running to end of line — the paper's examples use this.

Tokens carry (line, column) and the source span, so the parser can slice
embedded warehouse-query text verbatim out of the subscription source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import SubscriptionSyntaxError

WORD = "word"
STRING = "string"
NUMBER = "number"
CMP = "cmp"
PUNCT = "punct"
TEMPLATE = "template"

_COMPARATORS = ("<=", ">=", "!=", "=", "<", ">")
#: ``@`` and ``*`` appear inside embedded warehouse-query text (report and
#: continuous queries), which the subscription lexer passes through.
_PUNCT_CHARS = ",.()@*"


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int
    column: int
    start: int  # offset into the source
    end: int


class Lexer:
    def __init__(self, source: str):
        self.source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            token = self._next_token(
                template_ok=bool(out)
                and out[-1].kind == WORD
                and out[-1].value == "select"
            )
            if token is None:
                return out
            out.append(token)

    # -- internals -----------------------------------------------------------

    def _error(self, message: str) -> SubscriptionSyntaxError:
        return SubscriptionSyntaxError(message, self._line, self._column)

    def _advance(self, count: int) -> str:
        chunk = self.source[self._pos : self._pos + count]
        for ch in chunk:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return chunk

    def _skip_blank(self) -> None:
        while self._pos < len(self.source):
            ch = self.source[self._pos]
            if ch in " \t\r\n":
                self._advance(1)
            elif ch == "%":
                end = self.source.find("\n", self._pos)
                if end == -1:
                    end = len(self.source)
                self._advance(end - self._pos)
            else:
                return

    def _next_token(self, template_ok: bool) -> Optional[Token]:
        self._skip_blank()
        if self._pos >= len(self.source):
            return None
        line, column, start = self._line, self._column, self._pos
        ch = self.source[self._pos]

        if ch == "<" and template_ok:
            value = self._read_template()
            return Token(TEMPLATE, value, line, column, start, self._pos)

        for comparator in _COMPARATORS:
            if self.source.startswith(comparator, self._pos):
                self._advance(len(comparator))
                return Token(CMP, comparator, line, column, start, self._pos)

        if ch in "\"'":
            value = self._read_string()
            return Token(STRING, value, line, column, start, self._pos)

        if ch in _PUNCT_CHARS:
            self._advance(1)
            return Token(PUNCT, ch, line, column, start, self._pos)

        if ch.isdigit():
            value = self._read_number()
            return Token(NUMBER, value, line, column, start, self._pos)

        if ch.isalpha() or ch in "_/":
            value = self._read_word()
            return Token(WORD, value, line, column, start, self._pos)

        raise self._error(f"unexpected character {ch!r}")

    def _read_string(self) -> str:
        quote = self.source[self._pos]
        self._advance(1)
        end = self.source.find(quote, self._pos)
        if end == -1:
            raise self._error("unterminated string literal")
        value = self.source[self._pos : end]
        self._advance(end - self._pos + 1)
        return value

    def _read_number(self) -> str:
        start = self._pos
        while self._pos < len(self.source) and (
            self.source[self._pos].isdigit() or self.source[self._pos] == "."
        ):
            # A trailing dot is punctuation (e.g. "Sub.Query"), not decimal.
            if self.source[self._pos] == "." and not (
                self._pos + 1 < len(self.source)
                and self.source[self._pos + 1].isdigit()
            ):
                break
            self._advance(1)
        return self.source[start : self._pos]

    def _read_word(self) -> str:
        start = self._pos
        while self._pos < len(self.source) and (
            self.source[self._pos].isalnum()
            or self.source[self._pos] in "_-:/"
        ):
            self._advance(1)
        return self.source[start : self._pos]

    def _read_template(self) -> str:
        """Capture a balanced XML snippet starting at ``<``.

        Handles self-closing elements and nested same-name elements; string
        attribute values may contain angle brackets.
        """
        start = self._pos
        depth = 0
        in_quote: Optional[str] = None
        while self._pos < len(self.source):
            ch = self.source[self._pos]
            if in_quote is not None:
                if ch == in_quote:
                    in_quote = None
                self._advance(1)
                continue
            if ch in "\"'":
                in_quote = ch
                self._advance(1)
                continue
            if ch == "<":
                if self.source.startswith("</", self._pos):
                    depth -= 1
                else:
                    depth += 1
                self._advance(1)
                continue
            if ch == ">":
                if self.source[self._pos - 1] == "/":
                    depth -= 1  # self-closing tag
                self._advance(1)
                if depth == 0:
                    return self.source[start : self._pos]
                continue
            self._advance(1)
        raise self._error("unterminated XML template in select clause")


def tokenize(source: str) -> List[Token]:
    return Lexer(source).tokens()
