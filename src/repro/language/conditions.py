"""Mapping parsed atomic conditions onto atomic-event keys.

"Each atomic condition is mapped to an atomic event" (Section 5.1).  The
key's ``kind`` selects which alerter detects it; the ``argument`` carries
the condition's parameters in canonical (interned-comparable) form, so two
users monitoring the same thing share one atomic event.

Element conditions may target a *variable* bound in the ``from`` clause
(``where ... and new X`` with ``from self//Member X``): the variable
resolves to the last tag of its binding path.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.events import AtomicEventKey
from ..errors import SubscriptionError
from ..xmlstore.words import normalize_word
from .ast import (
    AtomicCondition,
    DOC_STATUS,
    DOCID_EQ,
    DOMAIN_EQ,
    DTD_EQ,
    DTDID_EQ,
    ELEMENT,
    FILENAME_EQ,
    FromBinding,
    KIND_DELETED,
    KIND_NEW,
    KIND_UNCHANGED,
    KIND_UPDATED,
    LAST_ACCESSED,
    LAST_UPDATE,
    SELF_CONTAINS,
    URL_EQ,
    URL_EXTENDS,
)

#: Event-key kinds detected by the URL alerter.
URL_ALERTER_KINDS = frozenset(
    {
        "url_extends",
        "url_eq",
        "filename_eq",
        "dtd_eq",
        "dtdid_eq",
        "docid_eq",
        "domain_eq",
        "last_accessed",
        "last_update",
        "doc_new",
        "doc_updated",
        "doc_unchanged",
        "doc_deleted",
    }
)
#: Event-key kinds detected by the XML alerter.
XML_ALERTER_KINDS = frozenset(
    {"self_contains", "tag_present", "tag_new", "tag_updated", "tag_deleted"}
)

_DOC_STATUS_KEYS = {
    KIND_NEW: "doc_new",
    KIND_UPDATED: "doc_updated",
    KIND_UNCHANGED: "doc_unchanged",
    KIND_DELETED: "doc_deleted",
}
_ELEMENT_KIND_KEYS = {
    None: "tag_present",
    KIND_NEW: "tag_new",
    KIND_UPDATED: "tag_updated",
    KIND_DELETED: "tag_deleted",
}


def resolve_target_tag(
    target: str, from_bindings: Sequence[FromBinding]
) -> str:
    """Resolve a condition target: bound variable -> its path's last tag."""
    for binding in from_bindings:
        if binding.variable == target:
            return last_tag_of_path(binding.path)
    return target


def last_tag_of_path(path: str) -> str:
    """The element tag a binding path selects (``self//Member`` -> Member)."""
    tail = path.rstrip("/").rsplit("/", 1)[-1]
    if not tail or tail == "self" or tail == "*":
        raise SubscriptionError(
            f"cannot derive a tag from binding path {path!r}"
        )
    return tail


def condition_event_key(
    condition: AtomicCondition,
    from_bindings: Sequence[FromBinding] = (),
) -> AtomicEventKey:
    """Canonical :class:`AtomicEventKey` for one parsed atomic condition."""
    kind = condition.kind
    if kind == URL_EXTENDS:
        return AtomicEventKey("url_extends", condition.string)
    if kind == URL_EQ:
        return AtomicEventKey("url_eq", condition.string)
    if kind == FILENAME_EQ:
        return AtomicEventKey("filename_eq", condition.string)
    if kind == DTD_EQ:
        return AtomicEventKey("dtd_eq", condition.string)
    if kind == DTDID_EQ:
        return AtomicEventKey("dtdid_eq", int(condition.number or 0))
    if kind == DOCID_EQ:
        return AtomicEventKey("docid_eq", int(condition.number or 0))
    if kind == DOMAIN_EQ:
        return AtomicEventKey("domain_eq", condition.string)
    if kind == LAST_ACCESSED:
        return AtomicEventKey(
            "last_accessed", (condition.comparator, condition.number)
        )
    if kind == LAST_UPDATE:
        return AtomicEventKey(
            "last_update", (condition.comparator, condition.number)
        )
    if kind == SELF_CONTAINS:
        return AtomicEventKey(
            "self_contains", normalize_word(condition.string or "")
        )
    if kind == DOC_STATUS:
        status_kind = _DOC_STATUS_KEYS.get(condition.change_kind or "")
        if status_kind is None:
            raise SubscriptionError(
                f"unknown document status {condition.change_kind!r}"
            )
        return AtomicEventKey(status_kind)
    if kind == ELEMENT:
        event_kind = _ELEMENT_KIND_KEYS.get(condition.change_kind)
        if event_kind is None:
            raise SubscriptionError(
                f"unsupported element change kind {condition.change_kind!r}"
            )
        tag = resolve_target_tag(condition.target or "", from_bindings)
        word: Optional[str] = None
        if condition.string is not None:
            word = normalize_word(condition.string)
        return AtomicEventKey(event_kind, (tag, word, condition.strict))
    raise SubscriptionError(f"unknown condition kind {kind!r}")
