"""Static validation of parsed subscriptions.

Applies the checks the Subscription Manager runs before accepting a
subscription:

* the weak/strong rule (Section 5.1): each monitoring query's ``where``
  clause must contain at least one strong condition;
* variable hygiene: select items and element conditions referring to
  variables must use variables bound by the ``from`` clause;
* trigger references: a continuous query triggered by a notification must
  name a monitoring query of some subscription (checked against this
  subscription when the names match);
* a non-virtual subscription must do *something* (have a query or refresh).

Resource/cost control (stop words, too-wide domains, too-frequent triggers,
Section 5.4) is dynamic and lives in ``repro.subscription.cost``.
"""

from __future__ import annotations

from typing import List

from ..errors import SubscriptionError, WeakConditionError
from .ast import MonitoringQuery, Subscription
from .frequencies import FREQUENCY_WORDS


def validate_subscription(subscription: Subscription) -> None:
    """Raise a :class:`SubscriptionError` subclass on the first violation."""
    if not (
        subscription.monitoring
        or subscription.continuous
        or subscription.refreshes
        or subscription.virtuals
    ):
        raise SubscriptionError(
            f"subscription {subscription.name!r} is empty"
        )
    # The when clause of a report is compulsory (Section 5.3), but the
    # section itself may be omitted — the Subscription Manager then attaches
    # a default ``report when immediate`` (see repro.subscription.compiler).
    seen_names: set = set()
    for query in subscription.monitoring:
        if query.name is not None:
            if query.name in seen_names:
                raise SubscriptionError(
                    f"duplicate monitoring query name {query.name!r}"
                )
            seen_names.add(query.name)
        _validate_monitoring(subscription.name, query)
    for continuous in subscription.continuous:
        if continuous.name in seen_names:
            raise SubscriptionError(
                f"duplicate query name {continuous.name!r}"
            )
        seen_names.add(continuous.name)
        if (continuous.frequency is None) == (continuous.trigger is None):
            raise SubscriptionError(
                f"continuous query {continuous.name!r} needs exactly one of"
                " a frequency or a notification trigger"
            )
        if (
            continuous.frequency is not None
            and continuous.frequency not in FREQUENCY_WORDS
        ):
            raise SubscriptionError(
                f"unknown frequency {continuous.frequency!r}"
            )


def _validate_monitoring(
    subscription_name: str, query: MonitoringQuery
) -> None:
    if not query.conditions:
        raise SubscriptionError(
            f"monitoring query in {subscription_name!r} has no condition"
        )
    for disjunct in query.all_disjuncts():
        if all(condition.weak for condition in disjunct):
            raise WeakConditionError(
                f"monitoring query in {subscription_name!r} has a disjunct"
                " using only weak conditions (new/updated/unchanged self);"
                " add a strong condition such as a URL pattern"
            )
    bound = {binding.variable for binding in query.from_bindings}
    for item in _select_variables(query):
        if item not in bound:
            raise SubscriptionError(
                f"select item {item!r} is not bound by the from clause"
            )


def _select_variables(query: MonitoringQuery) -> List[str]:
    names: List[str] = []
    for item in query.select.items:
        head = item.split("/", 1)[0].split("@", 1)[0]
        if head and head != "self":
            names.append(head)
    return names
