"""Unparser: Subscription AST -> subscription-language source.

The Subscription Manager persists subscription *text* for recovery; when a
subscription is registered programmatically (built as an AST), this module
renders canonical source for it.  ``parse_subscription(unparse(ast))``
reproduces the AST — a property the test suite checks.
"""

from __future__ import annotations

from typing import List

from ..errors import SubscriptionError
from .ast import (
    AtomicCondition,
    ContinuousQuery,
    CountCondition,
    DOC_STATUS,
    DOCID_EQ,
    DOMAIN_EQ,
    DTD_EQ,
    DTDID_EQ,
    ELEMENT,
    FILENAME_EQ,
    ImmediateCondition,
    LAST_ACCESSED,
    LAST_UPDATE,
    MonitoringQuery,
    PeriodicCondition,
    ReportSpec,
    SELF_CONTAINS,
    Subscription,
    URL_EQ,
    URL_EXTENDS,
)


def unparse(subscription: Subscription) -> str:
    """Render a subscription AST back to source text."""
    lines: List[str] = [f"subscription {subscription.name}"]
    for query in subscription.monitoring:
        lines.append("")
        lines.extend(_monitoring_lines(query))
    for continuous in subscription.continuous:
        lines.append("")
        lines.extend(_continuous_lines(continuous))
    if subscription.report is not None:
        lines.append("")
        lines.extend(_report_lines(subscription.report))
    for refresh in subscription.refreshes:
        lines.append("")
        lines.append(f'refresh "{refresh.url}" {refresh.frequency}')
    for virtual in subscription.virtuals:
        lines.append("")
        if virtual.query is None:
            lines.append(f"virtual {virtual.subscription}")
        else:
            lines.append(f"virtual {virtual.subscription}.{virtual.query}")
    return "\n".join(lines) + "\n"


def _monitoring_lines(query: MonitoringQuery) -> List[str]:
    lines = [
        f"monitoring {query.name}" if query.name else "monitoring"
    ]
    if query.select.template is not None:
        lines.append(f"select {query.select.template}")
    elif query.select.items:
        lines.append("select " + ", ".join(query.select.items))
    else:
        raise SubscriptionError(
            "cannot unparse an empty select specification"
        )
    if query.from_bindings:
        bindings = ", ".join(
            f"{binding.path} {binding.variable}"
            for binding in query.from_bindings
        )
        lines.append(f"from {bindings}")
    disjunct_texts = [
        "\n  and ".join(
            unparse_condition(condition) for condition in disjunct
        )
        for disjunct in query.all_disjuncts()
    ]
    lines.append("where " + "\n  or ".join(disjunct_texts))
    return lines


def unparse_condition(condition: AtomicCondition) -> str:
    kind = condition.kind
    if kind == URL_EXTENDS:
        return f'URL extends "{condition.string}"'
    if kind == URL_EQ:
        return f'URL = "{condition.string}"'
    if kind == FILENAME_EQ:
        return f'filename = "{condition.string}"'
    if kind == DTD_EQ:
        return f'DTD = "{condition.string}"'
    if kind == DTDID_EQ:
        return f"DTDID = {int(condition.number or 0)}"
    if kind == DOCID_EQ:
        return f"DOCID = {int(condition.number or 0)}"
    if kind == DOMAIN_EQ:
        return f'domain = "{condition.string}"'
    if kind == LAST_ACCESSED:
        return f"LastAccessed {condition.comparator} {condition.number:.0f}"
    if kind == LAST_UPDATE:
        return f"LastUpdate {condition.comparator} {condition.number:.0f}"
    if kind == SELF_CONTAINS:
        return f'self contains "{condition.string}"'
    if kind == DOC_STATUS:
        return f"{condition.change_kind} self"
    if kind == ELEMENT:
        parts = []
        if condition.change_kind is not None:
            parts.append(condition.change_kind)
        parts.append(condition.target or "")
        if condition.string is not None:
            if condition.strict:
                parts.append(f'strict contains "{condition.string}"')
            else:
                parts.append(f'contains "{condition.string}"')
        return " ".join(part for part in parts if part)
    raise SubscriptionError(f"cannot unparse condition kind {kind!r}")


def _continuous_lines(continuous: ContinuousQuery) -> List[str]:
    head = "continuous "
    if continuous.delta:
        head += "delta "
    head += continuous.name
    lines = [head, continuous.query_text.strip()]
    if continuous.frequency is not None:
        lines.append(f"when {continuous.frequency}")
    elif continuous.trigger is not None:
        lines.append(
            f"when {continuous.trigger.subscription}"
            f".{continuous.trigger.query}"
        )
    return lines


def _report_lines(report: ReportSpec) -> List[str]:
    lines = ["report"]
    if report.query_text is not None:
        lines.append(report.query_text.strip())
    terms = []
    for term in report.when.terms:
        if isinstance(term, ImmediateCondition):
            terms.append("immediate")
        elif isinstance(term, PeriodicCondition):
            terms.append(term.frequency)
        elif isinstance(term, CountCondition):
            if term.query_name is None:
                terms.append(f"count >= {term.threshold}")
            else:
                terms.append(
                    f"count({term.query_name}) >= {term.threshold}"
                )
        else:
            raise SubscriptionError(
                f"cannot unparse report term {term!r}"
            )
    lines.append("when " + " or ".join(terms))
    if report.atmost_count is not None:
        lines.append(f"atmost {report.atmost_count}")
    if report.atmost_frequency is not None:
        lines.append(f"atmost {report.atmost_frequency}")
    if report.archive_frequency is not None:
        lines.append(f"archive {report.archive_frequency}")
    return lines
