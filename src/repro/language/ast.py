"""AST of the subscription language (Section 5 of the paper).

A subscription has four parts (Figure 2)::

    subscription name
    monitoring ...      % zero or more monitoring queries
    continuous ...      % zero or more continuous queries
    report when ...     % at most one report specification
    refresh ...         % zero or more refresh statements
    virtual ...         % extension: register to another user's queries

Atomic conditions carry a ``kind`` constant plus parameters; weak/strong
classification (Section 5.1) lives on the condition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

# -- atomic condition kinds ---------------------------------------------------

URL_EXTENDS = "url_extends"
URL_EQ = "url_eq"
FILENAME_EQ = "filename_eq"
DTD_EQ = "dtd_eq"
DTDID_EQ = "dtdid_eq"
DOCID_EQ = "docid_eq"
DOMAIN_EQ = "domain_eq"
LAST_ACCESSED = "last_accessed"
LAST_UPDATE = "last_update"
SELF_CONTAINS = "self_contains"
DOC_STATUS = "doc_status"         # new / updated / unchanged / deleted self
ELEMENT = "element"               # (changekind) tag ((strict) contains word)

#: Change kinds of document-status and element conditions.
KIND_NEW = "new"
KIND_UPDATED = "updated"
KIND_UNCHANGED = "unchanged"
KIND_DELETED = "deleted"
CHANGE_KINDS = (KIND_NEW, KIND_UPDATED, KIND_UNCHANGED, KIND_DELETED)

#: Weak document statuses (Section 5.1): raised by almost every fetch.
WEAK_STATUSES = frozenset({KIND_NEW, KIND_UPDATED, KIND_UNCHANGED})


@dataclass(frozen=True)
class AtomicCondition:
    """One atomic condition of a ``where`` clause.

    Field usage by ``kind``:

    ================  =============================================
    kind              fields used
    ================  =============================================
    URL_EXTENDS       ``string`` (the URL prefix)
    URL_EQ et al.     ``string`` (or ``number`` for DTDID/DOCID)
    LAST_*            ``comparator`` + ``number`` (timestamp)
    SELF_CONTAINS     ``string`` (the word)
    DOC_STATUS        ``change_kind``
    ELEMENT           ``target`` (tag or variable), ``change_kind``
                      (may be None), ``string`` (word, may be None),
                      ``strict``
    ================  =============================================
    """

    kind: str
    string: Optional[str] = None
    number: Optional[float] = None
    comparator: Optional[str] = None
    change_kind: Optional[str] = None
    target: Optional[str] = None
    strict: bool = False

    @property
    def weak(self) -> bool:
        """Weak conditions alone cannot form a where clause (Section 5.1)."""
        return self.kind == DOC_STATUS and self.change_kind in WEAK_STATUSES


@dataclass(frozen=True)
class FromBinding:
    """``from self//Member X`` — binds ``X`` to matches of the path."""

    path: str
    variable: str


@dataclass(frozen=True)
class SelectSpec:
    """``select`` clause of a monitoring query.

    Either an XML ``template`` (``select <UpdatedPage url=URL/>``, where
    attribute values naming a variable — or ``URL`` — are substituted), or a
    list of ``items`` (variables / variable-rooted paths).  An empty spec
    reproduces the paper's implemented behaviour: "notifications simply
    return the URL of the document ... and basic informations".
    """

    template: Optional[str] = None
    items: Tuple[str, ...] = ()

    @property
    def is_default(self) -> bool:
        return self.template is None and not self.items


@dataclass(frozen=True)
class MonitoringQuery:
    """One monitoring query.

    ``conditions`` is the primary conjunction; ``extra_disjuncts`` holds
    further conjunctions when the where clause uses ``or`` — the extension
    the paper's conclusion anticipates ("complex events that would include
    disjunctions of atomic conditions").  Each disjunct compiles to its own
    complex event; all of them notify through the same query.
    """

    name: Optional[str]
    select: SelectSpec
    from_bindings: Tuple[FromBinding, ...]
    conditions: Tuple[AtomicCondition, ...]
    extra_disjuncts: Tuple[Tuple[AtomicCondition, ...], ...] = ()

    def all_disjuncts(self) -> Tuple[Tuple[AtomicCondition, ...], ...]:
        return (self.conditions,) + self.extra_disjuncts


@dataclass(frozen=True)
class NotificationTrigger:
    """``when Sub.Query`` — run a continuous query on a notification."""

    subscription: str
    query: str


@dataclass(frozen=True)
class ContinuousQuery:
    name: str
    query_text: str
    delta: bool = False
    #: Either a frequency word or a NotificationTrigger (exactly one set).
    frequency: Optional[str] = None
    trigger: Optional[NotificationTrigger] = None


# -- report conditions (Section 5.3) ---------------------------------------------

@dataclass(frozen=True)
class CountCondition:
    """``count >= n`` or ``count(MonitoringQueryName) >= n``."""

    threshold: int
    query_name: Optional[str] = None
    comparator: str = ">="


@dataclass(frozen=True)
class PeriodicCondition:
    frequency: str


@dataclass(frozen=True)
class ImmediateCondition:
    pass


ReportConditionTerm = object  # union of the three classes above


@dataclass(frozen=True)
class ReportCondition:
    """Disjunction of terms: "a report is generated whenever one of the
    reporting conditions holds"."""

    terms: Tuple[object, ...]


@dataclass(frozen=True)
class ReportSpec:
    when: ReportCondition
    query_text: Optional[str] = None
    atmost_count: Optional[int] = None
    atmost_frequency: Optional[str] = None
    archive_frequency: Optional[str] = None


@dataclass(frozen=True)
class RefreshStatement:
    url: str
    frequency: str


@dataclass(frozen=True)
class VirtualReference:
    """``virtual MyXyleme.Member`` — subscribe to another subscription's
    query without creating new monitoring work (Section 5.4)."""

    subscription: str
    query: Optional[str] = None


@dataclass(frozen=True)
class Subscription:
    name: str
    monitoring: Tuple[MonitoringQuery, ...] = ()
    continuous: Tuple[ContinuousQuery, ...] = ()
    report: Optional[ReportSpec] = None
    refreshes: Tuple[RefreshStatement, ...] = ()
    virtuals: Tuple[VirtualReference, ...] = ()

    def monitoring_by_name(self, name: str) -> Optional[MonitoringQuery]:
        for query in self.monitoring:
            if query.name == name:
                return query
        return None
