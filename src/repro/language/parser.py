"""Recursive-descent parser for the subscription language.

Produces :class:`~repro.language.ast.Subscription` values.  Embedded
warehouse queries (continuous queries, report queries) are captured as raw
text and handed to ``repro.query`` at compile time — the subscription parser
only locates their boundaries.
"""

from __future__ import annotations

import calendar
from typing import List, Optional

from ..errors import SubscriptionSyntaxError
from .ast import (
    AtomicCondition,
    CHANGE_KINDS,
    ContinuousQuery,
    CountCondition,
    DOC_STATUS,
    DOCID_EQ,
    DOMAIN_EQ,
    DTD_EQ,
    DTDID_EQ,
    ELEMENT,
    FILENAME_EQ,
    FromBinding,
    ImmediateCondition,
    KIND_UPDATED,
    LAST_ACCESSED,
    LAST_UPDATE,
    MonitoringQuery,
    NotificationTrigger,
    PeriodicCondition,
    RefreshStatement,
    ReportCondition,
    ReportSpec,
    SELF_CONTAINS,
    SelectSpec,
    Subscription,
    URL_EQ,
    URL_EXTENDS,
    VirtualReference,
)
from .frequencies import FREQUENCY_WORDS
from .lexer import CMP, NUMBER, PUNCT, STRING, TEMPLATE, WORD, Token, tokenize

_SECTION_KEYWORDS = frozenset(
    {"subscription", "monitoring", "continuous", "report", "refresh",
     "virtual"}
)
#: ``modified`` is the paper's synonym for ``updated`` ("and modified self").
_CHANGE_WORDS = dict(
    {kind: kind for kind in CHANGE_KINDS}, modified=KIND_UPDATED
)


class _Tokens:
    def __init__(self, tokens: List[Token], source: str):
        self._tokens = tokens
        self._index = 0
        self.source = source

    def peek(self, ahead: int = 0) -> Optional[Token]:
        index = self._index + ahead
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise SubscriptionSyntaxError("unexpected end of subscription")
        self._index += 1
        return token

    def at_section(self) -> bool:
        token = self.peek()
        return (
            token is None
            or (token.kind == WORD and token.value in _SECTION_KEYWORDS)
        )

    def accept_word(self, *words: str) -> Optional[Token]:
        token = self.peek()
        if token and token.kind == WORD and token.value in words:
            self._index += 1
            return token
        return None

    def expect_word(self, word: str) -> Token:
        token = self.accept_word(word)
        if token is None:
            found = self.peek()
            raise SubscriptionSyntaxError(
                f"expected {word!r}, found"
                f" {found.value if found else 'end of input'!r}",
                found.line if found else 0,
                found.column if found else 0,
            )
        return token

    def accept_punct(self, value: str) -> bool:
        token = self.peek()
        if token and token.kind == PUNCT and token.value == value:
            self._index += 1
            return True
        return False

    def expect_kind(self, kind: str, what: str) -> Token:
        token = self.next()
        if token.kind != kind:
            raise SubscriptionSyntaxError(
                f"expected {what}, found {token.value!r}",
                token.line,
                token.column,
            )
        return token


def parse_subscription(source: str) -> Subscription:
    """Parse one subscription definition."""
    stream = _Tokens(tokenize(source), source)
    stream.expect_word("subscription")
    name = stream.expect_kind(WORD, "a subscription name").value

    monitoring: List[MonitoringQuery] = []
    continuous: List[ContinuousQuery] = []
    report: Optional[ReportSpec] = None
    refreshes: List[RefreshStatement] = []
    virtuals: List[VirtualReference] = []

    while True:
        token = stream.peek()
        if token is None:
            break
        if token.kind != WORD:
            raise SubscriptionSyntaxError(
                f"expected a section keyword, found {token.value!r}",
                token.line,
                token.column,
            )
        if token.value == "monitoring":
            stream.next()
            monitoring.append(_parse_monitoring(stream))
        elif token.value == "continuous":
            stream.next()
            continuous.append(_parse_continuous(stream))
        elif token.value == "report":
            stream.next()
            if report is not None:
                raise SubscriptionSyntaxError(
                    "a subscription has at most one report section",
                    token.line,
                    token.column,
                )
            report = _parse_report(stream)
        elif token.value == "refresh":
            stream.next()
            refreshes.append(_parse_refresh(stream))
        elif token.value == "virtual":
            stream.next()
            virtuals.append(_parse_virtual(stream))
        else:
            raise SubscriptionSyntaxError(
                f"unexpected section {token.value!r}", token.line, token.column
            )

    return Subscription(
        name=name,
        monitoring=tuple(monitoring),
        continuous=tuple(continuous),
        report=report,
        refreshes=tuple(refreshes),
        virtuals=tuple(virtuals),
    )


# -- monitoring queries ---------------------------------------------------------


def _parse_monitoring(stream: _Tokens) -> MonitoringQuery:
    # Optional query name before the select keyword.
    name: Optional[str] = None
    token = stream.peek()
    if token and token.kind == WORD and token.value not in ("select",):
        name = stream.next().value
    stream.expect_word("select")
    select = _parse_select_spec(stream)
    from_bindings: List[FromBinding] = []
    if stream.accept_word("from"):
        from_bindings.append(_parse_from_binding(stream))
        while stream.accept_punct(","):
            from_bindings.append(_parse_from_binding(stream))
    stream.expect_word("where")
    disjuncts = [_parse_conjunction(stream, from_bindings)]
    while stream.accept_word("or"):
        disjuncts.append(_parse_conjunction(stream, from_bindings))
    return MonitoringQuery(
        name=name,
        select=select,
        from_bindings=tuple(from_bindings),
        conditions=disjuncts[0],
        extra_disjuncts=tuple(disjuncts[1:]),
    )


def _parse_conjunction(
    stream: _Tokens, from_bindings: List[FromBinding]
) -> tuple:
    conditions = [_parse_condition(stream, from_bindings)]
    while stream.accept_word("and"):
        conditions.append(_parse_condition(stream, from_bindings))
    return tuple(conditions)


def _parse_select_spec(stream: _Tokens) -> SelectSpec:
    token = stream.peek()
    if token is None:
        raise SubscriptionSyntaxError("select clause is empty")
    if token.kind == TEMPLATE:
        stream.next()
        return SelectSpec(template=token.value)
    items = [stream.expect_kind(WORD, "a select item").value]
    while stream.accept_punct(","):
        items.append(stream.expect_kind(WORD, "a select item").value)
    return SelectSpec(items=tuple(items))


def _parse_from_binding(stream: _Tokens) -> FromBinding:
    path = stream.expect_kind(WORD, "a path").value
    variable = stream.expect_kind(WORD, "a variable name").value
    return FromBinding(path=path, variable=variable)


def _parse_condition(
    stream: _Tokens, from_bindings: List[FromBinding]
) -> AtomicCondition:
    token = stream.next()
    if token.kind != WORD:
        raise SubscriptionSyntaxError(
            f"expected a condition, found {token.value!r}",
            token.line,
            token.column,
        )
    word = token.value

    if word == "URL":
        if stream.accept_word("extends"):
            value = stream.expect_kind(STRING, "a URL prefix").value
            return AtomicCondition(kind=URL_EXTENDS, string=value)
        _expect_cmp(stream, "=")
        value = stream.expect_kind(STRING, "a URL").value
        return AtomicCondition(kind=URL_EQ, string=value)
    if word == "filename":
        _expect_cmp(stream, "=")
        value = stream.expect_kind(STRING, "a filename").value
        return AtomicCondition(kind=FILENAME_EQ, string=value)
    if word == "DTD":
        _expect_cmp(stream, "=")
        value = stream.expect_kind(STRING, "a DTD URL").value
        return AtomicCondition(kind=DTD_EQ, string=value)
    if word == "DTDID":
        _expect_cmp(stream, "=")
        value = stream.expect_kind(NUMBER, "a DTD id").value
        return AtomicCondition(kind=DTDID_EQ, number=float(value))
    if word == "DOCID":
        _expect_cmp(stream, "=")
        value = stream.expect_kind(NUMBER, "a document id").value
        return AtomicCondition(kind=DOCID_EQ, number=float(value))
    if word == "domain":
        _expect_cmp(stream, "=")
        value = stream.expect_kind(STRING, "a domain name").value
        return AtomicCondition(kind=DOMAIN_EQ, string=value)
    if word in ("LastAccessed", "LastUpdate"):
        cmp_token = stream.next()
        if cmp_token.kind != CMP:
            raise SubscriptionSyntaxError(
                f"expected a comparator after {word}, found"
                f" {cmp_token.value!r}",
                cmp_token.line,
                cmp_token.column,
            )
        date_token = stream.next()
        timestamp = _parse_date(date_token)
        kind = LAST_ACCESSED if word == "LastAccessed" else LAST_UPDATE
        return AtomicCondition(
            kind=kind, comparator=cmp_token.value, number=timestamp
        )
    if word == "self":
        stream.expect_word("contains")
        value = stream.expect_kind(STRING, "a word").value
        return AtomicCondition(kind=SELF_CONTAINS, string=value)
    if word in _CHANGE_WORDS:
        change_kind = _CHANGE_WORDS[word]
        if stream.accept_word("self"):
            return AtomicCondition(kind=DOC_STATUS, change_kind=change_kind)
        target = stream.expect_kind(WORD, "an element tag or variable").value
        return _parse_element_tail(stream, target, change_kind)
    # Bare element condition: a tag (or bound variable), maybe "contains".
    return _parse_element_tail(stream, word, None)


def _parse_element_tail(
    stream: _Tokens, target: str, change_kind: Optional[str]
) -> AtomicCondition:
    strict = False
    word_value: Optional[str] = None
    if stream.accept_word("strict"):
        stream.expect_word("contains")
        strict = True
        word_value = stream.expect_kind(STRING, "a word").value
    elif stream.accept_word("contains"):
        word_value = stream.expect_kind(STRING, "a word").value
    return AtomicCondition(
        kind=ELEMENT,
        target=target,
        change_kind=change_kind,
        string=word_value,
        strict=strict,
    )


def _expect_cmp(stream: _Tokens, expected: str) -> None:
    token = stream.next()
    if token.kind != CMP or token.value != expected:
        raise SubscriptionSyntaxError(
            f"expected {expected!r}, found {token.value!r}",
            token.line,
            token.column,
        )


def _parse_date(token: Token) -> float:
    """Accept epoch seconds or an ISO date (``2001-05-21``), as UTC."""
    if token.kind == NUMBER:
        return float(token.value)
    if token.kind == STRING:
        parts = token.value.split("-")
        if len(parts) == 3 and all(part.isdigit() for part in parts):
            year, month, day = (int(part) for part in parts)
            return float(calendar.timegm((year, month, day, 0, 0, 0)))
    raise SubscriptionSyntaxError(
        f"expected a date, found {token.value!r}", token.line, token.column
    )


# -- continuous queries -----------------------------------------------------------


def _parse_continuous(stream: _Tokens) -> ContinuousQuery:
    delta = stream.accept_word("delta") is not None
    name = stream.expect_kind(WORD, "a continuous query name").value
    query_start_token = stream.expect_word("select")
    # Capture raw query text up to the "when"/"try" keyword.
    end_offset = query_start_token.start
    while True:
        token = stream.peek()
        if token is None:
            raise SubscriptionSyntaxError(
                "continuous query is missing its when/try clause"
            )
        if token.kind == WORD and token.value in ("when", "try"):
            break
        end_offset = token.end
        stream.next()
    query_text = stream.source[query_start_token.start : end_offset]
    stream.next()  # consume when/try
    frequency_token = stream.accept_word(*FREQUENCY_WORDS)
    if frequency_token is not None:
        return ContinuousQuery(
            name=name,
            query_text=query_text,
            delta=delta,
            frequency=frequency_token.value,
        )
    subscription = stream.expect_kind(WORD, "a notification reference").value
    if not stream.accept_punct("."):
        raise SubscriptionSyntaxError(
            "a notification trigger is written Subscription.QueryName"
        )
    query_name = stream.expect_kind(WORD, "a monitoring query name").value
    return ContinuousQuery(
        name=name,
        query_text=query_text,
        delta=delta,
        trigger=NotificationTrigger(subscription=subscription, query=query_name),
    )


# -- reports -------------------------------------------------------------------------


def _parse_report(stream: _Tokens) -> ReportSpec:
    query_text: Optional[str] = None
    token = stream.peek()
    if token is not None and token.kind == WORD and token.value == "select":
        start = token.start
        end = token.end
        while True:
            ahead = stream.peek()
            if ahead is None:
                raise SubscriptionSyntaxError(
                    "report section is missing its when clause"
                )
            if ahead.kind == WORD and ahead.value == "when":
                break
            end = ahead.end
            stream.next()
        query_text = stream.source[start:end]
    stream.expect_word("when")
    when = _parse_report_condition(stream)
    atmost_count: Optional[int] = None
    atmost_frequency: Optional[str] = None
    archive_frequency: Optional[str] = None
    while True:
        if stream.accept_word("atmost"):
            token = stream.next()
            if token.kind == NUMBER:
                atmost_count = int(float(token.value))
            elif token.kind == WORD and token.value in FREQUENCY_WORDS:
                atmost_frequency = token.value
            else:
                raise SubscriptionSyntaxError(
                    f"atmost expects a count or frequency, found"
                    f" {token.value!r}",
                    token.line,
                    token.column,
                )
            continue
        if stream.accept_word("archive"):
            token = stream.next()
            if token.kind != WORD or token.value not in FREQUENCY_WORDS:
                raise SubscriptionSyntaxError(
                    f"archive expects a frequency, found {token.value!r}",
                    token.line,
                    token.column,
                )
            archive_frequency = token.value
            continue
        break
    return ReportSpec(
        when=when,
        query_text=query_text,
        atmost_count=atmost_count,
        atmost_frequency=atmost_frequency,
        archive_frequency=archive_frequency,
    )


def _parse_report_condition(stream: _Tokens) -> ReportCondition:
    terms = [_parse_report_term(stream)]
    while stream.accept_word("or"):
        terms.append(_parse_report_term(stream))
    return ReportCondition(terms=tuple(terms))


def _parse_report_term(stream: _Tokens):
    token = stream.next()
    if token.kind == WORD and token.value == "immediate":
        return ImmediateCondition()
    if token.kind == WORD and token.value in FREQUENCY_WORDS:
        return PeriodicCondition(frequency=token.value)
    if token.kind == WORD and token.value == "notifications":
        # The paper's "notifications.count > 100" form.
        if not stream.accept_punct("."):
            raise SubscriptionSyntaxError(
                "expected '.count' after 'notifications'",
                token.line,
                token.column,
            )
        stream.expect_word("count")
        return _parse_count_tail(stream, query_name=None)
    if token.kind == WORD and token.value == "count":
        query_name: Optional[str] = None
        if stream.accept_punct("("):
            query_name = stream.expect_kind(
                WORD, "a monitoring query name"
            ).value
            if not stream.accept_punct(")"):
                raise SubscriptionSyntaxError("expected ')' after count(...)")
        return _parse_count_tail(stream, query_name=query_name)
    if token.kind == WORD:
        # "UpdatedPage >= 10" — count of a named monitoring query.
        return _parse_count_tail(stream, query_name=token.value)
    raise SubscriptionSyntaxError(
        f"expected a report condition, found {token.value!r}",
        token.line,
        token.column,
    )


def _parse_count_tail(stream: _Tokens, query_name: Optional[str]):
    cmp_token = stream.next()
    if cmp_token.kind != CMP or cmp_token.value not in (">", ">=", "="):
        raise SubscriptionSyntaxError(
            f"count conditions use >, >= or =, found {cmp_token.value!r}",
            cmp_token.line,
            cmp_token.column,
        )
    number = stream.expect_kind(NUMBER, "a count")
    threshold = int(float(number.value))
    if cmp_token.value == ">":
        # "count > 100" fires at 101 gathered notifications.
        threshold += 1
        comparator = ">="
    else:
        comparator = ">="
    return CountCondition(
        threshold=threshold, query_name=query_name, comparator=comparator
    )


# -- refresh & virtual ------------------------------------------------------------------


def _parse_refresh(stream: _Tokens) -> RefreshStatement:
    url = stream.expect_kind(STRING, "a URL").value
    token = stream.next()
    if token.kind != WORD or token.value not in FREQUENCY_WORDS:
        raise SubscriptionSyntaxError(
            f"refresh expects a frequency, found {token.value!r}",
            token.line,
            token.column,
        )
    return RefreshStatement(url=url, frequency=token.value)


def _parse_virtual(stream: _Tokens) -> VirtualReference:
    subscription = stream.expect_kind(WORD, "a subscription name").value
    query: Optional[str] = None
    if stream.accept_punct("."):
        query = stream.expect_kind(WORD, "a query name").value
    return VirtualReference(subscription=subscription, query=query)
