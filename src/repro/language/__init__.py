"""The subscription language (Section 5 of the paper).

:func:`parse_subscription` turns subscription text into a
:class:`Subscription` AST; :func:`validate_subscription` applies the static
checks (weak/strong rule, variable hygiene); ``conditions`` maps atomic
conditions to the atomic-event keys the alerters and MQP work with.
"""

from .ast import (
    AtomicCondition,
    ContinuousQuery,
    CountCondition,
    FromBinding,
    ImmediateCondition,
    MonitoringQuery,
    NotificationTrigger,
    PeriodicCondition,
    RefreshStatement,
    ReportCondition,
    ReportSpec,
    SelectSpec,
    Subscription,
    VirtualReference,
)
from .conditions import (
    URL_ALERTER_KINDS,
    XML_ALERTER_KINDS,
    condition_event_key,
    last_tag_of_path,
    resolve_target_tag,
)
from .frequencies import FREQUENCY_WORDS, period_seconds
from .parser import parse_subscription
from .unparse import unparse, unparse_condition
from .validate import validate_subscription

__all__ = [
    "AtomicCondition",
    "ContinuousQuery",
    "CountCondition",
    "FromBinding",
    "ImmediateCondition",
    "MonitoringQuery",
    "NotificationTrigger",
    "PeriodicCondition",
    "RefreshStatement",
    "ReportCondition",
    "ReportSpec",
    "SelectSpec",
    "Subscription",
    "VirtualReference",
    "URL_ALERTER_KINDS",
    "XML_ALERTER_KINDS",
    "condition_event_key",
    "last_tag_of_path",
    "resolve_target_tag",
    "FREQUENCY_WORDS",
    "period_seconds",
    "parse_subscription",
    "unparse",
    "unparse_condition",
    "validate_subscription",
]
