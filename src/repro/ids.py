"""Small identifier allocators shared across subsystems.

The Subscription Manager "chooses the internal codes of atomic events"
(Section 3 of the paper); atomic-event codes must form a totally ordered
domain because the Monitoring Query Processor relies on processing events
"as ordered subsets of A" (Section 4.1).  Dense integer codes give that
ordering for free and make the hash-tree tables compact.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Optional


class SequentialIdAllocator:
    """Allocates dense increasing integer ids, with optional free-list reuse.

    Reuse matters for long-running systems where subscriptions (and therefore
    events) keep being added and removed (Section 4.1, dynamic updates).
    """

    def __init__(self, start: int = 0, reuse_freed: bool = True):
        self._next = start
        self._reuse_freed = reuse_freed
        self._free: list[int] = []

    def allocate(self) -> int:
        if self._reuse_freed and self._free:
            return self._free.pop()
        value = self._next
        self._next += 1
        return value

    def release(self, value: int) -> None:
        """Return an id to the pool (only meaningful with ``reuse_freed``)."""
        if self._reuse_freed:
            self._free.append(value)

    @property
    def high_water_mark(self) -> int:
        """One past the largest id ever allocated."""
        return self._next


class InternedCodes:
    """Bidirectional mapping between hashable keys and dense integer codes.

    Used for atomic-event codes: the key is the canonical description of the
    condition (for example ``("url_extends", "http://inria.fr/Xy/")``), the
    code is the small integer the Monitoring Query Processor works with.
    Interning guarantees that two subscriptions with the same atomic
    condition share one atomic event, which is what makes the parameter *k*
    (complex events per atomic event) of the paper meaningful.
    """

    def __init__(self):
        self._code_of: Dict[Hashable, int] = {}
        self._key_of: Dict[int, Hashable] = {}
        self._allocator = SequentialIdAllocator()

    def __len__(self) -> int:
        return len(self._code_of)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._code_of

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._code_of)

    def intern(self, key: Hashable) -> int:
        """Return the code for ``key``, allocating one on first sight."""
        code = self._code_of.get(key)
        if code is None:
            code = self._allocator.allocate()
            self._code_of[key] = code
            self._key_of[code] = key
        return code

    def code_for(self, key: Hashable) -> Optional[int]:
        """Return the code for ``key`` or ``None`` if never interned."""
        return self._code_of.get(key)

    def key_for(self, code: int) -> Hashable:
        """Return the key interned under ``code`` (KeyError if unknown)."""
        return self._key_of[code]

    def release(self, key: Hashable) -> None:
        """Forget a key, returning its code to the free pool."""
        code = self._code_of.pop(key, None)
        if code is not None:
            del self._key_of[code]
            self._allocator.release(code)
