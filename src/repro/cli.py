"""Command-line interface.

Subcommands::

    repro-monitor check FILE       parse + validate a subscription file
    repro-monitor fmt FILE         print the canonical form of a subscription
    repro-monitor demo             run a small end-to-end simulation
    repro-monitor match            micro-benchmark the matching engines

Also runnable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .clock import SimulatedClock
from .errors import ReproError
from .language import parse_subscription, unparse, validate_subscription


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-monitor",
        description="Monitoring XML Data on the Web (SIGMOD 2001) tooling",
    )
    commands = parser.add_subparsers(dest="command")
    parser.set_defaults(command=None)

    check = commands.add_parser(
        "check", help="parse and validate a subscription file"
    )
    check.add_argument("file", help="path to a subscription source file")
    check.set_defaults(handler=_cmd_check)

    fmt = commands.add_parser(
        "fmt", help="print the canonical form of a subscription file"
    )
    fmt.add_argument("file")
    fmt.set_defaults(handler=_cmd_fmt)

    demo = commands.add_parser(
        "demo", help="run a small end-to-end monitoring simulation"
    )
    demo.add_argument("--sites", type=int, default=10)
    demo.add_argument("--days", type=int, default=7)
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(handler=_cmd_demo)

    match = commands.add_parser(
        "match", help="micro-benchmark a matching engine"
    )
    match.add_argument(
        "--engine",
        choices=["aes", "counting", "naive"],
        default="aes",
    )
    match.add_argument("--card-a", type=int, default=100_000)
    match.add_argument("--card-c", type=int, default=100_000)
    match.add_argument("--s", type=int, default=20)
    match.add_argument("--c-min", type=int, default=2)
    match.add_argument("--c-max", type=int, default=4)
    match.add_argument("--docs", type=int, default=500)
    match.add_argument("--seed", type=int, default=0)
    match.set_defaults(handler=_cmd_match)

    return parser


# -- commands -------------------------------------------------------------------


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_check(args: argparse.Namespace) -> int:
    subscription = parse_subscription(_read(args.file))
    validate_subscription(subscription)
    complex_events = sum(
        len(query.all_disjuncts()) for query in subscription.monitoring
    )
    print(f"subscription {subscription.name}: OK")
    print(f"  monitoring queries : {len(subscription.monitoring)}")
    print(f"  complex events     : {complex_events}")
    print(f"  continuous queries : {len(subscription.continuous)}")
    print(f"  refresh statements : {len(subscription.refreshes)}")
    print(f"  virtual references : {len(subscription.virtuals)}")
    print(f"  report section     : {'yes' if subscription.report else 'no'}")
    return 0


def _cmd_fmt(args: argparse.Namespace) -> int:
    subscription = parse_subscription(_read(args.file))
    sys.stdout.write(unparse(subscription))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .pipeline import SubscriptionSystem
    from .webworld import ChangeModel, SimulatedCrawler, SiteGenerator

    clock = SimulatedClock(990_000_000.0)
    system = SubscriptionSystem(clock=clock)
    generator = SiteGenerator(seed=args.seed)
    crawler = SimulatedCrawler(
        clock=clock, change_model=ChangeModel(seed=args.seed + 1),
        seed=args.seed + 2,
    )
    for i in range(args.sites):
        crawler.add_xml_page(
            f"http://www.shop{i}.example/catalog/products.xml",
            generator.catalog(products=8),
            change_probability=0.7,
        )
    system.subscribe(
        """
        subscription Demo
        monitoring NewCam
        select X
        from self//Product X
        where URL extends "http://www.shop"
          and new Product contains "camera"
        report when count >= 3
        """,
        owner_email="demo@example.org",
    )
    for _ in range(args.days):
        for fetch in crawler.due_fetches():
            system.feed(fetch)
        system.advance_days(1)
    stats = system.processor.stats
    print(f"{args.sites} sites crawled over {args.days} simulated days")
    print(f"  documents fed  : {system.documents_fed}")
    print(f"  alerts         : {stats.alerts_processed}")
    print(f"  notifications  : {stats.notifications_sent}")
    print(f"  reports        : {system.reporter.stats.reports_generated}")
    print(f"  emails         : {system.email_sink.total_sent}")
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    from .core import AESMatcher, CountingMatcher, NaiveMatcher
    from .webworld import SyntheticWorkload, WorkloadParams

    factory = {
        "aes": AESMatcher,
        "counting": CountingMatcher,
        "naive": NaiveMatcher,
    }[args.engine]
    workload = SyntheticWorkload(
        WorkloadParams(
            card_a=args.card_a,
            card_c=args.card_c,
            c_min=args.c_min,
            c_max=args.c_max,
            s=args.s,
            seed=args.seed,
        )
    )
    print(
        f"building {args.engine} matcher: Card(A)={args.card_a:,},"
        f" Card(C)={args.card_c:,}, c in [{args.c_min},{args.c_max}],"
        f" s={args.s}"
    )
    build_start = time.perf_counter()
    matcher = workload.build(factory)
    build_elapsed = time.perf_counter() - build_start
    documents = workload.document_event_sets(args.docs)
    match_start = time.perf_counter()
    matches = sum(len(matcher.match(d)) for d in documents)
    match_elapsed = time.perf_counter() - match_start
    per_doc = match_elapsed / args.docs * 1e6
    print(f"  build     : {build_elapsed:8.2f} s")
    print(f"  match     : {per_doc:8.1f} us/doc"
          f" ({args.docs / match_elapsed:,.0f} docs/s)")
    print(f"  matches   : {matches}")
    print(f"  structure : {matcher.structure_stats()}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
