"""Command-line interface.

Subcommands::

    repro-monitor check FILE       parse + validate a subscription file
    repro-monitor fmt FILE         print the canonical form of a subscription
    repro-monitor demo             run a small end-to-end simulation
    repro-monitor stats            run a simulation, emit the metrics snapshot
    repro-monitor match            micro-benchmark the matching engines
    repro-monitor chaos            run a fault-injected simulation (CI smoke)
    repro-monitor resume           resume a crashed run from its journal
    repro-monitor dlq              inspect / requeue / purge a dead-letter file

``demo`` and ``stats`` accept ``--metrics-json PATH`` to dump the
observability snapshot (``system.metrics_snapshot()``) as JSON, and
``--fault-rate`` / ``--fault-seed`` / ``--dlq-json`` to crawl under a
seeded transient-fault injector (see docs/ROBUSTNESS.md).  ``chaos``
is the hardened variant: it fails (exit 1) if any document ends up
quarantined or any exception escapes the pipeline.

Crash recovery: ``demo`` / ``stats`` / ``chaos`` accept ``--journal
PATH`` (journal every delivered notification and checkpoint the runtime
every ``--checkpoint-every`` batches), ``chaos`` additionally accepts
``--kill POINT[:N]`` to crash deterministically at a named kill point
(exit 42), and ``resume --journal PATH`` restarts a crashed run from its
last checkpoint with exactly-once delivery — see docs/ROBUSTNESS.md,
"Crash recovery & exactly-once delivery".

Also runnable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from .clock import SimulatedClock
from .errors import ReproError
from .language import parse_subscription, unparse, validate_subscription


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-monitor",
        description="Monitoring XML Data on the Web (SIGMOD 2001) tooling",
    )
    commands = parser.add_subparsers(dest="command")
    parser.set_defaults(command=None)

    check = commands.add_parser(
        "check", help="parse and validate a subscription file"
    )
    check.add_argument("file", help="path to a subscription source file")
    check.set_defaults(handler=_cmd_check)

    fmt = commands.add_parser(
        "fmt", help="print the canonical form of a subscription file"
    )
    fmt.add_argument("file")
    fmt.set_defaults(handler=_cmd_fmt)

    demo = commands.add_parser(
        "demo", help="run a small end-to-end monitoring simulation"
    )
    demo.add_argument("--sites", type=int, default=10)
    demo.add_argument("--days", type=int, default=7)
    demo.add_argument("--seed", type=int, default=7)
    _add_executor_arguments(demo)
    _add_fault_arguments(demo)
    demo.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="also dump system.metrics_snapshot() as JSON to PATH",
    )
    _add_recovery_arguments(demo)
    demo.set_defaults(handler=_cmd_demo)

    stats = commands.add_parser(
        "stats",
        help="run a simulation and emit the observability metrics snapshot",
    )
    stats.add_argument("--sites", type=int, default=10)
    stats.add_argument("--days", type=int, default=7)
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument(
        "--shards", type=int, default=1, help="MQP shard count (>1 shards)"
    )
    stats.add_argument(
        "--shard-mode",
        choices=["flow", "subscriptions"],
        default="flow",
    )
    _add_executor_arguments(stats)
    _add_fault_arguments(stats)
    stats.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="write the snapshot to PATH instead of stdout",
    )
    _add_recovery_arguments(stats)
    stats.set_defaults(handler=_cmd_stats)

    chaos = commands.add_parser(
        "chaos",
        help="fault-injected simulation that fails on any lost document",
    )
    chaos.add_argument("--sites", type=int, default=20)
    chaos.add_argument("--days", type=int, default=14)
    chaos.add_argument("--seed", type=int, default=7)
    _add_executor_arguments(chaos)
    chaos.add_argument(
        "--fault-rate",
        type=float,
        default=0.2,
        help="total transient-fault probability per fetch (default: 0.2)",
    )
    chaos.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault injector's own RNG",
    )
    chaos.add_argument(
        "--dlq-json",
        metavar="PATH",
        default=None,
        help="dump any quarantined documents to PATH for post-mortem",
    )
    _add_recovery_arguments(chaos)
    chaos.add_argument(
        "--kill",
        metavar="POINT[:N]",
        default=None,
        help="crash deterministically at the Nth hit (default: 1st) of a"
        " named kill point — post-fetch, post-match, pre-deliver,"
        " post-deliver or mid-checkpoint; exits 42 (requires --journal)",
    )
    chaos.set_defaults(handler=_cmd_chaos)

    resume = commands.add_parser(
        "resume",
        help="resume a crashed --journal run from its last checkpoint",
    )
    resume.add_argument(
        "--journal",
        metavar="PATH",
        required=True,
        help="journal path the crashed run was started with",
    )
    resume.set_defaults(handler=_cmd_resume)

    dlq = commands.add_parser(
        "dlq", help="inspect or replay a dead-letter queue JSON file"
    )
    dlq.add_argument(
        "action",
        choices=["list", "requeue", "purge"],
        help="list entries, replay them through a fresh pipeline,"
        " or discard them",
    )
    dlq.add_argument("file", help="dead-letter JSON written with --dlq-json")
    dlq.set_defaults(handler=_cmd_dlq)

    match = commands.add_parser(
        "match", help="micro-benchmark a matching engine"
    )
    match.add_argument(
        "--engine",
        choices=["aes", "counting", "naive"],
        default="aes",
    )
    match.add_argument("--card-a", type=int, default=100_000)
    match.add_argument("--card-c", type=int, default=100_000)
    match.add_argument("--s", type=int, default=20)
    match.add_argument("--c-min", type=int, default=2)
    match.add_argument("--c-max", type=int, default=4)
    match.add_argument("--docs", type=int, default=500)
    match.add_argument("--seed", type=int, default=0)
    match.set_defaults(handler=_cmd_match)

    return parser


def _add_executor_arguments(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--executor",
        metavar="SPEC",
        default=None,
        help="executor spec, name[:key=value,...] — e.g. serial,"
        " threaded:workers=4, process:workers=4,batch=64,queue=128"
        " (default: $REPRO_EXECUTOR or serial)",
    )
    subparser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="documents per executor batch; overrides the spec's batch="
        " field (default: 32)",
    )
    subparser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker lanes for the threaded/process executors; overrides"
        " the spec's workers= field",
    )
    subparser.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help="bound of the ingest queue between fetching and the executor;"
        " overrides the spec's queue= field (default: 2x batch size)",
    )


def _add_recovery_arguments(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="enable crash recovery: journal delivered notifications to"
        " PATH and checkpoint the runtime (subscriptions persist to"
        " PATH.subs); resume a crashed run with 'resume --journal PATH'",
    )
    subparser.add_argument(
        "--checkpoint-every",
        type=int,
        default=64,
        metavar="N",
        help="checkpoint the runtime every N ingested batches"
        " (default: 64)",
    )


def _add_fault_arguments(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="inject seeded transient fetch faults at this total rate"
        " (default: 0, no injection)",
    )
    subparser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the fault injector's own RNG",
    )
    subparser.add_argument(
        "--dlq-json",
        metavar="PATH",
        default=None,
        help="dump the dead-letter queue to PATH after the run",
    )


# -- commands -------------------------------------------------------------------


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_check(args: argparse.Namespace) -> int:
    subscription = parse_subscription(_read(args.file))
    validate_subscription(subscription)
    complex_events = sum(
        len(query.all_disjuncts()) for query in subscription.monitoring
    )
    print(f"subscription {subscription.name}: OK")
    print(f"  monitoring queries : {len(subscription.monitoring)}")
    print(f"  complex events     : {complex_events}")
    print(f"  continuous queries : {len(subscription.continuous)}")
    print(f"  refresh statements : {len(subscription.refreshes)}")
    print(f"  virtual references : {len(subscription.virtuals)}")
    print(f"  report section     : {'yes' if subscription.report else 'no'}")
    return 0


def _cmd_fmt(args: argparse.Namespace) -> int:
    subscription = parse_subscription(_read(args.file))
    sys.stdout.write(unparse(subscription))
    return 0


_SIM_START = 990_000_000.0

_SIM_SOURCE = """
subscription Demo
monitoring NewCam
select X
from self//Product X
where URL extends "http://www.shop"
  and new Product contains "camera"
report when count >= 3
"""


def _build_world(
    sites: int, seed: int, spec, shards: int = 1,
    shard_mode: str = "flow", fault_rate: float = 0.0,
    fault_seed: int = 0, database=None, populate: bool = True,
):
    """The shared demo/stats/chaos world: one system + one crawler.

    With ``populate=False`` the page table and subscription are left
    empty — the ``resume`` path restores both from the subscription WAL
    and the runtime checkpoint instead of re-creating them.
    """
    from .faults import DeadLetterQueue, FaultInjector, FaultPlan
    from .pipeline import SubscriptionSystem
    from .webworld import ChangeModel, SimulatedCrawler, SiteGenerator

    clock = SimulatedClock(_SIM_START)
    system = SubscriptionSystem(
        clock=clock, shards=shards, shard_mode=shard_mode,
        executor=spec, database=database,
    )
    injector = None
    dead_letters = None
    metrics = None
    if fault_rate > 0.0:
        metrics = system.metrics
        dead_letters = DeadLetterQueue(metrics=metrics)
        system.dead_letters = dead_letters
        injector = FaultInjector(
            FaultPlan.transient_only(fault_rate, seed=fault_seed),
            metrics=metrics,
        )
    crawler = SimulatedCrawler(
        clock=clock, change_model=ChangeModel(seed=seed + 1),
        seed=seed + 2, fault_injector=injector,
        dead_letters=dead_letters, metrics=metrics,
    )
    if populate:
        generator = SiteGenerator(seed=seed)
        for i in range(sites):
            crawler.add_xml_page(
                f"http://www.shop{i}.example/catalog/products.xml",
                generator.catalog(products=8),
                change_probability=0.7,
            )
        system.subscribe(_SIM_SOURCE, owner_email="demo@example.org")
    return system, crawler


def _drive_world(system, crawler, end_time: float, step: float) -> None:
    """Crawl-and-advance until the simulated clock reaches ``end_time``.

    A ``while clock < end`` loop (not ``for day in range(days)``) so a
    resumed run, whose clock starts at the restored checkpoint, covers
    exactly the remaining window.
    """
    while system.clock.now() < end_time:
        system.run_stream(crawler.due_fetches())
        system.advance_time(min(step, end_time - system.clock.now()))


def _run_simulation(
    sites: int, days: int, seed: int, shards: int = 1,
    shard_mode: str = "flow", executor: Optional[str] = None,
    batch_size: Optional[int] = None, workers: Optional[int] = None,
    queue_depth: Optional[int] = None, fault_rate: float = 0.0,
    fault_seed: int = 0, journal: Optional[str] = None,
    checkpoint_every: int = 64,
):
    """The shared demo/stats/chaos scenario: crawl ``sites`` for ``days``.

    ``executor`` is a spec string (``process:workers=4,batch=64``);
    ``batch_size`` / ``workers`` / ``queue_depth`` are the individual
    flag overrides, which win over the spec's own fields (see
    :mod:`repro.pipeline.executors` for the precedence rules).

    With ``fault_rate`` > 0 the crawl runs under a seeded transient-only
    :class:`~repro.faults.FaultInjector` with a shared dead-letter queue,
    and the stream is drained hourly (instead of daily) so backoff
    retries land before each page's next nominal fetch.

    With ``journal`` the run is crash-recoverable: subscriptions persist
    to ``journal + ".subs"``, every delivered notification is journaled,
    and the runtime checkpoints every ``checkpoint_every`` batches; the
    scenario configuration rides inside each checkpoint so ``resume
    --journal`` can rebuild the world without re-stating the flags.
    Returns ``(system, crawler)``; the dead-letter queue (or ``None``)
    hangs off ``system.dead_letters``.
    """
    from .minisql import Database
    from .pipeline.executors import resolve

    spec = resolve(executor).merged(
        workers=workers, batch=batch_size, queue=queue_depth
    )
    step = 3600.0 if fault_rate > 0.0 else 86_400.0
    if fault_rate > 0.0:
        # half-day drain so in-flight retries land
        end_time = _SIM_START + (days * 24 + 12) * 3600.0
    else:
        end_time = _SIM_START + days * 86_400.0
    database = Database(path=journal + ".subs") if journal else None
    system, crawler = _build_world(
        sites, seed, spec, shards=shards, shard_mode=shard_mode,
        fault_rate=fault_rate, fault_seed=fault_seed, database=database,
    )
    if journal:
        system.enable_recovery(
            journal,
            crawler=crawler,
            checkpoint_every=checkpoint_every,
            metadata={
                "cli": {
                    "sites": sites, "seed": seed, "shards": shards,
                    "shard_mode": shard_mode, "executor": spec.render(),
                    "fault_rate": fault_rate, "fault_seed": fault_seed,
                    "checkpoint_every": checkpoint_every,
                    "end_time": end_time, "step": step,
                }
            },
        )
    _drive_world(system, crawler, end_time, step)
    return system, crawler


def _write_metrics_json(system, path: Optional[str]) -> None:
    if path is None:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(system.metrics_snapshot(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def _write_dlq_json(system, path: Optional[str]) -> None:
    if path is None or system.dead_letters is None:
        return
    system.dead_letters.save(path)


def _print_fault_summary(system, crawler) -> None:
    print(f"  faults injected: {crawler.faults_seen}")
    print(f"  retries        : {crawler.retries_scheduled}")
    print(f"  quarantined    : {crawler.dead_lettered}")
    if system.dead_letters is not None:
        print(f"  dlq depth      : {len(system.dead_letters)}")


def _cmd_demo(args: argparse.Namespace) -> int:
    system, crawler = _run_simulation(
        args.sites, args.days, args.seed,
        executor=args.executor, batch_size=args.batch_size,
        workers=args.workers, queue_depth=args.queue_depth,
        fault_rate=args.fault_rate, fault_seed=args.fault_seed,
        journal=args.journal, checkpoint_every=args.checkpoint_every,
    )
    stats = system.processor.stats
    print(f"{args.sites} sites crawled over {args.days} simulated days")
    print(f"  documents fed  : {system.documents_fed}")
    print(f"  alerts         : {stats.alerts_processed}")
    print(f"  notifications  : {stats.notifications_sent}")
    print(f"  reports        : {system.reporter.stats.reports_generated}")
    print(f"  emails         : {system.email_sink.total_sent}")
    if args.fault_rate > 0:
        _print_fault_summary(system, crawler)
    _write_metrics_json(system, args.metrics_json)
    _write_dlq_json(system, args.dlq_json)
    if args.metrics_json:
        print(f"  metrics        : {args.metrics_json}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    system, _crawler = _run_simulation(
        args.sites, args.days, args.seed,
        shards=args.shards, shard_mode=args.shard_mode,
        executor=args.executor, batch_size=args.batch_size,
        workers=args.workers, queue_depth=args.queue_depth,
        fault_rate=args.fault_rate, fault_seed=args.fault_seed,
        journal=args.journal, checkpoint_every=args.checkpoint_every,
    )
    _write_dlq_json(system, args.dlq_json)
    if args.metrics_json:
        _write_metrics_json(system, args.metrics_json)
        print(f"metrics snapshot written to {args.metrics_json}")
    else:
        json.dump(
            system.metrics_snapshot(), sys.stdout, indent=2, sort_keys=True
        )
        sys.stdout.write("\n")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded chaos smoke: any escaped exception or lost document fails.

    The CI job runs this with a 20% transient-fault rate; success means
    every injected failure was absorbed by retries (empty dead-letter
    queue, exit 0).
    """
    import traceback

    from .faults import CrashPoint, KILL_POINTS, install

    if args.fault_rate <= 0:
        print("error: chaos requires --fault-rate > 0", file=sys.stderr)
        return 2
    if args.kill is not None:
        if not args.journal:
            print("error: --kill requires --journal", file=sys.stderr)
            return 2
        point, _, hits = args.kill.partition(":")
        if point not in KILL_POINTS:
            print(
                f"error: unknown kill point {point!r}"
                f" (choose from {', '.join(KILL_POINTS)})",
                file=sys.stderr,
            )
            return 2
        install(point, at=int(hits) if hits else 1)
    try:
        system, crawler = _run_simulation(
            args.sites, args.days, args.seed,
            executor=args.executor, batch_size=args.batch_size,
            workers=args.workers, queue_depth=args.queue_depth,
            fault_rate=args.fault_rate, fault_seed=args.fault_seed,
            journal=args.journal, checkpoint_every=args.checkpoint_every,
        )
    except CrashPoint as crash:
        print(
            f"chaos: crashed at kill point {crash.point}"
            f" (hit {crash.hit}); resume with:"
            f" repro-monitor resume --journal {args.journal}"
        )
        return 42
    except Exception:
        traceback.print_exc()
        print("chaos: FAILED (exception escaped the pipeline)")
        return 1
    stats = system.processor.stats
    print(
        f"chaos: {args.sites} sites, {args.days} days,"
        f" fault rate {args.fault_rate:.0%}"
    )
    print(f"  documents fed  : {system.documents_fed}")
    print(f"  notifications  : {stats.notifications_sent}")
    _print_fault_summary(system, crawler)
    breakers = crawler.open_breaker_urls()
    if breakers:
        print(f"  open breakers  : {len(breakers)}")
    _write_dlq_json(system, args.dlq_json)
    depth = len(system.dead_letters) if system.dead_letters else 0
    if depth or system.documents_rejected:
        print(
            f"chaos: FAILED ({depth} quarantined,"
            f" {system.documents_rejected} rejected)"
        )
        return 1
    print("chaos: OK (all injected faults absorbed)")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    """Resume a crashed ``--journal`` run from its last checkpoint.

    Rebuilds the world from the scenario configuration stored inside the
    checkpoint, recovers the subscription database from its WAL and the
    runtime from the journal, then drives the remaining simulated window.
    Deliveries already journaled before the crash are recognised and
    deduplicated (``recovery.deduped``), so the journal ends exactly as a
    crash-free run's would.
    """
    from .minisql import Database
    from .minisql.wal import read_snapshot
    from .pipeline.executors import ExecutorSpec

    snapshot = read_snapshot(args.journal)
    if snapshot is None:
        print(
            f"error: no checkpoint found at {args.journal}.snapshot",
            file=sys.stderr,
        )
        return 1
    config = (snapshot.get("state") or {}).get("metadata", {}).get("cli")
    if config is None:
        print(
            "error: this journal was not written by the CLI (no scenario"
            " configuration in its checkpoint)",
            file=sys.stderr,
        )
        return 1
    database = Database.recover(args.journal + ".subs")
    system, crawler = _build_world(
        config["sites"], config["seed"],
        ExecutorSpec.parse(config["executor"]),
        shards=config["shards"], shard_mode=config["shard_mode"],
        fault_rate=config["fault_rate"], fault_seed=config["fault_seed"],
        database=database, populate=False,
    )
    manager = system.recover_runtime(
        args.journal,
        crawler=crawler,
        checkpoint_every=config["checkpoint_every"],
    )
    resumed_from = system.clock.now()
    print(
        f"resume: checkpoint at t={resumed_from:.0f}"
        f" ({manager.replayed} journaled deliveries to regenerate)"
    )
    _drive_world(system, crawler, config["end_time"], config["step"])
    stats = system.processor.stats
    print(f"  documents fed  : {system.documents_fed}")
    print(f"  notifications  : {stats.notifications_sent}")
    print(f"  deliveries     : {len(manager.seen)} journaled")
    print(f"  replayed       : {manager.replayed}")
    print(f"  deduplicated   : {manager.deduped}")
    if manager.deduped != manager.replayed:
        print(
            f"resume: FAILED (replayed {manager.replayed} !="
            f" deduplicated {manager.deduped} — exactly-once violated)"
        )
        return 1
    print("resume: OK (exactly-once delivery held)")
    return 0


def _cmd_dlq(args: argparse.Namespace) -> int:
    """Operate on a dead-letter JSON file written via ``--dlq-json``."""
    from .faults import DeadLetterQueue
    from .pipeline import SubscriptionSystem

    queue = DeadLetterQueue.load(args.file)
    if args.action == "list":
        print(
            f"{len(queue)} entries"
            f" (capacity {queue.capacity}, {queue.dropped} dropped)"
        )
        for entry in queue:
            print(
                f"  {entry.url} [{entry.kind}] {entry.error_class}"
                f" after {entry.attempts} attempts"
                f" via {entry.source}: {entry.error}"
            )
        return 0
    if args.action == "purge":
        count = queue.purge()
        queue.save(args.file)
        print(f"purged {count} entries from {args.file}")
        return 0
    # requeue: replay every entry through a fresh pipeline; documents the
    # loader accepts leave the file, documents it still rejects stay.
    system = SubscriptionSystem(dead_letters=DeadLetterQueue())
    recovered = 0
    for entry in queue.drain():
        before = len(system.dead_letters)
        system.feed_batch([entry.to_fetch()], skip_malformed=True)
        if len(system.dead_letters) == before:
            recovered += 1
    for entry in system.dead_letters.entries():
        queue.push(entry)
    queue.save(args.file)
    print(
        f"requeued: {recovered} recovered,"
        f" {len(queue)} still quarantined in {args.file}"
    )
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    from .core import AESMatcher, CountingMatcher, NaiveMatcher
    from .webworld import SyntheticWorkload, WorkloadParams

    factory = {
        "aes": AESMatcher,
        "counting": CountingMatcher,
        "naive": NaiveMatcher,
    }[args.engine]
    workload = SyntheticWorkload(
        WorkloadParams(
            card_a=args.card_a,
            card_c=args.card_c,
            c_min=args.c_min,
            c_max=args.c_max,
            s=args.s,
            seed=args.seed,
        )
    )
    print(
        f"building {args.engine} matcher: Card(A)={args.card_a:,},"
        f" Card(C)={args.card_c:,}, c in [{args.c_min},{args.c_max}],"
        f" s={args.s}"
    )
    build_start = time.perf_counter()
    matcher = workload.build(factory)
    build_elapsed = time.perf_counter() - build_start
    documents = workload.document_event_sets(args.docs)
    match_start = time.perf_counter()
    matches = sum(len(matcher.match(d)) for d in documents)
    match_elapsed = time.perf_counter() - match_start
    per_doc = match_elapsed / args.docs * 1e6
    print(f"  build     : {build_elapsed:8.2f} s")
    print(f"  match     : {per_doc:8.1f} us/doc"
          f" ({args.docs / match_elapsed:,.0f} docs/s)")
    print(f"  matches   : {matches}")
    print(f"  structure : {matcher.structure_stats()}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
