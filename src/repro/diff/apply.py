"""Delta application: reconstruct a version from another version + delta.

"The new version of a document can be constructed based on an old version
and the delta" (Section 5.2).  Combined with :meth:`Delta.inverted`, the
repository can navigate a version chain in both directions while storing
only one full version per document.
"""

from __future__ import annotations

from typing import Dict

from ..errors import DeltaApplyError
from ..xmlstore.nodes import Document, ElementNode, Node
from .delta import Delta, _copy_subtree, copy_document
from .xids import index_by_xid


def apply_delta(document: Document, delta: Delta) -> Document:
    """Return a new :class:`Document` = ``document`` with ``delta`` applied.

    ``document`` is left untouched.  Raises :class:`DeltaApplyError` when the
    delta references XIDs absent from the document or positions that do not
    fit — the signs of applying a delta to the wrong version.
    """
    result = copy_document(document)
    index: Dict[int, Node] = index_by_xid(result)

    for delete in delta.deletes:
        node = index.get(delete.xid)
        if node is None:
            raise DeltaApplyError(f"delete references unknown XID {delete.xid}")
        parent = node.parent
        if parent is None:
            raise DeltaApplyError("cannot delete the document root")
        if parent.xid != delete.parent_xid:
            raise DeltaApplyError(
                f"delete of XID {delete.xid}: parent is {parent.xid},"
                f" delta expected {delete.parent_xid}"
            )
        node.detach()
        for removed in node.preorder():
            if removed.xid is not None:
                index.pop(removed.xid, None)

    for insert in delta.inserts:
        parent = index.get(insert.parent_xid)
        if parent is None or not isinstance(parent, ElementNode):
            raise DeltaApplyError(
                f"insert references unknown parent XID {insert.parent_xid}"
            )
        if insert.position > len(parent.children):
            raise DeltaApplyError(
                f"insert position {insert.position} beyond the"
                f" {len(parent.children)} children of XID {insert.parent_xid}"
            )
        subtree = _copy_subtree(insert.subtree)
        parent.insert(insert.position, subtree)
        for added in subtree.preorder():
            if added.xid is not None:
                if added.xid in index:
                    raise DeltaApplyError(
                        f"insert would duplicate XID {added.xid}"
                    )
                index[added.xid] = added

    for update in delta.text_updates:
        node = index.get(update.xid)
        if node is None:
            raise DeltaApplyError(
                f"text update references unknown XID {update.xid}"
            )
        if not hasattr(node, "data"):
            raise DeltaApplyError(
                f"text update targets non-text node XID {update.xid}"
            )
        if node.data != update.old_text:  # type: ignore[attr-defined]
            raise DeltaApplyError(
                f"text update on XID {update.xid}: current text does not"
                " match the delta's old text (wrong base version?)"
            )
        node.data = update.new_text  # type: ignore[attr-defined]

    for attr_update in delta.attribute_updates:
        node = index.get(attr_update.xid)
        if node is None or not isinstance(node, ElementNode):
            raise DeltaApplyError(
                f"attribute update references unknown element XID"
                f" {attr_update.xid}"
            )
        for name, (old, new) in attr_update.changes.items():
            current = node.attributes.get(name)
            if current != old:
                raise DeltaApplyError(
                    f"attribute {name!r} on XID {attr_update.xid} is"
                    f" {current!r}, delta expected {old!r}"
                )
            if new is None:
                node.attributes.pop(name, None)
            else:
                node.attributes[name] = new

    return result
