"""Subtree signatures (content hashes) used by the diff matcher.

Two subtrees with equal signatures are byte-identical under serialization
(same tags, attributes, text and child order), so the matcher may anchor on
them without further comparison.  Signatures are 64-bit integers derived
from BLAKE2b, computed bottom-up in one postorder pass.

HTML pages are not warehoused by Xyleme; for them the system only keeps "the
signature of the old page" and can merely report changed/unchanged
(Section 1).  :func:`page_signature` provides that whole-page signature.
"""

from __future__ import annotations

import hashlib
from typing import Dict

from ..xmlstore.nodes import Document, ElementNode, Node, TextNode

_HASH_BYTES = 8


def _digest(payload: bytes) -> int:
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=_HASH_BYTES).digest(), "big"
    )


def page_signature(content: str) -> int:
    """Signature of a raw (HTML) page body."""
    return _digest(content.encode("utf-8", errors="replace"))


def subtree_signatures(root: Node) -> Dict[int, int]:
    """Map ``id(node)`` -> signature for every node under ``root``.

    One postorder pass; each element's signature hashes its tag, sorted
    attributes and the ordered signatures of its children.
    """
    signatures: Dict[int, int] = {}
    for node in root.postorder():
        if isinstance(node, TextNode):
            payload = b"T" + node.data.encode("utf-8", errors="replace")
        else:
            assert isinstance(node, ElementNode)
            parts = [b"E", node.tag.encode("utf-8")]
            for name in sorted(node.attributes):
                parts.append(b"A")
                parts.append(name.encode("utf-8"))
                parts.append(b"=")
                parts.append(node.attributes[name].encode("utf-8"))
            for child in node.children:
                parts.append(signatures[id(child)].to_bytes(_HASH_BYTES, "big"))
            payload = b"\x00".join(parts)
        signatures[id(node)] = _digest(payload)
    return signatures


def document_signature(document: Document) -> int:
    """Signature of a whole XML document (root subtree)."""
    return subtree_signatures(document.root)[id(document.root)]
