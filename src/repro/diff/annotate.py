"""Change visualization — the paper's "change editor" (Section 5.2).

"We also provide a practical change editor for the visualization of
changes in XML documents or query results in the spirit of change editors
as found, for instance, in MS-Word."

:func:`annotate_changes` merges two versions into one tree where every
edit is marked with ``diff:`` attributes / wrapper elements:

* inserted subtrees get ``diff:status="inserted"`` on their root;
* deleted subtrees are re-inserted at their old position with
  ``diff:status="deleted"``;
* updated text becomes ``<diff:update><diff:old>…</diff:old>
  <diff:new>…</diff:new></diff:update>``;
* attribute changes are recorded as ``diff:attr-<name>="old->new"``.

:func:`render_text_diff` flattens the annotation into a +/- line view for
terminals.
"""

from __future__ import annotations

from typing import List

from ..errors import DiffError
from ..xmlstore.nodes import Document, ElementNode, Node, TextNode
from .delta import Delta, _copy_subtree
from .xids import index_by_xid

STATUS_ATTR = "diff:status"
INSERTED = "inserted"
DELETED = "deleted"


def annotate_changes(
    old_document: Document, new_document: Document, delta: Delta
) -> Document:
    """Build the annotated merge of two versions.

    ``new_document`` must be the version the diff produced (its nodes carry
    XIDs); neither input is modified.
    """
    merged = Document(
        _copy_annotated(new_document.root),
        doctype_name=new_document.doctype_name,
        dtd_url=new_document.dtd_url,
    )
    index = index_by_xid(merged)

    inserted_roots = {insert.subtree.xid for insert in delta.inserts}
    for xid in inserted_roots:
        node = index.get(xid)
        if isinstance(node, ElementNode):
            node.attributes[STATUS_ATTR] = INSERTED
        elif isinstance(node, TextNode) and node.parent is not None:
            wrapper = ElementNode("diff:inserted-text")
            parent = node.parent
            position = node.sibling_index()
            node.detach()
            wrapper.append(node)
            parent.insert(position, wrapper)

    for update in delta.text_updates:
        node = index.get(update.xid)
        if not isinstance(node, TextNode) or node.parent is None:
            continue
        parent = node.parent
        position = node.sibling_index()
        node.detach()
        marker = ElementNode("diff:update")
        marker.make_child("diff:old", text=update.old_text)
        marker.make_child("diff:new", text=update.new_text)
        parent.insert(position, marker)

    for attr_update in delta.attribute_updates:
        node = index.get(attr_update.xid)
        if not isinstance(node, ElementNode):
            continue
        for name, (old, new) in sorted(attr_update.changes.items()):
            node.attributes[f"diff:attr-{name}"] = (
                f"{old if old is not None else ''}"
                f"->{new if new is not None else ''}"
            )

    # Deletions: re-insert the removed subtree at its old position under
    # its (merged) parent, marked deleted.  Deletes were recorded
    # right-to-left per parent against old positions; replaying them
    # left-to-right keeps positions meaningful within the merged child
    # list, clamped to the current length.
    for delete in reversed(delta.deletes):
        parent = index.get(delete.parent_xid)
        if not isinstance(parent, ElementNode):
            raise DiffError(
                f"annotation: delete parent XID {delete.parent_xid} is not"
                " in the merged document"
            )
        ghost = _copy_subtree(delete.subtree)
        if isinstance(ghost, ElementNode):
            ghost.attributes[STATUS_ATTR] = DELETED
        else:
            wrapper = ElementNode("diff:deleted-text")
            wrapper.append(ghost)
            ghost = wrapper
        position = min(delete.position, len(parent.children))
        parent.insert(position, ghost)
    return merged


def _copy_annotated(node: Node) -> Node:
    copy = _copy_subtree(node)
    return copy


def render_text_diff(annotated: Document, indent: str = "  ") -> str:
    """Flatten an annotated merge into a +/- terminal view."""
    lines: List[str] = []
    _render_node(annotated.root, lines, 0, " ", indent)
    return "\n".join(lines)


def _render_node(
    node: Node, lines: List[str], depth: int, mark: str, indent: str
) -> None:
    pad = indent * depth
    if isinstance(node, TextNode):
        lines.append(f"{mark} {pad}{node.data}")
        return
    assert isinstance(node, ElementNode)
    if node.tag == "diff:update":
        old = node.first("diff:old")
        new = node.first("diff:new")
        lines.append(f"- {pad}{old.text_content() if old else ''}")
        lines.append(f"+ {pad}{new.text_content() if new else ''}")
        return
    if node.tag == "diff:inserted-text":
        lines.append(f"+ {pad}{node.text_content()}")
        return
    if node.tag == "diff:deleted-text":
        lines.append(f"- {pad}{node.text_content()}")
        return
    status = node.attributes.get(STATUS_ATTR)
    node_mark = mark
    if status == INSERTED:
        node_mark = "+"
    elif status == DELETED:
        node_mark = "-"
    attrs = "".join(
        f' {name}="{value}"'
        for name, value in node.attributes.items()
        if name != STATUS_ATTR
    )
    lines.append(f"{node_mark} {pad}<{node.tag}{attrs}>")
    for child in node.children:
        _render_node(child, lines, depth + 1, node_mark, indent)
    lines.append(f"{node_mark} {pad}</{node.tag}>")
