"""Element-level change classification on top of a delta.

The XML Alerter's atomic conditions are of the form ``new tag``,
``updated tag``, ``deleted tag`` (optionally with ``contains word``), see
Sections 5.1 and 6.3.  Given a delta this module classifies the elements of
the two versions:

* **new** — every element inside an inserted subtree;
* **deleted** — every element inside a deleted subtree;
* **updated** — every *matched* element whose subtree was touched (a text or
  attribute change, an insertion or a deletion strictly below it); the
  classification propagates to ancestors so that ``updated Product`` fires
  when a ``<price>`` nested in a product changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from ..errors import DiffError
from ..xmlstore.nodes import Document, ElementNode, Node
from .delta import Delta
from .xids import index_by_xid

#: Document-level statuses used by the subscription language (Section 5.1):
#: ``change-kind self`` with kind in new / updated / unchanged / deleted.
DOC_NEW = "new"
DOC_UPDATED = "updated"
DOC_UNCHANGED = "unchanged"
DOC_DELETED = "deleted"


@dataclass
class DocumentChanges:
    """Per-tag element change sets between two versions of one document."""

    new_elements: List[ElementNode] = field(default_factory=list)
    updated_elements: List[ElementNode] = field(default_factory=list)
    deleted_elements: List[ElementNode] = field(default_factory=list)

    def by_kind(self, kind: str) -> List[ElementNode]:
        if kind == DOC_NEW:
            return self.new_elements
        if kind == DOC_UPDATED:
            return self.updated_elements
        if kind == DOC_DELETED:
            return self.deleted_elements
        raise DiffError(f"unknown change kind {kind!r}")

    def tags(self, kind: str) -> Set[str]:
        return {element.tag for element in self.by_kind(kind)}

    def is_empty(self) -> bool:
        return not (
            self.new_elements or self.updated_elements or self.deleted_elements
        )


def classify_changes(
    old_document: Document, new_document: Document, delta: Delta
) -> DocumentChanges:
    """Classify elements as new / updated / deleted given a computed delta.

    ``new_document`` must be the version produced by the diff (its nodes
    carry XIDs); ``old_document`` is the diff's base.
    """
    changes = DocumentChanges()
    if not delta:
        return changes

    new_index = index_by_xid(new_document)
    old_index = index_by_xid(old_document)

    for insert in delta.inserts:
        root = new_index.get(insert.subtree.xid or -1)
        # The inserted subtree lives both in the delta and (with the same
        # XIDs) in the new document; prefer the in-document nodes so callers
        # can navigate from them.
        source: Node = root if root is not None else insert.subtree
        for node in source.preorder():
            if isinstance(node, ElementNode):
                changes.new_elements.append(node)

    for delete in delta.deletes:
        root_old = old_index.get(delete.xid)
        source = root_old if root_old is not None else delete.subtree
        for node in source.preorder():
            if isinstance(node, ElementNode):
                changes.deleted_elements.append(node)

    # Updated: matched elements touched directly or via a descendant edit.
    touched: List[Node] = []
    for update in delta.text_updates:
        node = new_index.get(update.xid)
        if node is not None:
            touched.append(node)
    for attr_update in delta.attribute_updates:
        node = new_index.get(attr_update.xid)
        if node is not None:
            touched.append(node)
    for insert in delta.inserts:
        parent = new_index.get(insert.parent_xid)
        if parent is not None:
            touched.append(parent)
    for delete in delta.deletes:
        parent = new_index.get(delete.parent_xid)
        if parent is not None:
            touched.append(parent)

    new_xids = {
        node.xid
        for insert in delta.inserts
        for node in insert.subtree.preorder()
    }
    seen: Set[int] = set()
    for node in touched:
        element = node if isinstance(node, ElementNode) else node.parent
        while element is not None:
            marker = id(element)
            if marker in seen:
                break
            seen.add(marker)
            if element.xid not in new_xids:
                changes.updated_elements.append(element)
            element = element.parent
    return changes


def document_status(delta: Delta) -> str:
    """Doc-level status for a refetched, previously warehoused document."""
    return DOC_UPDATED if delta else DOC_UNCHANGED
