"""Delta model: the operations a diff produces and their XML form.

The paper shows deltas as XML (Section 5.2)::

    <AmsterdamPaintings-delta>
      <inserted ID="556" parent="556" position="4"> ... </inserted>
      <updated ID="332" note="..."/>
    </AmsterdamPaintings-delta>

We keep that shape.  A :class:`Delta` is an ordered list of operations over
XIDs:

* :class:`InsertOp` — a new subtree under ``parent`` at ``position``.
* :class:`DeleteOp` — removal of the subtree rooted at ``xid`` (the removed
  subtree is carried so that deltas are invertible, the property [17] relies
  on for version reconstruction in both directions).
* :class:`UpdateTextOp` — the character data of text node ``xid`` changed.
* :class:`UpdateAttributesOp` — attribute changes on element ``xid``.

Operations are stored in *application order*: all deletes (bottom-up,
right-to-left), then all inserts (top-down, left-to-right), then updates.
``repro.diff.apply`` relies on this ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..xmlstore.nodes import Document, ElementNode, Node, TextNode
from ..xmlstore.serializer import serialize


@dataclass
class InsertOp:
    parent_xid: int
    position: int
    #: Root of the inserted subtree; nodes carry their (freshly assigned)
    #: XIDs so the delta fully determines the new version's identifiers.
    subtree: Node

    kind: str = field(default="inserted", init=False)

    @property
    def xid(self) -> int:
        assert self.subtree.xid is not None
        return self.subtree.xid


@dataclass
class DeleteOp:
    xid: int
    parent_xid: int
    position: int
    #: The removed subtree (with XIDs) — needed to invert the delta.
    subtree: Node

    kind: str = field(default="deleted", init=False)


@dataclass
class UpdateTextOp:
    xid: int
    old_text: str
    new_text: str

    kind: str = field(default="updated", init=False)


@dataclass
class UpdateAttributesOp:
    xid: int
    #: name -> (old value or None, new value or None)
    changes: Dict[str, Tuple[Optional[str], Optional[str]]]

    kind: str = field(default="updated-attributes", init=False)


DeltaOp = object  # union marker for documentation purposes


@dataclass
class Delta:
    """An ordered, invertible set of edit operations between two versions."""

    deletes: List[DeleteOp] = field(default_factory=list)
    inserts: List[InsertOp] = field(default_factory=list)
    text_updates: List[UpdateTextOp] = field(default_factory=list)
    attribute_updates: List[UpdateAttributesOp] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(
            self.deletes
            or self.inserts
            or self.text_updates
            or self.attribute_updates
        )

    def __len__(self) -> int:
        return (
            len(self.deletes)
            + len(self.inserts)
            + len(self.text_updates)
            + len(self.attribute_updates)
        )

    def operations(self) -> Iterator[object]:
        """All operations in application order."""
        yield from self.deletes
        yield from self.inserts
        yield from self.text_updates
        yield from self.attribute_updates

    # -- XML form ----------------------------------------------------------

    def to_element(self, name: str = "delta") -> ElementNode:
        """Render the delta as an XML element in the paper's style."""
        root = ElementNode(name)
        for delete in self.deletes:
            element = root.make_child(
                "deleted",
                ID=str(delete.xid),
                parent=str(delete.parent_xid),
                position=str(delete.position),
            )
            element.append(_copy_subtree(delete.subtree))
        for insert in self.inserts:
            element = root.make_child(
                "inserted",
                ID=str(insert.xid),
                parent=str(insert.parent_xid),
                position=str(insert.position),
            )
            element.append(_copy_subtree(insert.subtree))
        for update in self.text_updates:
            root.make_child(
                "updated",
                ID=str(update.xid),
                **{"old-text": update.old_text, "new-text": update.new_text},
            )
        for attr_update in self.attribute_updates:
            element = root.make_child(
                "updated-attributes", ID=str(attr_update.xid)
            )
            for attr_name, (old, new) in sorted(attr_update.changes.items()):
                change = element.make_child("attribute", name=attr_name)
                if old is not None:
                    change.attributes["old"] = old
                if new is not None:
                    change.attributes["new"] = new
        return root

    def to_xml(self, name: str = "delta") -> str:
        return serialize(self.to_element(name))

    # -- inversion ---------------------------------------------------------

    def inverted(self) -> "Delta":
        """The delta that maps the new version back onto the old one."""
        inverse = Delta()
        # Inserts become deletes and vice versa; apply order is preserved by
        # construction (Delta always applies deletes before inserts).
        for insert in self.inserts:
            inverse.deletes.append(
                DeleteOp(
                    xid=insert.xid,
                    parent_xid=insert.parent_xid,
                    position=insert.position,
                    subtree=insert.subtree,
                )
            )
        # Deletes were recorded bottom-up/right-to-left against the *old*
        # tree; replaying them as inserts must go top-down/left-to-right,
        # i.e. in reverse order.
        for delete in reversed(self.deletes):
            inverse.inserts.append(
                InsertOp(
                    parent_xid=delete.parent_xid,
                    position=delete.position,
                    subtree=delete.subtree,
                )
            )
        for update in self.text_updates:
            inverse.text_updates.append(
                UpdateTextOp(
                    xid=update.xid,
                    old_text=update.new_text,
                    new_text=update.old_text,
                )
            )
        for attr_update in self.attribute_updates:
            inverse.attribute_updates.append(
                UpdateAttributesOp(
                    xid=attr_update.xid,
                    changes={
                        name: (new, old)
                        for name, (old, new) in attr_update.changes.items()
                    },
                )
            )
        return inverse


def _copy_subtree(node: Node) -> Node:
    """Deep copy of a subtree, preserving XIDs."""
    if isinstance(node, TextNode):
        copy = TextNode(node.data)
        copy.xid = node.xid
        return copy
    assert isinstance(node, ElementNode)
    copy_element = ElementNode(node.tag, dict(node.attributes))
    copy_element.xid = node.xid
    for child in node.children:
        copy_element.append(_copy_subtree(child))
    return copy_element


def copy_document(document: Document) -> Document:
    """Deep copy of a whole document, preserving XIDs."""
    root_copy = _copy_subtree(document.root)
    assert isinstance(root_copy, ElementNode)
    return Document(
        root_copy,
        doctype_name=document.doctype_name,
        dtd_url=document.dtd_url,
    )
