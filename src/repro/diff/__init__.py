"""Versioning subsystem: XIDs, subtree signatures, deltas, change classes.

Replaces the XyDiff machinery of [17] that the paper's element-level
monitoring and ``continuous delta`` queries depend on.

Typical flow::

    space = XidSpace()
    space.assign_fresh(v1.root)            # first version enters the store
    delta = compute_delta(v1, v2, space)   # v2 nodes get XIDs as a side effect
    changes = classify_changes(v1, v2, delta)
    v2_again = apply_delta(v1, delta)      # reconstruction
    v1_again = apply_delta(v2, delta.inverted())
"""

from .annotate import annotate_changes, render_text_diff
from .apply import apply_delta
from .changes import (
    DOC_DELETED,
    DOC_NEW,
    DOC_UNCHANGED,
    DOC_UPDATED,
    DocumentChanges,
    classify_changes,
    document_status,
)
from .delta import (
    Delta,
    DeleteOp,
    InsertOp,
    UpdateAttributesOp,
    UpdateTextOp,
    copy_document,
)
from .matching import compute_delta
from .signature import document_signature, page_signature, subtree_signatures
from .xids import XidSpace, index_by_xid, max_xid, space_for

__all__ = [
    "annotate_changes",
    "render_text_diff",
    "apply_delta",
    "DOC_DELETED",
    "DOC_NEW",
    "DOC_UNCHANGED",
    "DOC_UPDATED",
    "DocumentChanges",
    "classify_changes",
    "document_status",
    "Delta",
    "DeleteOp",
    "InsertOp",
    "UpdateAttributesOp",
    "UpdateTextOp",
    "copy_document",
    "compute_delta",
    "document_signature",
    "page_signature",
    "subtree_signatures",
    "XidSpace",
    "index_by_xid",
    "max_xid",
    "space_for",
]
