"""XID assignment — persistent identifiers for XML nodes.

The paper (Section 5.2, citing [17] "Change-centric management of versions
in an XML warehouse") uses *XIDs*: identifiers attached to the elements of a
stored document that survive across versions.  Deltas are expressed against
XIDs (``<inserted ID="556" parent="556" position="4">``) and "the new
version of a document can be constructed based on an old version and the
delta".

In this reproduction each stored document carries an :class:`XidSpace`; the
diff assigns fresh XIDs to inserted nodes and propagates XIDs of matched
nodes from the old version to the new one.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..errors import DiffError
from ..xmlstore.nodes import Document, Node


class XidSpace:
    """Allocates XIDs for one document lineage and indexes nodes by XID."""

    def __init__(self, first_xid: int = 1):
        self._next = first_xid

    def allocate(self) -> int:
        xid = self._next
        self._next += 1
        return xid

    @property
    def next_xid(self) -> int:
        """The XID the next allocation will return (persisted with the doc)."""
        return self._next

    def assign_fresh(self, node: Node) -> None:
        """Assign fresh XIDs to every node of ``node``'s subtree (preorder).

        Used when a document enters the warehouse for the first time and
        when a delta inserts a new subtree.
        Nodes that already have an XID are *re-assigned*: call sites decide
        whether a subtree is new.
        """
        for descendant in node.preorder():
            descendant.xid = self.allocate()

    def assign_missing(self, node: Node) -> int:
        """Assign XIDs only to nodes lacking one; returns how many were set."""
        assigned = 0
        for descendant in node.preorder():
            if descendant.xid is None:
                descendant.xid = self.allocate()
                assigned += 1
        return assigned


def index_by_xid(document: Document) -> Dict[int, Node]:
    """Map XID -> node for every identified node of ``document``.

    Raises :class:`DiffError` on duplicate XIDs (a corrupted version chain).
    """
    index: Dict[int, Node] = {}
    for node in document.preorder():
        if node.xid is None:
            continue
        if node.xid in index:
            raise DiffError(f"duplicate XID {node.xid} in document")
        index[node.xid] = node
    return index


def iter_identified(document: Document) -> Iterator[Node]:
    """Yield the nodes of ``document`` that carry an XID, in preorder."""
    for node in document.preorder():
        if node.xid is not None:
            yield node


def require_xid(node: Node) -> int:
    """Return the node's XID or raise if it has none."""
    if node.xid is None:
        raise DiffError(f"node {node!r} has no XID")
    return node.xid


def max_xid(document: Document) -> int:
    """Largest XID present in the document (0 when none)."""
    best = 0
    for node in iter_identified(document):
        assert node.xid is not None
        if node.xid > best:
            best = node.xid
    return best


def space_for(document: Document, declared_next: Optional[int] = None) -> XidSpace:
    """Build an :class:`XidSpace` whose next XID is safe for ``document``."""
    floor = max_xid(document) + 1
    if declared_next is not None and declared_next > floor:
        floor = declared_next
    return XidSpace(first_xid=floor)
