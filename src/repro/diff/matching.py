"""Diff computation: match an old (XID-carrying) version against a new parse.

This is a simplified XyDiff [17]: subtree signatures anchor identical
subtrees, an LCS alignment per parent preserves order, and same-tag elements
left unmatched in a gap are paired in order and diffed recursively (these
become *updates*).  Moves across parents are represented as delete+insert —
a documented simplification; the monitoring subsystem only needs to classify
elements as new / updated / deleted (Section 6.3).

If the root tags differ the documents are considered unrelated and
:class:`~repro.errors.DiffError` is raised; callers (the repository) restart
the version lineage in that case.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import DiffError
from ..xmlstore.nodes import Document, ElementNode, Node, TextNode
from .delta import Delta, DeleteOp, InsertOp, UpdateAttributesOp, UpdateTextOp
from .signature import subtree_signatures
from .xids import XidSpace, require_xid

#: Beyond this product of child-list lengths the LCS falls back to a greedy
#: first-occurrence anchoring to bound memory/time on pathological fan-out.
_LCS_CELL_LIMIT = 1_000_000


def compute_delta(
    old_document: Document, new_document: Document, xid_space: XidSpace
) -> Delta:
    """Diff two versions.

    Side effects: every node of ``new_document`` receives an XID — matched
    nodes inherit the old node's XID, inserted nodes get fresh XIDs from
    ``xid_space``.  ``old_document`` is not modified.
    """
    old_root = old_document.root
    new_root = new_document.root
    if old_root.tag != new_root.tag:
        raise DiffError(
            f"root element changed from <{old_root.tag}> to <{new_root.tag}>;"
            " version lineage must be restarted"
        )
    old_signatures = subtree_signatures(old_root)
    new_signatures = subtree_signatures(new_root)
    delta = Delta()
    _match_elements(
        old_root, new_root, old_signatures, new_signatures, delta, xid_space
    )
    return delta


def _match_elements(
    old: ElementNode,
    new: ElementNode,
    old_signatures: Dict[int, int],
    new_signatures: Dict[int, int],
    delta: Delta,
    xid_space: XidSpace,
) -> None:
    """Match two same-tag elements: propagate XID, diff attrs and children."""
    new.xid = require_xid(old)
    if old.attributes != new.attributes:
        changes: Dict[str, Tuple[Optional[str], Optional[str]]] = {}
        for name in set(old.attributes) | set(new.attributes):
            before = old.attributes.get(name)
            after = new.attributes.get(name)
            if before != after:
                changes[name] = (before, after)
        delta.attribute_updates.append(
            UpdateAttributesOp(xid=new.xid, changes=changes)
        )
    _align_children(old, new, old_signatures, new_signatures, delta, xid_space)


def _align_children(
    old: ElementNode,
    new: ElementNode,
    old_signatures: Dict[int, int],
    new_signatures: Dict[int, int],
    delta: Delta,
    xid_space: XidSpace,
) -> None:
    old_children = old.children
    new_children = new.children
    old_keys = [old_signatures[id(c)] for c in old_children]
    new_keys = [new_signatures[id(c)] for c in new_children]
    anchors = _lcs_pairs(old_keys, new_keys)

    matched_old: set[int] = set()
    matched_new: set[int] = set()
    for old_index, new_index in anchors:
        _propagate_xids(old_children[old_index], new_children[new_index])
        matched_old.add(old_index)
        matched_new.add(new_index)

    # Work gap by gap between consecutive anchors, pairing same-kind nodes.
    boundaries = anchors + [(len(old_children), len(new_children))]
    previous = (-1, -1)
    deletions: List[int] = []
    for old_anchor, new_anchor in boundaries:
        gap_old = list(range(previous[0] + 1, old_anchor))
        gap_new = list(range(previous[1] + 1, new_anchor))
        previous = (old_anchor, new_anchor)
        pairs, unmatched_old, unmatched_new = _pair_gap(
            [old_children[i] for i in gap_old],
            [new_children[j] for j in gap_new],
        )
        for offset_old, offset_new in pairs:
            old_child = old_children[gap_old[offset_old]]
            new_child = new_children[gap_new[offset_new]]
            matched_old.add(gap_old[offset_old])
            matched_new.add(gap_new[offset_new])
            if isinstance(old_child, TextNode):
                assert isinstance(new_child, TextNode)
                new_child.xid = require_xid(old_child)
                if old_child.data != new_child.data:
                    delta.text_updates.append(
                        UpdateTextOp(
                            xid=new_child.xid,
                            old_text=old_child.data,
                            new_text=new_child.data,
                        )
                    )
            else:
                assert isinstance(old_child, ElementNode)
                assert isinstance(new_child, ElementNode)
                _match_elements(
                    old_child,
                    new_child,
                    old_signatures,
                    new_signatures,
                    delta,
                    xid_space,
                )
        deletions.extend(gap_old[i] for i in unmatched_old)
        for offset_new in unmatched_new:
            new_index = gap_new[offset_new]
            subtree = new_children[new_index]
            xid_space.assign_fresh(subtree)
            delta.inserts.append(
                InsertOp(
                    parent_xid=require_xid(new),
                    position=new_index,
                    subtree=subtree,
                )
            )

    # Record deletions right-to-left so they apply cleanly by old position.
    for old_index in sorted(deletions, reverse=True):
        subtree = old_children[old_index]
        delta.deletes.append(
            DeleteOp(
                xid=require_xid(subtree),
                parent_xid=require_xid(old),
                position=old_index,
                subtree=subtree,
            )
        )


def _pair_gap(
    old_nodes: Sequence[Node], new_nodes: Sequence[Node]
) -> Tuple[List[Tuple[int, int]], List[int], List[int]]:
    """Pair non-anchor nodes of a gap for recursive diffing.

    Elements pair with same-tag elements (LCS over tag sequences so order is
    preserved); text nodes pair with text nodes in order.  Returns (pairs,
    unmatched old offsets, unmatched new offsets).
    """
    old_tags = [
        node.tag if isinstance(node, ElementNode) else "\x00text"
        for node in old_nodes
    ]
    new_tags = [
        node.tag if isinstance(node, ElementNode) else "\x00text"
        for node in new_nodes
    ]
    pairs = _lcs_pairs(old_tags, new_tags)
    matched_old = {i for i, _ in pairs}
    matched_new = {j for _, j in pairs}
    unmatched_old = [i for i in range(len(old_nodes)) if i not in matched_old]
    unmatched_new = [j for j in range(len(new_nodes)) if j not in matched_new]
    return pairs, unmatched_old, unmatched_new


def _propagate_xids(old: Node, new: Node) -> None:
    """Copy XIDs across two structurally identical subtrees."""
    old_walk = old.preorder()
    new_walk = new.preorder()
    for old_node, new_node in zip(old_walk, new_walk):
        new_node.xid = old_node.xid


def _lcs_pairs(left: Sequence, right: Sequence) -> List[Tuple[int, int]]:
    """Longest-common-subsequence index pairs between two sequences.

    Falls back to greedy in-order matching when the DP table would exceed
    :data:`_LCS_CELL_LIMIT` cells.
    """
    n, m = len(left), len(right)
    if n == 0 or m == 0:
        return []
    if n * m > _LCS_CELL_LIMIT:
        return _greedy_pairs(left, right)
    # Classic DP, single pass, then backtrack.
    lengths = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        row = lengths[i]
        below = lengths[i + 1]
        for j in range(m - 1, -1, -1):
            if left[i] == right[j]:
                row[j] = below[j + 1] + 1
            else:
                row[j] = below[j] if below[j] >= row[j + 1] else row[j + 1]
    pairs: List[Tuple[int, int]] = []
    i = j = 0
    while i < n and j < m:
        if left[i] == right[j]:
            pairs.append((i, j))
            i += 1
            j += 1
        elif lengths[i + 1][j] >= lengths[i][j + 1]:
            i += 1
        else:
            j += 1
    return pairs


def _greedy_pairs(left: Sequence, right: Sequence) -> List[Tuple[int, int]]:
    """Order-preserving greedy matching (used above the LCS size limit)."""
    pairs: List[Tuple[int, int]] = []
    j = 0
    for i, item in enumerate(left):
        k = j
        while k < len(right):
            if right[k] == item:
                pairs.append((i, k))
                j = k + 1
                break
            k += 1
    return pairs
