"""Hand-written XML tokenizer.

The substrate must parse the XML pages the simulated crawler fetches.  We
implement the subset of XML 1.0 that web documents of the paper's era (and
our synthetic generator) use:

* element tags with attributes (single- or double-quoted),
* character data with the five predefined entities plus numeric references,
* comments, processing instructions and CDATA sections (skipped / folded),
* an optional ``<!DOCTYPE name SYSTEM "url">`` declaration.

Namespaces are treated lexically (a tag may contain ``:``).  The tokenizer
is a generator of :class:`Token` objects consumed by ``repro.xmlstore.parser``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from ..errors import XMLSyntaxError

#: Token kinds produced by :func:`tokenize`.
START_TAG = "start"          # value = (tag, attrs, self_closing)
END_TAG = "end"              # value = tag
TEXT = "text"                # value = character data (entity-decoded)
DOCTYPE = "doctype"          # value = (name, system_url or None)

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}


@dataclass
class Token:
    kind: str
    value: object
    line: int
    column: int


class _Cursor:
    """Tracks position in the source string with line/column accounting."""

    __slots__ = ("text", "pos", "line", "column")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    def advance(self, count: int = 1) -> str:
        chunk = self.text[self.pos : self.pos + count]
        newlines = chunk.count("\n")
        if newlines:
            self.line += newlines
            self.column = len(chunk) - chunk.rfind("\n")
        else:
            self.column += len(chunk)
        self.pos += count
        return chunk

    def find(self, needle: str) -> int:
        return self.text.find(needle, self.pos)

    def error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, self.line, self.column)


def decode_entities(text: str, cursor: Optional[_Cursor] = None) -> str:
    """Replace predefined and numeric entity references in ``text``."""
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise XMLSyntaxError(
                "unterminated entity reference",
                cursor.line if cursor else 0,
                cursor.column if cursor else 0,
            )
        name = text[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _PREDEFINED_ENTITIES:
            out.append(_PREDEFINED_ENTITIES[name])
        else:
            raise XMLSyntaxError(
                f"unknown entity &{name};",
                cursor.line if cursor else 0,
                cursor.column if cursor else 0,
            )
        i = end + 1
    return "".join(out)


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in "_:"


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_:.-"


_NAME_RE = re.compile(r"[A-Za-z_:À-￿][\w:.\-]*")
_WS_RE = re.compile(r"[ \t\r\n]+")


def _read_name(cur: _Cursor) -> str:
    match = _NAME_RE.match(cur.text, cur.pos)
    if match is None:
        raise cur.error(f"expected a name, found {cur.peek()!r}")
    cur.advance(match.end() - cur.pos)
    return match.group()


def _skip_whitespace(cur: _Cursor) -> None:
    match = _WS_RE.match(cur.text, cur.pos)
    if match is not None:
        cur.advance(match.end() - cur.pos)


def _read_quoted(cur: _Cursor) -> str:
    quote = cur.peek()
    if quote not in "\"'":
        raise cur.error("expected a quoted value")
    cur.advance()
    end = cur.find(quote)
    if end == -1:
        raise cur.error("unterminated quoted value")
    raw = cur.text[cur.pos : end]
    cur.advance(end - cur.pos + 1)
    return decode_entities(raw, cur)


def _read_attributes(cur: _Cursor) -> Dict[str, str]:
    attrs: Dict[str, str] = {}
    while True:
        _skip_whitespace(cur)
        if cur.eof() or cur.peek() in "/>":
            return attrs
        name = _read_name(cur)
        _skip_whitespace(cur)
        if cur.peek() != "=":
            raise cur.error(f"attribute {name!r} missing '='")
        cur.advance()
        _skip_whitespace(cur)
        value = _read_quoted(cur)
        if name in attrs:
            raise cur.error(f"duplicate attribute {name!r}")
        attrs[name] = value


def _read_doctype(cur: _Cursor) -> Tuple[str, Optional[str]]:
    # cur is positioned right after "<!DOCTYPE".
    _skip_whitespace(cur)
    name = _read_name(cur)
    _skip_whitespace(cur)
    system_url: Optional[str] = None
    if cur.startswith("SYSTEM"):
        cur.advance(len("SYSTEM"))
        _skip_whitespace(cur)
        system_url = _read_quoted(cur)
    elif cur.startswith("PUBLIC"):
        cur.advance(len("PUBLIC"))
        _skip_whitespace(cur)
        _read_quoted(cur)  # public id, ignored
        _skip_whitespace(cur)
        system_url = _read_quoted(cur)
    _skip_whitespace(cur)
    # Skip an internal subset if present.
    if cur.peek() == "[":
        end = cur.find("]")
        if end == -1:
            raise cur.error("unterminated DOCTYPE internal subset")
        cur.advance(end - cur.pos + 1)
        _skip_whitespace(cur)
    if cur.peek() != ">":
        raise cur.error("malformed DOCTYPE declaration")
    cur.advance()
    return name, system_url


def tokenize(source: str) -> Iterator[Token]:
    """Yield :class:`Token` objects for ``source``.

    Raises :class:`~repro.errors.XMLSyntaxError` on lexically malformed
    input.  Well-formedness across tokens (balanced tags) is checked by the
    parser, not here.
    """
    cur = _Cursor(source)
    while not cur.eof():
        line, column = cur.line, cur.column
        if cur.peek() != "<":
            end = cur.find("<")
            if end == -1:
                end = len(cur.text)
            raw = cur.text[cur.pos : end]
            cur.advance(end - cur.pos)
            yield Token(TEXT, decode_entities(raw, cur), line, column)
            continue

        if cur.startswith("<!--"):
            end = cur.find("-->")
            if end == -1:
                raise cur.error("unterminated comment")
            cur.advance(end - cur.pos + 3)
            continue
        if cur.startswith("<![CDATA["):
            end = cur.find("]]>")
            if end == -1:
                raise cur.error("unterminated CDATA section")
            data = cur.text[cur.pos + 9 : end]
            cur.advance(end - cur.pos + 3)
            yield Token(TEXT, data, line, column)
            continue
        if cur.startswith("<?"):
            end = cur.find("?>")
            if end == -1:
                raise cur.error("unterminated processing instruction")
            cur.advance(end - cur.pos + 2)
            continue
        if cur.startswith("<!DOCTYPE"):
            cur.advance(len("<!DOCTYPE"))
            name, system_url = _read_doctype(cur)
            yield Token(DOCTYPE, (name, system_url), line, column)
            continue
        if cur.startswith("<!"):
            raise cur.error("unsupported markup declaration")
        if cur.startswith("</"):
            cur.advance(2)
            name = _read_name(cur)
            _skip_whitespace(cur)
            if cur.peek() != ">":
                raise cur.error(f"malformed end tag </{name}")
            cur.advance()
            yield Token(END_TAG, name, line, column)
            continue

        # Start tag.
        cur.advance()  # consume '<'
        name = _read_name(cur)
        attrs = _read_attributes(cur)
        self_closing = False
        if cur.peek() == "/":
            self_closing = True
            cur.advance()
        if cur.peek() != ">":
            raise cur.error(f"malformed start tag <{name}")
        cur.advance()
        yield Token(START_TAG, (name, attrs, self_closing), line, column)
