"""XML parser: token stream -> :class:`~repro.xmlstore.nodes.Document`.

Checks well-formedness (single root, balanced tags) and folds adjacent text
tokens.  Whitespace-only text between elements is dropped by default because
the alerter word tables and the diff matcher operate on meaningful data
nodes; pass ``keep_whitespace=True`` to preserve it.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import XMLSyntaxError
from . import tokenizer
from .nodes import Document, ElementNode, TextNode


def parse(source: str, keep_whitespace: bool = False) -> Document:
    """Parse an XML string into a :class:`Document`.

    >>> doc = parse('<catalog><product>camera</product></catalog>')
    >>> doc.root.tag
    'catalog'
    >>> doc.root.children[0].text_content()
    'camera'
    """
    root: Optional[ElementNode] = None
    doctype_name: Optional[str] = None
    dtd_url: Optional[str] = None
    stack: List[ElementNode] = []
    pending_text: List[str] = []
    pending_pos = (0, 0)

    def flush_text() -> None:
        nonlocal pending_text
        if not pending_text:
            return
        data = "".join(pending_text)
        pending_text = []
        if not keep_whitespace and not data.strip():
            return
        if not stack:
            if data.strip():
                raise XMLSyntaxError(
                    "character data outside the root element",
                    pending_pos[0],
                    pending_pos[1],
                )
            return
        stack[-1].append(TextNode(data))

    for token in tokenizer.tokenize(source):
        if token.kind == tokenizer.TEXT:
            if not pending_text:
                pending_pos = (token.line, token.column)
            pending_text.append(token.value)  # type: ignore[arg-type]
            continue
        flush_text()
        if token.kind == tokenizer.DOCTYPE:
            if root is not None or stack:
                raise XMLSyntaxError(
                    "DOCTYPE after the root element", token.line, token.column
                )
            doctype_name, dtd_url = token.value  # type: ignore[misc]
            continue
        if token.kind == tokenizer.START_TAG:
            tag, attrs, self_closing = token.value  # type: ignore[misc]
            element = ElementNode(tag, attrs)
            if stack:
                stack[-1].append(element)
            elif root is None:
                root = element
            else:
                raise XMLSyntaxError(
                    f"second root element <{tag}>", token.line, token.column
                )
            if not self_closing:
                stack.append(element)
            continue
        if token.kind == tokenizer.END_TAG:
            tag = token.value
            if not stack:
                raise XMLSyntaxError(
                    f"unexpected end tag </{tag}>", token.line, token.column
                )
            open_element = stack.pop()
            if open_element.tag != tag:
                raise XMLSyntaxError(
                    f"end tag </{tag}> does not match <{open_element.tag}>",
                    token.line,
                    token.column,
                )
            continue
        raise XMLSyntaxError(
            f"unexpected token kind {token.kind}", token.line, token.column
        )

    flush_text()
    if stack:
        raise XMLSyntaxError(f"unclosed element <{stack[-1].tag}>")
    if root is None:
        raise XMLSyntaxError("document has no root element")
    return Document(root, doctype_name=doctype_name, dtd_url=dtd_url)
