"""Word extraction shared by the XML alerter, indexes and cost controller.

The ``contains`` atomic condition of the subscription language matches a
*word* inside element text (Section 5.1 and 6.3).  Everything that needs to
agree on what a "word" is (the alerter's WordTable, the repository's word
index, the stop-word cost control of Section 5.4) goes through this module.
"""

from __future__ import annotations

import re
from typing import Iterator, List

#: Words the cost controller refuses in ``contains`` conditions (Section 5.4:
#: "prevent the use of contains conditions on too common a word such as
#: 'the'").  Deliberately small; the controller also accepts a custom list.
DEFAULT_STOP_WORDS = frozenset(
    """a an and are as at be by for from has he in is it its of on or that
    the to was were will with this you your they we not all can had her his
    more if but out up so what who when where which there their them then
    than these those been being have do does did no yes""".split()
)


def normalize_word(word: str) -> str:
    """Canonical form used for all word comparisons: casefolded."""
    return word.casefold()


#: A word: a maximal alphanumeric run, possibly continued by ``-``/``'``
#: followed by more alphanumerics (so ``hi-fi`` stays one word, as in the
#: paper's ``category = "hi-fi"`` example).
_WORD_RE = re.compile(r"[^\W_]+(?:['\-]+[^\W_]+)*", re.UNICODE)


def iter_words(text: str) -> Iterator[str]:
    """Yield normalized words from ``text``."""
    for match in _WORD_RE.finditer(text):
        yield normalize_word(match.group())


def extract_words(text: str) -> List[str]:
    """List of normalized words, in order, duplicates preserved."""
    return [w for w in iter_words(text) if w]


def unique_words(text: str) -> set:
    """Set of distinct normalized words in ``text``."""
    return {w for w in iter_words(text) if w}
