"""XML serializer: node tree -> string.

Round-trips with ``repro.xmlstore.parser`` (modulo insignificant whitespace
when ``indent`` is used).  Reports, deltas and archived documents are all
emitted through this module.
"""

from __future__ import annotations

from typing import List, Union

from .nodes import Document, ElementNode, Node, TextNode

_TEXT_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ATTR_ESCAPES = _TEXT_ESCAPES + [('"', "&quot;")]


def escape_text(data: str) -> str:
    for raw, escaped in _TEXT_ESCAPES:
        data = data.replace(raw, escaped)
    return data


def escape_attribute(data: str) -> str:
    for raw, escaped in _ATTR_ESCAPES:
        data = data.replace(raw, escaped)
    return data


def serialize(
    node: Union[Document, Node], indent: int = 0, xml_declaration: bool = False
) -> str:
    """Serialize a document or subtree to an XML string.

    ``indent=0`` produces compact output that parses back to an identical
    tree; ``indent>0`` pretty-prints (adding whitespace-only text nodes that
    the default parser drops again).
    """
    parts: List[str] = []
    if xml_declaration:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>')
        if indent:
            parts.append("\n")
    if isinstance(node, Document):
        if node.dtd_url is not None:
            parts.append(
                f'<!DOCTYPE {node.doctype_name or node.root.tag} '
                f'SYSTEM "{node.dtd_url}">'
            )
            if indent:
                parts.append("\n")
        root: Node = node.root
    else:
        root = node
    _serialize_node(root, parts, indent, 0)
    return "".join(parts)


def _serialize_node(
    node: Node, parts: List[str], indent: int, depth: int
) -> None:
    pad = " " * (indent * depth) if indent else ""
    newline = "\n" if indent else ""
    if isinstance(node, TextNode):
        parts.append(f"{pad}{escape_text(node.data)}{newline}")
        return
    assert isinstance(node, ElementNode)
    attrs = "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in node.attributes.items()
    )
    if not node.children:
        parts.append(f"{pad}<{node.tag}{attrs}/>{newline}")
        return
    only_text = all(isinstance(c, TextNode) for c in node.children)
    if only_text:
        text = "".join(escape_text(c.data) for c in node.children)  # type: ignore[attr-defined]
        parts.append(f"{pad}<{node.tag}{attrs}>{text}</{node.tag}>{newline}")
        return
    parts.append(f"{pad}<{node.tag}{attrs}>{newline}")
    for child in node.children:
        _serialize_node(child, parts, indent, depth + 1)
    parts.append(f"{pad}</{node.tag}>{newline}")
