"""Tree node model for the XML substrate.

The XML Alerter of the paper (Section 6.3) is defined over a DOM-like tree:
for each node ``n`` it considers the pair ``(level(n), content(n))`` where
``content`` is the tag for element nodes and the text for data nodes, and it
consumes the nodes in *postorder*.  This module provides exactly that model:

* :class:`ElementNode` — tag, attributes, ordered children.
* :class:`TextNode` — character data.
* ``level`` — depth of a node (root at level 0).
* :meth:`Node.postorder` / :meth:`Node.preorder` — traversals.

Nodes also carry an optional ``xid`` (Xyleme persistent identifier, see
``repro.diff.xids``) used by the versioning subsystem to express deltas.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional


class Node:
    """Common behaviour of element and text nodes."""

    __slots__ = ("parent", "xid")

    def __init__(self):
        self.parent: Optional["ElementNode"] = None
        #: Persistent Xyleme identifier, assigned by ``repro.diff.xids``.
        self.xid: Optional[int] = None

    # -- structure -------------------------------------------------------

    @property
    def level(self) -> int:
        """Depth of the node; the document root element has level 0."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def root(self) -> "Node":
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def ancestors(self) -> Iterator["ElementNode"]:
        """Yield parent, grandparent, ... up to (and including) the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def sibling_index(self) -> int:
        """Position of this node among its parent's children (0-based)."""
        if self.parent is None:
            return 0
        return self.parent.children.index(self)

    # -- traversals -------------------------------------------------------

    def preorder(self) -> Iterator["Node"]:
        """Document-order traversal (node before its children)."""
        stack: List[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, ElementNode):
                stack.extend(reversed(node.children))

    def postorder(self) -> Iterator["Node"]:
        """Postorder traversal (children before the node).

        This is the order the XML Alerter consumes: when a node is emitted,
        every word in its subtree has already been seen, which is what makes
        the stack-of-word-lists structure of Section 6.3 work.
        """
        # Iterative postorder: (node, expanded?) pairs.
        stack: List[tuple[Node, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded or not isinstance(node, ElementNode):
                yield node
                continue
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))

    # -- content ----------------------------------------------------------

    def text_content(self) -> str:
        """Concatenated character data of the subtree, in document order."""
        parts = [
            node.data for node in self.preorder() if isinstance(node, TextNode)
        ]
        return "".join(parts)

    def detach(self) -> "Node":
        """Remove this node from its parent (no-op for a root). Returns self."""
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        return self


class ElementNode(Node):
    """An XML element: tag, attribute map, ordered list of children."""

    __slots__ = ("tag", "attributes", "children")

    def __init__(self, tag: str, attributes: Optional[Dict[str, str]] = None):
        super().__init__()
        self.tag = tag
        self.attributes: Dict[str, str] = dict(attributes or {})
        self.children: List[Node] = []

    def __repr__(self) -> str:
        return f"<ElementNode {self.tag!r} children={len(self.children)}>"

    # -- mutation ----------------------------------------------------------

    def append(self, child: Node) -> Node:
        """Add ``child`` as the last child and return it."""
        child.detach()
        child.parent = self
        self.children.append(child)
        return child

    def insert(self, index: int, child: Node) -> Node:
        """Insert ``child`` at ``index`` among the children and return it."""
        child.detach()
        child.parent = self
        self.children.insert(index, child)
        return child

    def append_text(self, data: str) -> "TextNode":
        """Convenience: append a text child."""
        node = TextNode(data)
        self.append(node)
        return node

    def make_child(
        self, tag: str, text: Optional[str] = None, **attributes: str
    ) -> "ElementNode":
        """Convenience builder: append ``<tag attributes>text</tag>``."""
        child = ElementNode(tag, attributes)
        if text is not None:
            child.append_text(text)
        self.append(child)
        return child

    # -- queries -----------------------------------------------------------

    def element_children(self) -> List["ElementNode"]:
        return [c for c in self.children if isinstance(c, ElementNode)]

    def find_all(self, tag: str) -> Iterator["ElementNode"]:
        """Yield all descendant elements (including self) with ``tag``."""
        for node in self.preorder():
            if isinstance(node, ElementNode) and node.tag == tag:
                yield node

    def first(self, tag: str) -> Optional["ElementNode"]:
        """First descendant element with ``tag`` in document order."""
        return next(self.find_all(tag), None)

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Attribute lookup, mirroring ``dict.get``."""
        return self.attributes.get(name, default)

    # -- size metrics (used by alerter benchmarks) ---------------------------

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here (including self)."""
        return sum(1 for _ in self.preorder())

    def max_depth(self) -> int:
        """Depth of the deepest descendant relative to this node."""
        own_level = self.level
        return max(node.level - own_level for node in self.preorder())


class TextNode(Node):
    """Character data."""

    __slots__ = ("data",)

    def __init__(self, data: str):
        super().__init__()
        self.data = data

    def __repr__(self) -> str:
        preview = self.data if len(self.data) <= 30 else self.data[:27] + "..."
        return f"<TextNode {preview!r}>"


class Document:
    """A parsed XML document: prolog-free wrapper around the root element.

    Keeps the doctype name / system id when a ``<!DOCTYPE ...>`` declaration
    was present, because several atomic conditions of the subscription
    language (``DTD = string``, ``DTDID = integer``) key on it.
    """

    __slots__ = ("root", "doctype_name", "dtd_url")

    def __init__(
        self,
        root: ElementNode,
        doctype_name: Optional[str] = None,
        dtd_url: Optional[str] = None,
    ):
        self.root = root
        self.doctype_name = doctype_name
        self.dtd_url = dtd_url

    def __repr__(self) -> str:
        return f"<Document root={self.root.tag!r} dtd={self.dtd_url!r}>"

    def postorder(self) -> Iterator[Node]:
        return self.root.postorder()

    def preorder(self) -> Iterator[Node]:
        return self.root.preorder()

    def size(self) -> int:
        return self.root.subtree_size()

    def depth(self) -> int:
        return self.root.max_depth()
