"""XML substrate: tokenizer, parser, node model, serializer, paths, words.

This package replaces the C++ DOM / libxml layer of the original Xyleme
system.  Public surface:

* :func:`parse` / :func:`serialize` — string <-> tree.
* :class:`Document`, :class:`ElementNode`, :class:`TextNode` — node model
  with levels and postorder traversal (the shape the XML Alerter needs).
* :func:`parse_path` — small path-expression language used by the query
  engine.
* :func:`extract_words` and friends — the shared definition of a "word" for
  ``contains`` conditions.
* :class:`DTDRegistry` — DTD URL <-> id interning with domain assignment.
"""

from .dtd import DTDRegistry
from .nodes import Document, ElementNode, Node, TextNode
from .parser import parse
from .paths import PathExpression, parse_path
from .serializer import serialize
from .words import (
    DEFAULT_STOP_WORDS,
    extract_words,
    iter_words,
    normalize_word,
    unique_words,
)

__all__ = [
    "DTDRegistry",
    "Document",
    "ElementNode",
    "Node",
    "TextNode",
    "parse",
    "PathExpression",
    "parse_path",
    "serialize",
    "DEFAULT_STOP_WORDS",
    "extract_words",
    "iter_words",
    "normalize_word",
    "unique_words",
]
