"""Path expressions over the node tree.

The paper's query examples use simple path syntax: ``culture/museum m``,
``m/painting p``, ``self//Member X``.  We support:

* ``tag`` steps separated by ``/`` (child axis) or ``//`` (descendant axis),
* a leading ``self`` (the context node) or a leading ``//`` (any descendant
  of the context node),
* ``*`` as a wildcard tag,
* a trailing ``@attr`` step selecting an attribute value.

:func:`parse_path` compiles the expression once; :meth:`PathExpression.select`
evaluates it against an element, yielding matching nodes (or strings for
attribute steps) in document order without duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

from ..errors import PathSyntaxError
from .nodes import ElementNode

CHILD = "child"
DESCENDANT = "descendant"


@dataclass(frozen=True)
class Step:
    axis: str  # CHILD or DESCENDANT
    tag: str   # element tag or "*"


@dataclass(frozen=True)
class PathExpression:
    """A compiled path: steps plus an optional final attribute selector."""

    steps: tuple
    attribute: Optional[str] = None
    #: Whether the path started with ``self`` (purely informational; ``self``
    #: only anchors the path at the context node, which select() does anyway).
    from_self: bool = False

    def select(self, context: ElementNode) -> Iterator[Union[ElementNode, str]]:
        """Yield matches of the path evaluated from ``context``."""
        current: List[ElementNode] = [context]
        for step in self.steps:
            seen: set[int] = set()
            next_nodes: List[ElementNode] = []
            for node in current:
                candidates: Iterator[ElementNode]
                if step.axis == CHILD:
                    candidates = iter(node.element_children())
                else:
                    candidates = (
                        descendant
                        for descendant in node.preorder()
                        if isinstance(descendant, ElementNode)
                    )
                for candidate in candidates:
                    if step.axis == DESCENDANT and candidate is node:
                        continue
                    if step.tag != "*" and candidate.tag != step.tag:
                        continue
                    if id(candidate) in seen:
                        continue
                    seen.add(id(candidate))
                    next_nodes.append(candidate)
            current = next_nodes
        if self.attribute is None:
            yield from current
        else:
            for node in current:
                value = node.attributes.get(self.attribute)
                if value is not None:
                    yield value

    def first(self, context: ElementNode) -> Optional[Union[ElementNode, str]]:
        return next(self.select(context), None)


def parse_path(expression: str) -> PathExpression:
    """Compile a path expression string.

    >>> path = parse_path('museum/painting')
    >>> path.steps[0].tag
    'museum'
    """
    text = expression.strip()
    if not text:
        raise PathSyntaxError("empty path expression")

    attribute: Optional[str] = None
    if "@" in text:
        text, _, attr = text.rpartition("@")
        attribute = attr.strip()
        if not attribute:
            raise PathSyntaxError(f"empty attribute name in {expression!r}")
        text = text.rstrip("/") if text.endswith("//") is False else text
        if text.endswith("/"):
            text = text[:-1]
        if not text:
            raise PathSyntaxError(
                f"attribute step must follow an element step: {expression!r}"
            )

    from_self = False
    axis = CHILD
    if text == "self":
        if attribute is None:
            raise PathSyntaxError("'self' alone selects nothing; add a step")
        return PathExpression(steps=(), attribute=attribute, from_self=True)
    if text.startswith("self//"):
        from_self = True
        axis = DESCENDANT
        text = text[len("self//"):]
    elif text.startswith("self/"):
        from_self = True
        text = text[len("self/"):]
    elif text.startswith("//"):
        axis = DESCENDANT
        text = text[2:]
    elif text.startswith("/"):
        text = text[1:]

    steps: List[Step] = []
    i = 0
    token = ""
    pending_axis = axis
    while i <= len(text):
        ch = text[i] if i < len(text) else "/"
        if ch == "/":
            if token:
                steps.append(Step(pending_axis, token))
                token = ""
                pending_axis = CHILD
            elif i < len(text):
                # two consecutive slashes -> descendant axis for next step
                if pending_axis == DESCENDANT:
                    raise PathSyntaxError(
                        f"malformed path (///): {expression!r}"
                    )
                pending_axis = DESCENDANT
            i += 1
            continue
        if not (ch.isalnum() or ch in "_:.-*"):
            raise PathSyntaxError(
                f"invalid character {ch!r} in path {expression!r}"
            )
        token += ch
        i += 1

    if not steps and attribute is None:
        raise PathSyntaxError(f"path selects nothing: {expression!r}")
    return PathExpression(
        steps=tuple(steps), attribute=attribute, from_self=from_self
    )
