"""DTD registry.

Xyleme classifies documents by DTD: the subscription language has both
``DTD = string`` (the DTD URL) and ``DTDID = integer`` (the warehouse's
internal identifier) conditions, and the semantic module clusters DTDs into
domains.  This registry is the single source of DTD ids and the DTD->domain
assignment used by ``repro.repository.semantics``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..ids import SequentialIdAllocator


class DTDRegistry:
    """Interns DTD URLs to dense integer ids and tracks their domains."""

    def __init__(self):
        self._id_of: Dict[str, int] = {}
        self._url_of: Dict[int, str] = {}
        self._domain_of: Dict[int, Optional[str]] = {}
        self._allocator = SequentialIdAllocator(start=1)

    def __len__(self) -> int:
        return len(self._id_of)

    def __contains__(self, url: str) -> bool:
        return url in self._id_of

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_of)

    def register(self, url: str, domain: Optional[str] = None) -> int:
        """Return the id for ``url``, creating it on first sight.

        When ``domain`` is given it (re)assigns the DTD to that semantic
        domain; registration without a domain never clears an assignment.
        """
        dtd_id = self._id_of.get(url)
        if dtd_id is None:
            dtd_id = self._allocator.allocate()
            self._id_of[url] = dtd_id
            self._url_of[dtd_id] = url
            self._domain_of[dtd_id] = None
        if domain is not None:
            self._domain_of[dtd_id] = domain
        return dtd_id

    def id_for(self, url: str) -> Optional[int]:
        return self._id_of.get(url)

    def url_for(self, dtd_id: int) -> Optional[str]:
        return self._url_of.get(dtd_id)

    def domain_for(self, url: str) -> Optional[str]:
        dtd_id = self._id_of.get(url)
        if dtd_id is None:
            return None
        return self._domain_of.get(dtd_id)

    def dtds_in_domain(self, domain: str) -> Iterator[str]:
        for dtd_id, assigned in self._domain_of.items():
            if assigned == domain:
                yield self._url_of[dtd_id]
