"""Warehouse query language — the Xyleme query processor substitute [2].

Continuous queries (Section 5.2) and report queries (Section 5.3) are
expressed in this language::

    select p/title
    from culture/museum m, m/painting p
    where m/address contains "Amsterdam"
"""

from .ast import Condition, FromClause, Query, SelectItem
from .engine import QueryEngine, QueryResult
from .parser import parse_query

__all__ = [
    "Condition",
    "FromClause",
    "Query",
    "SelectItem",
    "QueryEngine",
    "QueryResult",
    "parse_query",
]
