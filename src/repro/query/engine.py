"""Query evaluation over the warehouse or a standalone document.

Nested-loop evaluation of the ``from`` clauses with early filtering by the
``where`` conjunction.  Results are XML elements — the shape the Trigger
Engine versions (``continuous delta``) and the Reporter post-processes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

from ..errors import QueryError
from ..repository.store import Repository
from ..xmlstore.nodes import Document, ElementNode, TextNode
from ..xmlstore.paths import PathExpression
from ..xmlstore.serializer import serialize
from ..xmlstore.words import normalize_word, unique_words
from .ast import (
    Condition,
    FromClause,
    OP_CONTAINS,
    OP_EQ,
    OP_GE,
    OP_GT,
    OP_LE,
    OP_LT,
    OP_NE,
    OP_STRICT_CONTAINS,
    Query,
    SelectItem,
    SOURCE_ALL,
    SOURCE_DOCUMENT,
    SOURCE_DOMAIN,
    SOURCE_VARIABLE,
)
from .parser import parse_query, resolve_sources

Binding = Dict[str, ElementNode]


class QueryResult:
    """Ordered list of result items (elements or attribute strings)."""

    def __init__(self, items: List[Union[ElementNode, str]], name: str):
        self.items = items
        self.name = name

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def to_element(self) -> ElementNode:
        """Wrap the items in ``<name>...</name>`` (copies the elements)."""
        wrapper = ElementNode(self.name)
        for item in self.items:
            if isinstance(item, str):
                wrapper.make_child("value", text=item)
            else:
                wrapper.append(_copy_element(item))
        return wrapper

    def to_document(self) -> Document:
        return Document(self.to_element())

    def to_xml(self) -> str:
        return serialize(self.to_element())


def _copy_element(node: ElementNode) -> ElementNode:
    copy = ElementNode(node.tag, dict(node.attributes))
    for child in node.children:
        if isinstance(child, TextNode):
            copy.append_text(child.data)
        else:
            assert isinstance(child, ElementNode)
            copy.append(_copy_element(child))
    return copy


class QueryEngine:
    """Evaluates parsed (or textual) queries against a repository."""

    def __init__(self, repository: Repository):
        self.repository = repository

    # -- public API ------------------------------------------------------------

    def evaluate(
        self, query: Union[str, Query], name: Optional[str] = None
    ) -> QueryResult:
        if isinstance(query, str):
            query = parse_query(query, name=name)
        query = resolve_sources(query, None)
        result_name = name or query.name or "result"
        items: List[Union[ElementNode, str]] = []
        for binding in self._bindings(query):
            if all(self._holds(c, binding) for c in query.conditions):
                for item in query.select_items:
                    items.extend(self._select(item, binding))
        return QueryResult(items, result_name)

    def evaluate_on_document(
        self,
        query: Union[str, Query],
        document: Document,
        name: Optional[str] = None,
    ) -> QueryResult:
        """Evaluate with every root source bound to ``document`` instead of
        the warehouse — used by the Reporter's report queries, which run over
        the notification document."""
        if isinstance(query, str):
            query = parse_query(query, name=name)
        query = resolve_sources(query, None)
        result_name = name or query.name or "result"
        items: List[Union[ElementNode, str]] = []
        for binding in self._bindings(query, override_document=document):
            if all(self._holds(c, binding) for c in query.conditions):
                for item in query.select_items:
                    items.extend(self._select(item, binding))
        return QueryResult(items, result_name)

    # -- binding generation ------------------------------------------------------

    def _bindings(
        self, query: Query, override_document: Optional[Document] = None
    ) -> Iterator[Binding]:
        def extend(
            clause_index: int, binding: Binding
        ) -> Iterator[Binding]:
            if clause_index == len(query.from_clauses):
                yield dict(binding)
                return
            clause = query.from_clauses[clause_index]
            for node in self._clause_nodes(clause, binding, override_document):
                binding[clause.variable] = node
                yield from extend(clause_index + 1, binding)
            binding.pop(clause.variable, None)

        yield from extend(0, {})

    def _clause_nodes(
        self,
        clause: FromClause,
        binding: Binding,
        override_document: Optional[Document],
    ) -> Iterator[ElementNode]:
        if clause.source_kind == SOURCE_VARIABLE:
            context = binding.get(clause.source_name or "")
            if context is None:
                raise QueryError(
                    f"unbound variable {clause.source_name!r} in from clause"
                )
            yield from self._apply_path(clause, context)
            return
        for root in self._source_roots(clause, override_document):
            yield from self._apply_source_path(clause, root)

    def _source_roots(
        self, clause: FromClause, override_document: Optional[Document]
    ) -> Iterator[ElementNode]:
        if override_document is not None:
            yield override_document.root
            return
        if clause.source_kind == SOURCE_DOCUMENT:
            assert clause.source_name is not None
            yield self.repository.document_for_url(clause.source_name).root
            return
        if clause.source_kind == SOURCE_ALL:
            for doc_id in self.repository.xml_doc_ids():
                yield self.repository.document(doc_id).root
            return
        if clause.source_kind == SOURCE_DOMAIN:
            assert clause.source_name is not None
            doc_ids = self.repository.indexes.documents_in_domain(
                clause.source_name
            )
            if not doc_ids:
                # An unknown domain yields nothing rather than erroring:
                # continuous queries keep running while the warehouse grows.
                return
            for doc_id in sorted(doc_ids):
                yield self.repository.document(doc_id).root
            return
        raise QueryError(f"unknown source kind {clause.source_kind!r}")

    def _apply_path(
        self, clause: FromClause, context: ElementNode
    ) -> Iterator[ElementNode]:
        if clause.path is None:
            yield context
            return
        for match in clause.path.select(context):
            if isinstance(match, ElementNode):
                yield match
            else:
                raise QueryError(
                    "from clauses must bind elements, not attributes"
                )

    def _apply_source_path(
        self, clause: FromClause, root: ElementNode
    ) -> Iterator[ElementNode]:
        """Like :meth:`_apply_path` but for document/domain sources.

        The first path step may match the document root itself: in
        ``from culture/museum m`` the museum documents of the domain have
        ``<museum>`` as their root element, so the step must accept the root
        as well as root children.
        """
        path = clause.path
        if path is None:
            yield root
            return
        if path.attribute is not None:
            raise QueryError(
                "from clauses must bind elements, not attributes"
            )
        seen: set = set()
        for match in path.select(root):
            if isinstance(match, ElementNode) and id(match) not in seen:
                seen.add(id(match))
                yield match
        if path.steps and path.steps[0].tag in (root.tag, "*"):
            rest = PathExpression(
                steps=path.steps[1:], attribute=path.attribute
            )
            if rest.steps or rest.attribute is not None:
                for match in rest.select(root):
                    if isinstance(match, ElementNode) and id(match) not in seen:
                        seen.add(id(match))
                        yield match
            elif id(root) not in seen:
                seen.add(id(root))
                yield root

    # -- conditions ---------------------------------------------------------------

    def _holds(self, condition: Condition, binding: Binding) -> bool:
        node = binding.get(condition.variable)
        if node is None:
            raise QueryError(f"unbound variable {condition.variable!r}")
        targets: List[Union[ElementNode, str]]
        if condition.path is None:
            targets = [node]
        else:
            targets = list(condition.path.select(node))
        for target in targets:
            if self._target_satisfies(condition, target):
                return True
        return False

    def _target_satisfies(
        self, condition: Condition, target: Union[ElementNode, str]
    ) -> bool:
        if condition.op == OP_CONTAINS:
            if isinstance(target, str):
                return normalize_word(condition.literal) in unique_words(target)
            return normalize_word(condition.literal) in _subtree_words(target)
        if condition.op == OP_STRICT_CONTAINS:
            if isinstance(target, str):
                return normalize_word(condition.literal) in unique_words(target)
            return normalize_word(condition.literal) in _direct_words(target)
        value = target if isinstance(target, str) else target.text_content()
        return _compare(value.strip(), condition.op, condition.literal)

    # -- select ---------------------------------------------------------------

    def _select(
        self, item: SelectItem, binding: Binding
    ) -> List[Union[ElementNode, str]]:
        node = binding.get(item.variable)
        if node is None:
            raise QueryError(f"unbound variable {item.variable!r}")
        if item.path is None:
            return [node]
        return list(item.path.select(node))


def _compare(value: str, op: str, literal: str) -> bool:
    left: Union[str, float] = value
    right: Union[str, float] = literal
    try:
        left = float(value)
        right = float(literal)
    except ValueError:
        pass
    if op == OP_EQ:
        return left == right
    if op == OP_NE:
        return left != right
    if op == OP_LT:
        return left < right  # type: ignore[operator]
    if op == OP_LE:
        return left <= right  # type: ignore[operator]
    if op == OP_GT:
        return left > right  # type: ignore[operator]
    if op == OP_GE:
        return left >= right  # type: ignore[operator]
    raise QueryError(f"unknown operator {op!r}")


def _subtree_words(element: ElementNode) -> set:
    """Distinct words of every text node under ``element``.

    Words are collected per text node (never across node boundaries), the
    same definition the alerters and the warehouse index use.
    """
    words: set = set()
    for node in element.preorder():
        if isinstance(node, TextNode):
            words |= unique_words(node.data)
    return words


def _direct_words(element: ElementNode) -> set:
    """Distinct words of the element's direct text children."""
    words: set = set()
    for child in element.children:
        if isinstance(child, TextNode):
            words |= unique_words(child.data)
    return words
