"""AST for the warehouse query language (``repro.query``).

Shape follows the paper's examples (Section 5.2)::

    select p/title
    from culture/museum m, m/painting p
    where m/address contains "Amsterdam"

* ``from`` binds variables by navigating from a *source* — an abstract
  domain (``culture``), a specific document (``doc("url")``), every XML
  document (``*``) — or from a previously bound variable.
* ``where`` is a conjunction of conditions on variable-rooted paths.
* ``select`` lists variable-rooted paths / variables / attribute selections
  whose matches form the result sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..xmlstore.paths import PathExpression

SOURCE_DOMAIN = "domain"
SOURCE_DOCUMENT = "document"
SOURCE_ALL = "all"
SOURCE_VARIABLE = "variable"

OP_CONTAINS = "contains"
OP_STRICT_CONTAINS = "strict contains"
OP_EQ = "="
OP_NE = "!="
OP_LT = "<"
OP_LE = "<="
OP_GT = ">"
OP_GE = ">="

COMPARISON_OPS = (OP_EQ, OP_NE, OP_LT, OP_LE, OP_GT, OP_GE)


@dataclass(frozen=True)
class FromClause:
    """``<source>/<path> <variable>`` — one binding generator."""

    source_kind: str          # one of the SOURCE_* constants
    source_name: Optional[str]  # domain name / document URL / variable name
    path: Optional[PathExpression]  # None binds the root/source node itself
    variable: str


@dataclass(frozen=True)
class Condition:
    """``<variable>(/<path>) <op> <literal>``.

    For ``contains``/``strict contains`` the literal is a word; for
    comparisons it is compared numerically when both sides parse as numbers,
    lexicographically otherwise (on the node's text content).
    """

    variable: str
    path: Optional[PathExpression]
    op: str
    literal: str


@dataclass(frozen=True)
class SelectItem:
    """``<variable>(/<path>)(@attr)`` — one result contributor."""

    variable: str
    path: Optional[PathExpression]


@dataclass(frozen=True)
class Query:
    select_items: Tuple[SelectItem, ...]
    from_clauses: Tuple[FromClause, ...]
    conditions: Tuple[Condition, ...]
    #: Optional result-element name (defaults to "result" at evaluation).
    name: Optional[str] = None
