"""Parser for the warehouse query language.

Grammar (case-insensitive keywords)::

    query      := "select" select_list
                  "from" from_list
                  [ "where" condition ("and" condition)* ]
    select_list := select_item ("," select_item)*
    select_item := IDENT [ "/" path ] [ "@" IDENT ]
    from_list  := from_item ("," from_item)*
    from_item  := source [ "/" path ] IDENT
    source     := IDENT | "*" | "doc" "(" STRING ")"
    condition  := IDENT [ "/" path ] op literal
    op         := "contains" | "strict" "contains" | "=" | "!=" |
                  "<" | "<=" | ">" | ">="
    literal    := STRING | NUMBER

The first ``from`` source not naming a bound variable is a domain / ``*`` /
``doc(url)``; later items usually navigate from variables.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import QueryError
from ..xmlstore.paths import PathExpression, parse_path
from .ast import (
    COMPARISON_OPS,
    Condition,
    FromClause,
    OP_CONTAINS,
    OP_STRICT_CONTAINS,
    Query,
    SelectItem,
    SOURCE_ALL,
    SOURCE_DOCUMENT,
    SOURCE_DOMAIN,
    SOURCE_VARIABLE,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<string>"[^"]*"|'[^']*')
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[(),@*])
  | (?P<slash>//|/)
  | (?P<word>[A-Za-z_][\w:.-]*|\d+(?:\.\d+)?)
  | (?P<space>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QueryError(
                f"unexpected character {text[position]!r} in query"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "space":
            continue
        tokens.append((kind or "", match.group()))
    return tokens


class _TokenStream:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self._tokens = tokens
        self._index = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self._index += 1
        return token

    def accept_word(self, *words: str) -> Optional[str]:
        token = self.peek()
        if token and token[0] == "word" and token[1].lower() in words:
            self._index += 1
            return token[1].lower()
        return None

    def accept_value(self, value: str) -> bool:
        token = self.peek()
        if token and token[1] == value:
            self._index += 1
            return True
        return False

    def expect_word(self, word: str) -> None:
        if not self.accept_word(word):
            found = self.peek()
            raise QueryError(
                f"expected {word!r}, found {found[1] if found else 'end'!r}"
            )

    def expect_value(self, value: str) -> None:
        if not self.accept_value(value):
            found = self.peek()
            raise QueryError(
                f"expected {value!r}, found {found[1] if found else 'end'!r}"
            )

    def at_end(self) -> bool:
        return self.peek() is None


_KEYWORDS = {"select", "from", "where", "and", "contains", "strict", "doc"}


def parse_query(text: str, name: Optional[str] = None) -> Query:
    """Parse a query string into a :class:`~repro.query.ast.Query`."""
    stream = _TokenStream(_tokenize(text))
    stream.expect_word("select")
    select_items = [_parse_select_item(stream)]
    while stream.accept_value(","):
        select_items.append(_parse_select_item(stream))
    stream.expect_word("from")
    from_clauses = [_parse_from_item(stream, first=True)]
    while stream.accept_value(","):
        from_clauses.append(_parse_from_item(stream, first=False))
    conditions: List[Condition] = []
    if stream.accept_word("where"):
        conditions.append(_parse_condition(stream))
        while stream.accept_word("and"):
            conditions.append(_parse_condition(stream))
    if not stream.at_end():
        leftover = stream.peek()
        raise QueryError(f"unexpected token {leftover[1]!r} after query")  # type: ignore[index]

    bound = set()
    for clause in from_clauses:
        # A bare-word source naming no bound variable may be a domain; that
        # ambiguity is resolved by ``resolve_sources`` at evaluation time.
        bound.add(clause.variable)
    for item in select_items:
        if item.variable not in bound:
            raise QueryError(f"select uses unbound variable {item.variable!r}")
    for condition in conditions:
        if condition.variable not in bound:
            raise QueryError(
                f"where uses unbound variable {condition.variable!r}"
            )
    return Query(
        select_items=tuple(select_items),
        from_clauses=tuple(from_clauses),
        conditions=tuple(conditions),
        name=name,
    )


def _parse_raw_path(stream: _TokenStream) -> Tuple[str, Optional[str]]:
    """Consume ``word (("/"|"//") word)* [@word]``; returns (head, rest)."""
    kind, head = stream.next()
    if kind != "word":
        raise QueryError(f"expected a name, found {head!r}")
    parts: List[str] = []
    while True:
        token = stream.peek()
        if token and token[0] == "slash":
            stream.next()
            nxt = stream.peek()
            if nxt is None or nxt[0] not in ("word", "punct"):
                raise QueryError("path ends with '/'")
            if nxt[1] == "*":
                stream.next()
                parts.append(token[1] + "*")
                continue
            if nxt[0] != "word":
                raise QueryError(f"bad path step {nxt[1]!r}")
            stream.next()
            parts.append(token[1] + nxt[1])
            continue
        if token and token[1] == "@":
            stream.next()
            attr_kind, attr = stream.next()
            if attr_kind != "word":
                raise QueryError(f"bad attribute name {attr!r}")
            parts.append("@" + attr)
        break
    rest = "".join(parts) if parts else None
    return head, rest


def _compile_rest(rest: Optional[str]) -> Optional[PathExpression]:
    if rest is None:
        return None
    if rest.startswith("@"):
        # Attribute of the bound node itself, e.g. ``m@url``.
        return PathExpression(steps=(), attribute=rest[1:], from_self=True)
    return parse_path(rest.lstrip("/") if not rest.startswith("//") else rest)


def _parse_select_item(stream: _TokenStream) -> SelectItem:
    head, rest = _parse_raw_path(stream)
    return SelectItem(variable=head, path=_compile_rest(rest))


def _parse_from_item(stream: _TokenStream, first: bool) -> FromClause:
    token = stream.peek()
    if token is None:
        raise QueryError("unexpected end of from clause")
    if token[1] == "*":
        stream.next()
        head: Optional[str] = None
        source_kind = SOURCE_ALL
        rest: Optional[str] = None
        nxt = stream.peek()
        if nxt and nxt[0] == "slash":
            # "*//painting p" style: reuse the raw-path reader via a fake head.
            _, rest = _parse_raw_path_after_star(stream)
        variable = _expect_variable(stream)
        return FromClause(source_kind, head, _compile_rest(rest), variable)
    if token[0] == "word" and token[1].lower() == "doc":
        stream.next()
        stream.expect_value("(")
        kind, literal = stream.next()
        if kind != "string":
            raise QueryError("doc(...) expects a quoted URL")
        stream.expect_value(")")
        rest = None
        nxt = stream.peek()
        if nxt and nxt[0] == "slash":
            _, rest = _parse_raw_path_after_star(stream)
        variable = _expect_variable(stream)
        return FromClause(
            SOURCE_DOCUMENT, literal[1:-1], _compile_rest(rest), variable
        )
    head, rest = _parse_raw_path(stream)
    variable = _expect_variable(stream)
    # The head names either a previously bound variable or a domain; the
    # parser cannot know which, so callers resolve it: parse_query marks it
    # as a variable reference only when a prior clause bound it.
    return FromClause(SOURCE_VARIABLE, head, _compile_rest(rest), variable)


def _parse_raw_path_after_star(stream: _TokenStream) -> Tuple[None, str]:
    """Path continuation right after ``*`` or ``doc(...)``."""
    parts: List[str] = []
    while True:
        token = stream.peek()
        if token and token[0] == "slash":
            stream.next()
            nxt = stream.next()
            if nxt[0] != "word" and nxt[1] != "*":
                raise QueryError(f"bad path step {nxt[1]!r}")
            parts.append(token[1] + nxt[1])
            continue
        if token and token[1] == "@":
            stream.next()
            attr_kind, attr = stream.next()
            if attr_kind != "word":
                raise QueryError(f"bad attribute name {attr!r}")
            parts.append("@" + attr)
        break
    if not parts:
        raise QueryError("expected a path after the source")
    return None, "".join(parts)


def _expect_variable(stream: _TokenStream) -> str:
    kind, value = stream.next()
    if kind != "word" or value.lower() in _KEYWORDS:
        raise QueryError(f"expected a variable name, found {value!r}")
    return value


def _parse_condition(stream: _TokenStream) -> Condition:
    head, rest = _parse_raw_path(stream)
    if stream.accept_word("strict"):
        stream.expect_word("contains")
        op = OP_STRICT_CONTAINS
    elif stream.accept_word("contains"):
        op = OP_CONTAINS
    else:
        kind, value = stream.next()
        if kind != "op" or value not in COMPARISON_OPS:
            raise QueryError(f"expected an operator, found {value!r}")
        op = value
    kind, literal = stream.next()
    if kind == "string":
        literal = literal[1:-1]
    elif kind != "word" or not _is_number(literal):
        raise QueryError(f"expected a literal, found {literal!r}")
    return Condition(
        variable=head, path=_compile_rest(rest), op=op, literal=literal
    )


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def resolve_sources(query: Query, known_domains) -> Query:
    """Rewrite first-position variable sources into domain sources.

    ``parse_query`` marks every bare-word source as a variable reference;
    this pass (used by the engine) turns the ones naming no bound variable
    into domain lookups.  Kept separate so the parser has no engine
    dependency.
    """
    bound = set()
    rewritten: List[FromClause] = []
    for clause in query.from_clauses:
        if clause.source_kind == SOURCE_VARIABLE and clause.source_name not in bound:
            rewritten.append(
                FromClause(
                    SOURCE_DOMAIN,
                    clause.source_name,
                    clause.path,
                    clause.variable,
                )
            )
        else:
            rewritten.append(clause)
        bound.add(clause.variable)
    return Query(
        select_items=query.select_items,
        from_clauses=tuple(rewritten),
        conditions=query.conditions,
        name=query.name,
    )
