"""Distribution of the MQP — Section 4.2, last paragraph.

"Typically, one can use distribution along two directions:

1. *Processing speed*: split the flow of documents into several partitions
   and assign a Monitoring Query Processor to each block of the partition.
2. *Memory*: split the subscriptions into several partitions and assign a
   Monitoring Query Processor to each block.  This results in smaller data
   structures for each processor."

Both partitioners present the same facade as a single
:class:`~repro.core.processor.MonitoringQueryProcessor` so the rest of the
system is oblivious to distribution.  The workers here are in-process (the
original used Corba across a Linux PC cluster); the routing and state-
partitioning logic is identical.

Stats semantics: :meth:`_ShardedBase.stats` describes the *facade* — one
logical processor — so its counters must match what a single
:class:`MonitoringQueryProcessor` would report for the same workload
regardless of the shard count or the partitioning axis.  Registrations are
therefore counted once per complex event (not once per shard it is mirrored
into) and alerts once per document (not once per shard that inspects it).
Per-shard ``shard.stats`` still describe each worker's own share of the
work; when ``metrics`` is given, each worker additionally gets a
``shard=N`` label on its ``mqp.process_alert`` latency histogram.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..clock import Clock, SimulatedClock
from ..errors import MonitoringError
from ..observability.metrics import MetricsRegistry
from .aes import AESMatcher
from .events import AtomicEventKey, ComplexEvent, EventRegistry
from .processor import Alert, MonitoringQueryProcessor, Notification, NotificationSink
from .stats import ProcessorStats


def _stable_hash(text: str) -> int:
    """Deterministic across processes (unlike ``hash`` with PYTHONHASHSEED)."""
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )


class _ShardedBase:
    """Shared plumbing: a common registry, N workers, facade-level stats."""

    def __init__(
        self,
        shard_count: int,
        matcher_factory: Callable[[], Any] = AESMatcher,
        clock: Optional[Clock] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if shard_count < 1:
            raise MonitoringError("shard_count must be at least 1")
        self.registry = EventRegistry()
        self.clock = clock if clock is not None else SimulatedClock()
        self.shards: List[MonitoringQueryProcessor] = [
            MonitoringQueryProcessor(
                registry=self.registry,
                matcher_factory=matcher_factory,
                clock=self.clock,
                metrics=metrics,
                shard_label=str(index),
            )
            for index in range(shard_count)
        ]
        #: Facade-level counters (see the module docstring).
        self._facade_stats = ProcessorStats()
        #: Facade copy of the sinks, for batch fan-outs that match on
        #: worker threads and dispatch in input order afterwards.
        self._sinks: List[NotificationSink] = []

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def add_sink(self, sink: NotificationSink) -> None:
        self._sinks.append(sink)
        for shard in self.shards:
            shard.add_sink(sink)

    def dispatch(self, notifications: List[Notification]) -> None:
        """Forward one non-empty notification batch to every sink."""
        if notifications:
            for sink in self._sinks:
                sink(notifications)

    def stats(self) -> ProcessorStats:
        """Stats of the logical (single-facade) processor.

        Equal to a single :class:`MonitoringQueryProcessor`'s stats for the
        same registrations and alerts, whatever the shard layout.
        """
        return ProcessorStats().merged_with(self._facade_stats)

    def shard_load(self) -> List[int]:
        """Alerts each worker actually inspected (the load distribution)."""
        return [shard.stats.alerts_processed for shard in self.shards]

    def _record_alert(self, alert: Alert, batch: List[Notification]) -> None:
        self._facade_stats.alerts_processed += 1
        self._facade_stats.events_seen += len(alert.event_codes)
        self._facade_stats.notifications_sent += len(batch)

    def structure_stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {"tables": 0, "cells": 0, "marks": 0}
        for shard in self.shards:
            for key, value in shard.structure_stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals


class FlowPartitionedProcessor(_ShardedBase):
    """Distribution axis 1: every shard holds all subscriptions; each
    document is routed to exactly one shard (by URL hash), multiplying
    processing throughput."""

    def register(self, keys: Iterable[AtomicEventKey]) -> ComplexEvent:
        key_list = list(keys)
        # Register once through the shared registry, then mirror the complex
        # event into every shard's matcher.  The registration is one logical
        # event: count it once, not once per mirror.
        event = self.registry.register_complex(key_list)
        for shard in self.shards:
            shard.matcher.add(event.code, event.atomic_codes)
        self._facade_stats.complex_registered += 1
        return event

    def unregister(self, complex_code: int) -> None:
        event = self.registry.unregister_complex(complex_code)
        for shard in self.shards:
            shard.matcher.remove(event.code, event.atomic_codes)
        self._facade_stats.complex_removed += 1

    def shard_for(self, document_url: str) -> int:
        return _stable_hash(document_url) % len(self.shards)

    def process_alert(self, alert: Alert) -> List[Notification]:
        shard = self.shards[self.shard_for(alert.document_url)]
        batch = shard.process_alert(alert)
        self._record_alert(alert, batch)
        return batch

    def match_alert_batch(
        self, alerts: Sequence[Alert]
    ) -> List[List[Notification]]:
        """Match a whole batch with one worker thread per occupied shard.

        Each alert still visits exactly the shard its URL hashes to, and
        each shard processes its alerts in input order, so routing, shard
        stats and per-shard metrics are identical to looping
        ``process_alert`` — only sink dispatch is left to the caller (who
        must call :meth:`dispatch` per returned batch, in input order).
        Worker threads never share a shard, so no shard state needs
        locking; facade stats are recorded after the join.
        """
        results: List[List[Notification]] = [[] for _ in alerts]
        groups: Dict[int, List[int]] = {}
        for position, alert in enumerate(alerts):
            groups.setdefault(
                self.shard_for(alert.document_url), []
            ).append(position)

        def work(shard_index: int, positions: List[int]) -> None:
            shard = self.shards[shard_index]
            for position in positions:
                results[position] = shard.match_alert(alerts[position])

        if len(groups) <= 1:
            for shard_index, positions in groups.items():
                work(shard_index, positions)
        else:
            workers = [
                threading.Thread(
                    target=work,
                    args=(shard_index, positions),
                    name=f"repro-shard-{shard_index}",
                )
                for shard_index, positions in groups.items()
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        for position, alert in enumerate(alerts):
            self._record_alert(alert, results[position])
        return results


class SubscriptionPartitionedProcessor(_ShardedBase):
    """Distribution axis 2: subscriptions are split across shards (smaller
    structures per shard); every document's alert visits every shard."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._home_shard: Dict[int, int] = {}
        self._load: List[int] = [0] * len(self.shards)

    def register(self, keys: Iterable[AtomicEventKey]) -> ComplexEvent:
        event = self.registry.register_complex(list(keys))
        target = self._load.index(min(self._load))
        self.shards[target].matcher.add(event.code, event.atomic_codes)
        self._facade_stats.complex_registered += 1
        self._home_shard[event.code] = target
        self._load[target] += 1
        return event

    def unregister(self, complex_code: int) -> None:
        target = self._home_shard.pop(complex_code, None)
        if target is None:
            raise MonitoringError(
                f"complex event {complex_code} is not registered"
            )
        event = self.registry.unregister_complex(complex_code)
        self.shards[target].matcher.remove(event.code, event.atomic_codes)
        self._facade_stats.complex_removed += 1
        self._load[target] -= 1

    def process_alert(self, alert: Alert) -> List[Notification]:
        batch: List[Notification] = []
        for index, shard in enumerate(self.shards):
            # Occupancy check: a shard holding zero complex events cannot
            # match anything — skip it instead of paying the matcher and
            # metrics cost (its ``shard_load`` entry simply stays 0).
            if self._load[index] == 0:
                continue
            batch.extend(shard.process_alert(alert))
        self._record_alert(alert, batch)
        return batch
