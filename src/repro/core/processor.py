"""The Monitoring Query Processor (MQP) — Section 4 of the paper.

The MQP receives *alerts* — the set of atomic events an alerter chain
detected for one document plus opaque data — and determines which complex
events (monitoring queries) the document matches, emitting *notifications*.
As in the paper:

* the MQP "has no semantic knowledge of the data associated to the atomic
  or complex events it handles" — ``Alert.data`` is forwarded untouched;
* "all the complex events are detected on a document simultaneously and
  thus are sent to the Reporter/Trigger Engine in one batch" — sinks
  receive the whole per-document notification list in one call;
* subscriptions "keep being added, removed and updated while the system is
  running" — registration and removal work on a live matcher.

The matcher engine is pluggable (:class:`~repro.core.aes.AESMatcher` by
default; the baselines share the same protocol) so the benchmarks can
compare algorithms behind the exact same facade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..clock import Clock, SimulatedClock
from ..observability.metrics import MetricsRegistry, NULL_REGISTRY
from ..observability.names import (
    COUNTER_MQP_NOTIFICATIONS,
    STAGE_MQP_PROCESS_ALERT,
)
from ..observability.tracing import StageTracer
from .aes import AESMatcher, sort_event_set
from .events import AtomicEventKey, ComplexEvent, EventRegistry
from .stats import ProcessorStats


@dataclass(frozen=True)
class Alert:
    """What an alerter chain sends for one document (Section 3, Alerters).

    ``event_codes`` must be sorted ascending without duplicates — the URL
    alerter "must produce a sorted sequence since the Monitoring Query
    Processor takes advantage of the ordering" (Section 6.2).
    ``data`` maps atomic-event codes to the extra information the select
    clause requested (XML fragments, URLs ...), forwarded transparently.
    """

    document_url: str
    event_codes: Sequence[int]
    data: Dict[int, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Notification:
    """One detected complex event for one document."""

    complex_code: int
    document_url: str
    timestamp: float
    data: Dict[int, Any] = field(default_factory=dict)


#: A sink receives the full batch of notifications for one document.
NotificationSink = Callable[[List[Notification]], None]


class MonitoringQueryProcessor:
    """Facade over the event registry + a matcher engine + sinks."""

    def __init__(
        self,
        registry: Optional[EventRegistry] = None,
        matcher_factory: Callable[[], Any] = AESMatcher,
        clock: Optional[Clock] = None,
        metrics: Optional[MetricsRegistry] = None,
        shard_label: Optional[str] = None,
    ):
        """``metrics`` / ``shard_label`` instrument ``process_alert``: the
        sharded processors give each worker its own ``shard=N`` label so the
        snapshot shows the load distribution."""
        self.registry = registry if registry is not None else EventRegistry()
        self.matcher = matcher_factory()
        self.clock = clock if clock is not None else SimulatedClock()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        labels = {} if shard_label is None else {"shard": shard_label}
        self._latency = StageTracer(self.metrics).stage_histogram(
            STAGE_MQP_PROCESS_ALERT, **labels
        )
        self._notified = self.metrics.counter(
            COUNTER_MQP_NOTIFICATIONS, **labels
        )
        self.stats = ProcessorStats()
        self._sinks: List[NotificationSink] = []

    # -- subscription-side API ------------------------------------------------

    def register(self, keys: Iterable[AtomicEventKey]) -> ComplexEvent:
        """Register a conjunction of atomic conditions as a complex event."""
        event = self.registry.register_complex(keys)
        self.matcher.add(event.code, event.atomic_codes)
        self.stats.complex_registered += 1
        return event

    def unregister(self, complex_code: int) -> None:
        """Remove a complex event while the system runs (Section 4.1)."""
        event = self.registry.unregister_complex(complex_code)
        self.matcher.remove(event.code, event.atomic_codes)
        self.stats.complex_removed += 1

    def add_sink(self, sink: NotificationSink) -> None:
        self._sinks.append(sink)

    # -- document-side API -------------------------------------------------------

    def process_alert(self, alert: Alert) -> List[Notification]:
        """Match one alert; dispatch and return its notification batch."""
        start = self.metrics.now()
        notifications = self._match(alert)
        self.dispatch(notifications)
        self._latency.observe(self.metrics.now() - start)
        if notifications:
            self._notified.inc(len(notifications))
        return notifications

    def match_alert(self, alert: Alert) -> List[Notification]:
        """Match and account one alert *without* dispatching to sinks.

        The sharded batch fan-out matches each shard's alerts on a worker
        thread and dispatches in input order afterwards, so downstream
        consumers see the exact serial sequence; stats and metrics here are
        identical to :meth:`process_alert`.
        """
        start = self.metrics.now()
        notifications = self._match(alert)
        self._latency.observe(self.metrics.now() - start)
        if notifications:
            self._notified.inc(len(notifications))
        return notifications

    def dispatch(self, notifications: List[Notification]) -> None:
        """Forward one non-empty notification batch to every sink."""
        if notifications:
            for sink in self._sinks:
                sink(notifications)

    def _match(self, alert: Alert) -> List[Notification]:
        now = self.clock.now()
        matched = self.matcher.match(alert.event_codes)
        notifications = [
            Notification(
                complex_code=code,
                document_url=alert.document_url,
                timestamp=now,
                data=alert.data,
            )
            for code in matched
        ]
        self.stats.alerts_processed += 1
        self.stats.events_seen += len(alert.event_codes)
        self.stats.notifications_sent += len(notifications)
        return notifications

    def match_codes(self, event_codes: Sequence[int]) -> List[int]:
        """Bare matching (no sinks, no stats) — used by benchmarks."""
        return self.matcher.match(event_codes)

    # -- introspection -----------------------------------------------------------

    def structure_stats(self) -> Dict[str, int]:
        return self.matcher.structure_stats()

    @staticmethod
    def canonical_event_set(event_codes: Iterable[int]) -> List[int]:
        return sort_event_set(event_codes)
