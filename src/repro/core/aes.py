"""The "Atomic Event Sets" algorithm (Section 4.2) — the paper's core.

Data structure (Figure 4): a chain of hash tables.  The entry table ``H``
has one cell per atomic event appearing first in some complex event; the
cell for event ``a_i`` may carry *marks* (codes of complex events equal to
the prefix ``{a_i}``) and may point to a subtable ``H_i`` indexing the next
event of longer complex events, and so on — ``H_{1,5}`` holds the complex
events starting with ``a_1, a_5``.  Complex events are stored as *sorted*
tuples of atomic codes, so the structure is exactly the data-mining
hash-tree: "we want to find all itemsets (complex events) that are
supported by a given transaction (incoming events)".

Matching a sorted event set ``S = [e_1 .. e_s]`` (the paper's ``Notif``):
walk the entry table for every ``e_i``; whenever a cell is marked, report
its marks; whenever it has a subtable, continue inside it with the *suffix*
``e_{i+1} ..``.  Naively O(2^s), but a cell for event ``a`` exists only
where some complex event contains ``a`` in that prefix context, so the
explored cells are bounded by the structure — experimentally O(s·log k)
(Figures 5 and 6).

Implementation notes: a cell is a two-slot list ``[marks, subtable]`` where
``marks`` is ``None``, a single int, or a list of ints (most cells carry at
most one mark, so the common case avoids a list allocation), and
``subtable`` is ``None`` or a dict.  Matching is iterative (explicit stack)
to keep per-visit overhead minimal in CPython.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import MonitoringError

#: Cell layout indexes.
_MARKS = 0
_SUB = 1

Cell = list  # [marks: None|int|List[int], subtable: None|Dict[int, Cell]]


class AESMatcher:
    """Hash-tree matcher over sorted atomic-event codes.

    The matcher is one of the interchangeable engines behind the Monitoring
    Query Processor; see :mod:`repro.core.naive` and
    :mod:`repro.core.counting` for the baselines it is evaluated against.
    """

    name = "aes"

    def __init__(self):
        self._root: Dict[int, Cell] = {}
        self._size = 0  # number of registered complex events

    def __len__(self) -> int:
        return self._size

    # -- registration ---------------------------------------------------------

    def add(self, complex_code: int, atomic_codes: Sequence[int]) -> None:
        """Insert a complex event given its sorted atomic codes."""
        if not atomic_codes:
            raise MonitoringError("cannot register an empty complex event")
        codes = _ensure_sorted(atomic_codes)
        table = self._root
        last = len(codes) - 1
        for position, code in enumerate(codes):
            cell = table.get(code)
            if cell is None:
                cell = [None, None]
                table[code] = cell
            if position == last:
                marks = cell[_MARKS]
                if marks is None:
                    cell[_MARKS] = complex_code
                elif isinstance(marks, int):
                    cell[_MARKS] = [marks, complex_code]
                else:
                    marks.append(complex_code)
                break
            subtable = cell[_SUB]
            if subtable is None:
                subtable = {}
                cell[_SUB] = subtable
            table = subtable
        self._size += 1

    def remove(self, complex_code: int, atomic_codes: Sequence[int]) -> None:
        """Remove a previously added complex event, pruning empty tables."""
        codes = _ensure_sorted(atomic_codes)
        path: List[Tuple[Dict[int, Cell], int, Cell]] = []
        table: Optional[Dict[int, Cell]] = self._root
        cell: Optional[Cell] = None
        for code in codes:
            if table is None:
                cell = None
                break
            cell = table.get(code)
            if cell is None:
                break
            path.append((table, code, cell))
            table = cell[_SUB]
        if cell is None or not path:
            raise MonitoringError(
                f"complex event {complex_code} with codes {list(codes)}"
                " is not registered"
            )
        marks = cell[_MARKS]
        if marks == complex_code:
            cell[_MARKS] = None
        elif isinstance(marks, list) and complex_code in marks:
            marks.remove(complex_code)
            if len(marks) == 1:
                cell[_MARKS] = marks[0]
        else:
            raise MonitoringError(
                f"complex event {complex_code} is not marked at its cell"
            )
        # Prune now-empty cells bottom-up.
        for parent_table, code, parent_cell in reversed(path):
            sub = parent_cell[_SUB]
            if sub is not None and not sub:
                parent_cell[_SUB] = None
            if parent_cell[_MARKS] is None and parent_cell[_SUB] is None:
                del parent_table[code]
            else:
                break
        self._size -= 1

    # -- matching ---------------------------------------------------------------

    def match(self, event_codes: Sequence[int]) -> List[int]:
        """Codes of all complex events contained in the sorted set ``event_codes``.

        This is the paper's ``Notif(H, S)``.  ``event_codes`` must be sorted
        ascending and duplicate-free (alerters guarantee this; see
        Section 6.2 "it must produce a sorted sequence").
        """
        out: List[int] = []
        events = event_codes
        count = len(events)
        # Each stack entry is (table, start index into events).
        stack: List[Tuple[Dict[int, Cell], int]] = [(self._root, 0)]
        push = stack.append
        pop = stack.pop
        while stack:
            table, start = pop()
            get = table.get
            for index in range(start, count):
                cell = get(events[index])
                if cell is None:
                    continue
                marks = cell[_MARKS]
                if marks is not None:
                    if type(marks) is int:
                        out.append(marks)
                    else:
                        out.extend(marks)
                subtable = cell[_SUB]
                if subtable is not None and index + 1 < count:
                    push((subtable, index + 1))
        return out

    # -- introspection ------------------------------------------------------------

    def structure_stats(self) -> Dict[str, int]:
        """Table/cell/mark counts — the memory figures of Section 4.2."""
        tables = 0
        cells = 0
        marks = 0
        stack = [self._root]
        while stack:
            table = stack.pop()
            tables += 1
            for cell in table.values():
                cells += 1
                cell_marks = cell[_MARKS]
                if cell_marks is not None:
                    marks += 1 if type(cell_marks) is int else len(cell_marks)
                if cell[_SUB] is not None:
                    stack.append(cell[_SUB])
        return {"tables": tables, "cells": cells, "marks": marks}


def _ensure_sorted(atomic_codes: Sequence[int]) -> Sequence[int]:
    """Validate (cheaply) that codes are sorted unique; sort when not."""
    previous = None
    for code in atomic_codes:
        if previous is not None and code <= previous:
            return sorted(set(atomic_codes))
        previous = code
    return atomic_codes


def sort_event_set(event_codes: Iterable[int]) -> List[int]:
    """Canonical form of a detected event set: sorted, duplicate-free."""
    return sorted(set(event_codes))
