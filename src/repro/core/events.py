"""Atomic and complex events — the vocabulary of the MQP.

Section 4.1 of the paper: *A* is the set of all possible atomic events (one
per atomic condition in some monitoring query's ``where`` clause); a
*complex event* is a finite subset of *A*; the Monitoring Query Processor
must find, for the atomic-event set S(d) raised by each document d, every
complex event C_i ⊆ S(d).

The registry below interns atomic-event keys to dense integer codes (the
ordering the algorithm needs) and tracks complex-event membership so events
can be added and removed while the system runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Optional, Tuple

from ..errors import MonitoringError, UnknownEventError
from ..ids import InternedCodes, SequentialIdAllocator

#: Weak events (Section 5.1): document-level ``new`` / ``updated`` /
#: ``unchanged`` statuses that almost every fetched document raises.  A
#: ``where`` clause must contain at least one event *not* in this class.
WEAK_KINDS = frozenset({"doc_new", "doc_updated", "doc_unchanged"})


@dataclass(frozen=True)
class AtomicEventKey:
    """Canonical description of an atomic condition.

    ``kind`` names the condition family (``url_extends``, ``contains``,
    ``tag_contains`` ...); ``argument`` carries its parameters as a hashable
    value.  Two subscriptions with the same key share one atomic event.
    """

    kind: str
    argument: Hashable = None

    @property
    def weak(self) -> bool:
        return self.kind in WEAK_KINDS

    def __str__(self) -> str:
        return f"{self.kind}({self.argument!r})"


@dataclass(frozen=True)
class ComplexEvent:
    """A registered conjunction: code + its sorted atomic-code tuple."""

    code: int
    atomic_codes: Tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.atomic_codes)


class EventRegistry:
    """Interning and bookkeeping for atomic and complex events.

    * Atomic events are interned by :class:`AtomicEventKey`; their codes are
      dense integers whose order is the canonical event ordering.
    * Complex events get codes from a separate space; the registry tracks
      which atomic events each one uses so that removing the last complex
      event interested in an atomic event retires the atomic event too
      (the Alerters are told to stop detecting it).
    """

    def __init__(self):
        self._atomic = InternedCodes()
        self._atomic_refcount: Dict[int, int] = {}
        self._complex_allocator = SequentialIdAllocator(start=1)
        self._complex: Dict[int, ComplexEvent] = {}

    # -- atomic events -------------------------------------------------------

    def intern_atomic(self, key: AtomicEventKey) -> int:
        """Code for ``key`` (allocated on first sight, refcount unchanged)."""
        return self._atomic.intern(key)

    def atomic_code(self, key: AtomicEventKey) -> Optional[int]:
        return self._atomic.code_for(key)

    def atomic_key(self, code: int) -> AtomicEventKey:
        try:
            key = self._atomic.key_for(code)
        except KeyError:
            raise UnknownEventError(f"unknown atomic event code {code}") from None
        assert isinstance(key, AtomicEventKey)
        return key

    def atomic_count(self) -> int:
        return len(self._atomic)

    def atomic_keys(self) -> Iterable[AtomicEventKey]:
        return list(self._atomic)  # type: ignore[return-value]

    # -- complex events -------------------------------------------------------

    def register_complex(self, keys: Iterable[AtomicEventKey]) -> ComplexEvent:
        """Register a conjunction of atomic conditions; returns its event.

        Enforces the weak/strong rule: at least one key must be strong.
        """
        key_list = list(keys)
        if not key_list:
            raise MonitoringError("a complex event needs at least one condition")
        if all(key.weak for key in key_list):
            raise MonitoringError(
                "a complex event must contain at least one strong condition"
                " (Section 5.1: weak-only where clauses are disallowed)"
            )
        codes = sorted({self.intern_atomic(key) for key in key_list})
        for code in codes:
            self._atomic_refcount[code] = self._atomic_refcount.get(code, 0) + 1
        complex_code = self._complex_allocator.allocate()
        event = ComplexEvent(code=complex_code, atomic_codes=tuple(codes))
        self._complex[complex_code] = event
        return event

    def unregister_complex(self, complex_code: int) -> ComplexEvent:
        """Remove a conjunction; retires now-unreferenced atomic events.

        Returns the removed event so the caller (the MQP) can update its
        matcher structure.
        """
        event = self._complex.pop(complex_code, None)
        if event is None:
            raise UnknownEventError(f"unknown complex event code {complex_code}")
        for code in event.atomic_codes:
            remaining = self._atomic_refcount.get(code, 0) - 1
            if remaining <= 0:
                self._atomic_refcount.pop(code, None)
                key = self._atomic.key_for(code)
                self._atomic.release(key)
            else:
                self._atomic_refcount[code] = remaining
        self._complex_allocator.release(complex_code)
        return event

    def complex_event(self, complex_code: int) -> ComplexEvent:
        try:
            return self._complex[complex_code]
        except KeyError:
            raise UnknownEventError(
                f"unknown complex event code {complex_code}"
            ) from None

    def complex_count(self) -> int:
        return len(self._complex)

    def complex_events(self) -> Iterable[ComplexEvent]:
        return list(self._complex.values())

    # -- statistics (the paper's parameters) ----------------------------------

    def average_conjunction_size(self) -> float:
        """The paper's parameter c̄ (average atomic events per complex event)."""
        if not self._complex:
            return 0.0
        total = sum(event.size for event in self._complex.values())
        return total / len(self._complex)

    def average_fanout(self) -> float:
        """The paper's parameter k (complex events per atomic event).

        Estimated exactly from refcounts rather than the paper's
        c̄·Card(C)/Card(A) approximation.
        """
        if not self._atomic_refcount:
            return 0.0
        return sum(self._atomic_refcount.values()) / len(self._atomic_refcount)
