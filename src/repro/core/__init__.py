"""The paper's primary contribution: the Monitoring Query Processor.

* :class:`AESMatcher` — the "Atomic Event Sets" hash-tree algorithm
  (Section 4.2, Figure 4).
* :class:`NaiveMatcher`, :class:`CountingMatcher` — the baselines the
  evaluation compares against.
* :class:`MonitoringQueryProcessor` — alerts in, notification batches out,
  with live registration/removal of complex events.
* :class:`FlowPartitionedProcessor`, :class:`SubscriptionPartitionedProcessor`
  — the two distribution axes of Section 4.2.
"""

from .aes import AESMatcher, sort_event_set
from .automaton import StateExplosionError, SubsetAutomatonMatcher
from .counting import CountingMatcher
from .events import (
    WEAK_KINDS,
    AtomicEventKey,
    ComplexEvent,
    EventRegistry,
)
from .naive import NaiveMatcher
from .processor import Alert, MonitoringQueryProcessor, Notification
from .sharding import FlowPartitionedProcessor, SubscriptionPartitionedProcessor
from .stats import ProcessorStats

__all__ = [
    "AESMatcher",
    "sort_event_set",
    "StateExplosionError",
    "SubsetAutomatonMatcher",
    "CountingMatcher",
    "WEAK_KINDS",
    "AtomicEventKey",
    "ComplexEvent",
    "EventRegistry",
    "NaiveMatcher",
    "Alert",
    "MonitoringQueryProcessor",
    "Notification",
    "FlowPartitionedProcessor",
    "SubscriptionPartitionedProcessor",
    "ProcessorStats",
]
