"""Naive baseline matcher: test every complex event against every document.

Section 4.1 notes the problem "can be stated as a finite state automata
problem" but the automaton would be prohibitive, and that the authors
"considered alternatives" before choosing AES.  This module is the simplest
correct alternative: keep every complex event as a sorted tuple and check
containment per document.  Cost is O(Card(C) · c̄) per document — unusable
at the paper's scale, which is precisely what ``bench_baselines`` shows.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import MonitoringError


class NaiveMatcher:
    """Per-subscription scan baseline: O(Card(C)·c̄) per document."""

    name = "naive"

    def __init__(self):
        self._events: Dict[int, tuple] = {}

    def __len__(self) -> int:
        return len(self._events)

    def add(self, complex_code: int, atomic_codes: Sequence[int]) -> None:
        if not atomic_codes:
            raise MonitoringError("cannot register an empty complex event")
        self._events[complex_code] = tuple(sorted(set(atomic_codes)))

    def remove(self, complex_code: int, atomic_codes: Sequence[int]) -> None:
        if complex_code not in self._events:
            raise MonitoringError(
                f"complex event {complex_code} is not registered"
            )
        del self._events[complex_code]

    def match(self, event_codes: Sequence[int]) -> List[int]:
        detected = set(event_codes)
        contains = detected.issuperset
        return [
            code
            for code, atomic in self._events.items()
            if contains(atomic)
        ]

    def structure_stats(self) -> Dict[str, int]:
        return {
            "tables": 1,
            "cells": sum(len(a) for a in self._events.values()),
            "marks": len(self._events),
        }
