"""Counters the MQP and the sharded processors expose.

The paper quantifies the system by documents/day, notifications/day and the
parameters s, c̄, k; these counters are the raw material for those numbers
in benchmarks and in the pipeline's end-of-run summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class ProcessorStats:
    alerts_processed: int = 0
    events_seen: int = 0
    notifications_sent: int = 0
    complex_registered: int = 0
    complex_removed: int = 0

    @property
    def average_event_set_size(self) -> float:
        """Observed s̄ — average atomic events per processed document."""
        if self.alerts_processed == 0:
            return 0.0
        return self.events_seen / self.alerts_processed

    @property
    def average_notifications_per_alert(self) -> float:
        if self.alerts_processed == 0:
            return 0.0
        return self.notifications_sent / self.alerts_processed

    def merged_with(self, other: "ProcessorStats") -> "ProcessorStats":
        return ProcessorStats(
            alerts_processed=self.alerts_processed + other.alerts_processed,
            events_seen=self.events_seen + other.events_seen,
            notifications_sent=self.notifications_sent
            + other.notifications_sent,
            complex_registered=self.complex_registered
            + other.complex_registered,
            complex_removed=self.complex_removed + other.complex_removed,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "alerts_processed": self.alerts_processed,
            "events_seen": self.events_seen,
            "notifications_sent": self.notifications_sent,
            "complex_registered": self.complex_registered,
            "complex_removed": self.complex_removed,
            "average_event_set_size": self.average_event_set_size,
            "average_notifications_per_alert": (
                self.average_notifications_per_alert
            ),
        }
