"""Counting baseline matcher: inverted index + per-document counters.

The classic pub/sub evaluation strategy (cf. the paper's reference [12],
Fabret et al., "Publish/subscribe on the web at extreme speed"): keep, for
each atomic event, the list of complex events containing it; per document,
bump a counter for every (detected event -> interested complex event) pair
and report the complex events whose counters reach their size.

Per-document cost is O(Σ_{a ∈ S} k_a) ≈ O(s·k): *linear* in k, the number
of complex events interested in an atomic event — against AES's observed
O(s·log k).  This is the baseline whose dependence on k the paper calls a
"critical factor" ("an interesting candidate algorithm we considered turned
out to be exponential in that factor" refers to yet another scheme; the
counting scheme is the standard linear-in-k one and is what we compare
against in ``bench_baselines``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ..errors import MonitoringError


class CountingMatcher:
    """Inverted-index + counters baseline: O(s·k) per document."""

    name = "counting"

    def __init__(self):
        #: atomic code -> set of complex codes containing it
        self._interested: Dict[int, Set[int]] = {}
        #: complex code -> number of atomic events in it
        self._sizes: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._sizes)

    def add(self, complex_code: int, atomic_codes: Sequence[int]) -> None:
        codes = set(atomic_codes)
        if not codes:
            raise MonitoringError("cannot register an empty complex event")
        self._sizes[complex_code] = len(codes)
        for code in codes:
            self._interested.setdefault(code, set()).add(complex_code)

    def remove(self, complex_code: int, atomic_codes: Sequence[int]) -> None:
        if complex_code not in self._sizes:
            raise MonitoringError(
                f"complex event {complex_code} is not registered"
            )
        del self._sizes[complex_code]
        for code in set(atomic_codes):
            interested = self._interested.get(code)
            if interested is not None:
                interested.discard(complex_code)
                if not interested:
                    del self._interested[code]

    def match(self, event_codes: Sequence[int]) -> List[int]:
        counters: Dict[int, int] = {}
        sizes = self._sizes
        out: List[int] = []
        for code in event_codes:
            for complex_code in self._interested.get(code, ()):
                seen = counters.get(complex_code, 0) + 1
                if seen == sizes[complex_code]:
                    out.append(complex_code)
                counters[complex_code] = seen
        return out

    def structure_stats(self) -> Dict[str, int]:
        return {
            "tables": len(self._interested),
            "cells": sum(len(s) for s in self._interested.values()),
            "marks": len(self._sizes),
        }
