"""The finite-state-automaton formulation of the matching problem.

Section 4.1: "Note that the problem can be stated as a finite state
automata problem.  For each document we need to find the words in
{C_1 ... C_n} 'contained' in the word S.  In principle, we could detect
this using a finite state automaton in linear time in the cardinality of S
and in constant time in the other inputs to the problem.  Unfortunately,
because of the size of the problem, the number of states of the automaton
would be prohibitive."

This module builds that automaton so the claim can be *measured*
(``benchmarks/bench_fsa_states.py``):

* each complex event is an NFA chain over its sorted codes (with implicit
  self-loops — symbols not on the chain are skipped);
* the DFA state is the subset of live chain positions **plus the set of
  complex events already detected** (detection must be part of the output
  of a state for matching to be a pure automaton run);
* subset construction is performed lazily (transitions are memoized as
  words are read) or eagerly (:meth:`materialize`, which explores the full
  reachable state space and is where the explosion shows).

Matching through the lazy DFA gives exactly the same results as
:class:`~repro.core.aes.AESMatcher` — property-tested — while the state
count grows out of control with Card(C), which is the paper's argument for
the AES structure.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..errors import MonitoringError


class StateExplosionError(MonitoringError):
    """Raised when the automaton exceeds its state budget."""


#: A DFA state: (frozenset of live (chain id, position) pairs,
#:              frozenset of complex codes already matched).
State = Tuple[FrozenSet[Tuple[int, int]], FrozenSet[int]]


class SubsetAutomatonMatcher:
    """Subset-construction automaton for the containment problem.

    Implements the same protocol as the other matchers (add / remove /
    match / structure_stats) so it can sit behind the MQP facade; intended
    for analysis at small scale, not production — which is the point.
    """

    name = "automaton"

    def __init__(self, state_limit: int = 100_000):
        self.state_limit = state_limit
        self._chains: Dict[int, Tuple[int, ...]] = {}
        #: symbol -> [(chain id, position at which the chain wants it)]
        self._wanting: Dict[int, List[Tuple[int, int]]] = {}
        self._transitions: Dict[State, Dict[int, State]] = {}
        self._start: State = (frozenset(), frozenset())

    def __len__(self) -> int:
        return len(self._chains)

    # -- registration ---------------------------------------------------------

    def add(self, complex_code: int, atomic_codes: Sequence[int]) -> None:
        if not atomic_codes:
            raise MonitoringError("cannot register an empty complex event")
        chain = tuple(sorted(set(atomic_codes)))
        self._chains[complex_code] = chain
        self._rebuild_index()
        self._transitions.clear()

    def remove(self, complex_code: int, atomic_codes: Sequence[int]) -> None:
        if complex_code not in self._chains:
            raise MonitoringError(
                f"complex event {complex_code} is not registered"
            )
        del self._chains[complex_code]
        self._rebuild_index()
        self._transitions.clear()

    def _rebuild_index(self) -> None:
        self._wanting = {}
        for chain_id, chain in self._chains.items():
            for position, symbol in enumerate(chain):
                self._wanting.setdefault(symbol, []).append(
                    (chain_id, position)
                )

    # -- matching ---------------------------------------------------------------

    def match(self, event_codes: Sequence[int]) -> List[int]:
        """Run the sorted event word through the (lazily built) DFA."""
        state = self._start
        for symbol in event_codes:
            state = self._step(state, symbol)
        return sorted(state[1])

    def _step(self, state: State, symbol: int) -> State:
        cached = self._transitions.get(state)
        if cached is not None:
            target = cached.get(symbol)
            if target is not None:
                return target
        else:
            cached = {}
            self._transitions[state] = cached
            if len(self._transitions) > self.state_limit:
                raise StateExplosionError(
                    f"automaton exceeded {self.state_limit} states"
                )
        live, matched = state
        wanting = self._wanting.get(symbol)
        if wanting is None:
            # Symbol no chain cares about: self-loop.
            cached[symbol] = state
            return state
        live_set = set(live)
        matched_set = set(matched)
        live_positions = {pair: True for pair in live}
        for chain_id, position in wanting:
            chain = self._chains.get(chain_id)
            if chain is None:
                continue
            # Chains implicitly sit at position 0; deeper positions must be
            # live in the current state for the chain to advance.
            if position > 0 and (chain_id, position) not in live_positions:
                continue
            if position > 0:
                live_set.discard((chain_id, position))
            if position + 1 == len(chain):
                matched_set.add(chain_id)
            else:
                live_set.add((chain_id, position + 1))
        target: State = (frozenset(live_set), frozenset(matched_set))
        cached[symbol] = target
        return target

    # -- analysis -----------------------------------------------------------------

    def materialize(self, alphabet: Sequence[int]) -> int:
        """Eagerly explore every reachable state over ``alphabet``.

        Returns the state count; raises :class:`StateExplosionError` when
        the budget is exceeded — reproducing "the number of states of the
        automaton would be prohibitive".

        Exploration respects sortedness: from a state reached by reading
        symbol ``a``, only symbols greater than ``a`` can follow (event
        sets are sorted words), which *under*-counts the unrestricted
        automaton — the explosion happens anyway.
        """
        self._transitions.clear()
        alphabet = sorted(set(alphabet))
        seen: Set[Tuple[State, int]] = set()
        stack: List[Tuple[State, int]] = [(self._start, -1)]
        states: Set[State] = {self._start}
        while stack:
            state, floor = stack.pop()
            for index, symbol in enumerate(alphabet):
                if symbol <= floor:
                    continue
                target = self._step(state, symbol)
                if len(states) > self.state_limit:
                    raise StateExplosionError(
                        f"automaton exceeded {self.state_limit} states"
                    )
                marker = (target, symbol)
                if marker not in seen:
                    seen.add(marker)
                    states.add(target)
                    stack.append((target, symbol))
        return len(states)

    def discovered_states(self) -> int:
        """States materialized so far (lazy matching or materialize())."""
        return len(self._transitions)

    def structure_stats(self) -> Dict[str, int]:
        return {
            "tables": len(self._transitions),
            "cells": sum(len(t) for t in self._transitions.values()),
            "marks": len(self._chains),
        }
