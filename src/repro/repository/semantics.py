"""Semantic domain classification.

Xyleme's semantic module "classif[ies] all the XML resources into semantic
domains and provide[s] an integrated view of each domain based on a single
abstract DTD for this domain" (Section 2.1), and data distribution clusters
documents of one domain together.  The subscription language exposes the
result through the ``domain = string`` condition.

We classify by (in priority order):

1. an explicit DTD -> domain assignment in the :class:`DTDRegistry`;
2. keyword rules over the document's tag set (an "abstract DTD" reduced to
   its characteristic element names);
3. ``None`` (unclassified).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from ..xmlstore.dtd import DTDRegistry
from ..xmlstore.nodes import Document, ElementNode


class DomainRule:
    """A domain is suggested by a characteristic set of element tags."""

    def __init__(self, domain: str, tags: Iterable[str], threshold: int = 1):
        self.domain = domain
        self.tags: FrozenSet[str] = frozenset(tags)
        #: How many characteristic tags must appear in a document.
        self.threshold = max(1, threshold)

    def score(self, document_tags: FrozenSet[str]) -> int:
        return len(self.tags & document_tags)


class SemanticClassifier:
    """DTD assignments first, then abstract-DTD tag rules."""

    def __init__(self, dtd_registry: Optional[DTDRegistry] = None):
        self.dtd_registry = dtd_registry if dtd_registry is not None else DTDRegistry()
        self._rules: Dict[str, DomainRule] = {}

    def add_rule(
        self, domain: str, tags: Iterable[str], threshold: int = 1
    ) -> None:
        """Declare the characteristic tags of a domain's abstract DTD."""
        self._rules[domain] = DomainRule(domain, tags, threshold)

    def assign_dtd(self, dtd_url: str, domain: str) -> None:
        """Pin a DTD to a domain (overrides tag rules for its documents)."""
        self.dtd_registry.register(dtd_url, domain=domain)

    def classify(self, document: Document) -> Optional[str]:
        """Domain of ``document`` or None when unclassified."""
        if document.dtd_url is not None:
            assigned = self.dtd_registry.domain_for(document.dtd_url)
            if assigned is not None:
                return assigned
        if not self._rules:
            return None
        tags = frozenset(
            node.tag
            for node in document.preorder()
            if isinstance(node, ElementNode)
        )
        best_domain: Optional[str] = None
        best_score = 0
        for rule in self._rules.values():
            score = rule.score(tags)
            if score >= rule.threshold and score > best_score:
                best_domain = rule.domain
                best_score = score
        return best_domain

    def domains(self) -> Iterable[str]:
        return sorted(self._rules)
