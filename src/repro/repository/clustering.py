"""Domain-clustered repository distribution (Section 2.1).

"All modules and in particular the XML loaders and the indexers are
distributed between several machines.  The repository itself is
distributed.  Data distribution is based on an automatic semantic
classification of all DTDs.  The system tries to cluster as many documents
as possible from the same domain on a single machine."

:class:`ClusteredRepository` shards documents across N
:class:`~repro.repository.store.Repository` instances: every document of a
domain goes to the domain's home shard (chosen when the domain is first
seen, preferring the least-loaded shard); unclassified documents are
spread by URL hash.  The read API mirrors a single repository, and domain
queries resolve against one shard — the locality the clustering buys.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Union

from ..clock import Clock, SimulatedClock
from ..errors import DocumentNotFound, RepositoryError
from ..xmlstore.nodes import Document
from .metadata import DocumentMeta
from .semantics import SemanticClassifier
from .store import FetchOutcome, Repository


def _stable_hash(text: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )


class ClusteredRepository:
    """N repository shards with domain-affine placement.

    Document ids are globalized as ``shard_index * stride + local_id`` so
    they stay unique across shards.
    """

    _ID_STRIDE = 10_000_000

    def __init__(
        self,
        shard_count: int,
        classifier: Optional[SemanticClassifier] = None,
        clock: Optional[Clock] = None,
        keep_versions: int = 8,
    ):
        if shard_count < 1:
            raise RepositoryError("shard_count must be at least 1")
        self.classifier = (
            classifier if classifier is not None else SemanticClassifier()
        )
        self.clock = clock if clock is not None else SimulatedClock()
        self.shards: List[Repository] = [
            Repository(
                classifier=self.classifier,
                clock=self.clock,
                keep_versions=keep_versions,
            )
            for _ in range(shard_count)
        ]
        self._domain_home: Dict[str, int] = {}
        self._shard_of_url: Dict[str, int] = {}

    # -- placement -----------------------------------------------------------

    def shard_for_domain(self, domain: str) -> int:
        """The domain's home shard (assigned least-loaded-first)."""
        home = self._domain_home.get(domain)
        if home is None:
            loads = [len(shard) for shard in self.shards]
            home = loads.index(min(loads))
            self._domain_home[domain] = home
        return home

    def _place(self, url: str, document: Optional[Document]) -> int:
        existing = self._shard_of_url.get(url)
        if existing is not None:
            return existing
        domain = (
            self.classifier.classify(document)
            if document is not None
            else None
        )
        if domain is not None:
            shard = self.shard_for_domain(domain)
        else:
            shard = _stable_hash(url) % len(self.shards)
        self._shard_of_url[url] = shard
        return shard

    # -- writing -------------------------------------------------------------------

    def store_xml(
        self, url: str, content: Union[str, Document]
    ) -> FetchOutcome:
        from ..xmlstore.parser import parse

        document = parse(content) if isinstance(content, str) else content
        shard_index = self._place(url, document)
        outcome = self.shards[shard_index].store_xml(url, document)
        return outcome

    def store_html(self, url: str, content: str) -> FetchOutcome:
        shard_index = self._place(url, None)
        return self.shards[shard_index].store_html(url, content)

    def remove(self, url: str) -> None:
        shard_index = self._shard_of_url.pop(url, None)
        if shard_index is None:
            raise DocumentNotFound(url)
        self.shards[shard_index].remove(url)

    # -- reading --------------------------------------------------------------------

    def _shard_for_url(self, url: str) -> Repository:
        shard_index = self._shard_of_url.get(url)
        if shard_index is None:
            raise DocumentNotFound(url)
        return self.shards[shard_index]

    def has_url(self, url: str) -> bool:
        return url in self._shard_of_url

    def meta_for_url(self, url: str) -> DocumentMeta:
        return self._shard_for_url(url).meta_for_url(url)

    def document_for_url(self, url: str) -> Document:
        return self._shard_for_url(url).document_for_url(url)

    def documents_in_domain(self, domain: str) -> List[Document]:
        """All current documents of a domain — served by ONE shard."""
        home = self._domain_home.get(domain)
        if home is None:
            return []
        shard = self.shards[home]
        return [
            shard.document(doc_id)
            for doc_id in sorted(shard.indexes.documents_in_domain(domain))
        ]

    def domain_locality(self) -> float:
        """Fraction of classified documents living on their domain's home
        shard (1.0 = perfect clustering)."""
        total = 0
        home_hits = 0
        for shard_index, shard in enumerate(self.shards):
            for meta in shard.all_meta():
                if meta.domain is None:
                    continue
                total += 1
                if self._domain_home.get(meta.domain) == shard_index:
                    home_hits += 1
        return home_hits / total if total else 1.0

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def shard_sizes(self) -> List[int]:
        return [len(shard) for shard in self.shards]

    def all_meta(self) -> Iterable[DocumentMeta]:
        for shard in self.shards:
            yield from shard.all_meta()
