"""Inverted indexes over the warehouse.

The "Repository and Index Manager" layer of Figure 1.  The query processor
(``repro.query``) narrows scans with these; the continuous-query engine uses
the domain index to evaluate queries "from culture/museum" over the
``culture`` domain.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..xmlstore.nodes import Document, ElementNode, TextNode
from ..xmlstore.words import unique_words


class WarehouseIndexes:
    """Word, tag, DTD and domain indexes mapping to document ids."""

    def __init__(self):
        self._by_word: Dict[str, Set[int]] = {}
        self._by_tag: Dict[str, Set[int]] = {}
        self._by_dtd: Dict[str, Set[int]] = {}
        self._by_domain: Dict[str, Set[int]] = {}
        #: Reverse maps for cheap unindexing on update/delete.
        self._doc_words: Dict[int, Set[str]] = {}
        self._doc_tags: Dict[int, Set[str]] = {}
        self._doc_dtd: Dict[int, Optional[str]] = {}
        self._doc_domain: Dict[int, Optional[str]] = {}

    # -- maintenance ----------------------------------------------------------

    def index_document(
        self,
        doc_id: int,
        document: Document,
        domain: Optional[str] = None,
    ) -> None:
        """(Re)index one document; replaces any previous postings."""
        self.unindex_document(doc_id)
        words: Set[str] = set()
        tags: Set[str] = set()
        for node in document.preorder():
            if isinstance(node, ElementNode):
                tags.add(node.tag)
            elif isinstance(node, TextNode):
                words |= unique_words(node.data)
        for word in words:
            self._by_word.setdefault(word, set()).add(doc_id)
        for tag in tags:
            self._by_tag.setdefault(tag, set()).add(doc_id)
        if document.dtd_url is not None:
            self._by_dtd.setdefault(document.dtd_url, set()).add(doc_id)
        if domain is not None:
            self._by_domain.setdefault(domain, set()).add(doc_id)
        self._doc_words[doc_id] = words
        self._doc_tags[doc_id] = tags
        self._doc_dtd[doc_id] = document.dtd_url
        self._doc_domain[doc_id] = domain

    def unindex_document(self, doc_id: int) -> None:
        for word in self._doc_words.pop(doc_id, ()):
            postings = self._by_word.get(word)
            if postings is not None:
                postings.discard(doc_id)
                if not postings:
                    del self._by_word[word]
        for tag in self._doc_tags.pop(doc_id, ()):
            postings = self._by_tag.get(tag)
            if postings is not None:
                postings.discard(doc_id)
                if not postings:
                    del self._by_tag[tag]
        dtd_url = self._doc_dtd.pop(doc_id, None)
        if dtd_url is not None:
            postings = self._by_dtd.get(dtd_url)
            if postings is not None:
                postings.discard(doc_id)
                if not postings:
                    del self._by_dtd[dtd_url]
        domain = self._doc_domain.pop(doc_id, None)
        if domain is not None:
            postings = self._by_domain.get(domain)
            if postings is not None:
                postings.discard(doc_id)
                if not postings:
                    del self._by_domain[domain]

    # -- lookups ---------------------------------------------------------------

    def documents_with_word(self, word: str) -> Set[int]:
        return set(self._by_word.get(word, ()))

    def documents_with_tag(self, tag: str) -> Set[int]:
        return set(self._by_tag.get(tag, ()))

    def documents_with_dtd(self, dtd_url: str) -> Set[int]:
        return set(self._by_dtd.get(dtd_url, ()))

    def documents_in_domain(self, domain: str) -> Set[int]:
        return set(self._by_domain.get(domain, ()))

    def word_frequency(self, word: str) -> int:
        """Document frequency — the cost controller's commonness measure."""
        return len(self._by_word.get(word, ()))

    def vocabulary_size(self) -> int:
        return len(self._by_word)
