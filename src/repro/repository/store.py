"""The XML warehouse — the reproduction's Natix substitute.

Stores the *current* version of each XML document plus a bounded chain of
inverted deltas, so any retained older version can be reconstructed
("the new version of a document can be constructed based on an old version
and the delta" — we store it the other way around, newest-full, which is
what a monitoring system reads most).  HTML pages are not warehoused: only
their signature is kept, enough to answer changed/unchanged (Section 1).

``store_xml`` returns a :class:`FetchOutcome` carrying everything the
alerter chain needs: status (new/updated/unchanged), the delta, and both
versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..clock import Clock, SimulatedClock
from ..diff import (
    DOC_NEW,
    DOC_UNCHANGED,
    DOC_UPDATED,
    Delta,
    XidSpace,
    apply_delta,
    compute_delta,
    copy_document,
    document_signature,
    page_signature,
)
from ..errors import DiffError, DocumentNotFound, RepositoryError
from ..observability.metrics import MetricsRegistry, NULL_REGISTRY
from ..observability.names import (
    COUNTER_REPOSITORY_OUTCOMES,
    STAGE_REPOSITORY_STORE_HTML,
    STAGE_REPOSITORY_STORE_XML,
)
from ..observability.tracing import StageTracer
from ..xmlstore.nodes import Document
from ..xmlstore.parser import parse
from .index import WarehouseIndexes
from .metadata import HTML, XML, DocumentMeta
from .semantics import SemanticClassifier


@dataclass
class FetchOutcome:
    """Everything known after one document passed through the loader."""

    meta: DocumentMeta
    status: str  # DOC_NEW / DOC_UPDATED / DOC_UNCHANGED
    document: Optional[Document] = None      # new current version (XML only)
    old_document: Optional[Document] = None  # previous version (XML, updated)
    delta: Optional[Delta] = None            # old -> new (XML, updated)

    @property
    def is_new(self) -> bool:
        return self.status == DOC_NEW

    @property
    def changed(self) -> bool:
        return self.status in (DOC_NEW, DOC_UPDATED)


@dataclass
class _StoredDocument:
    meta: DocumentMeta
    current: Optional[Document]  # None for HTML
    xid_space: Optional[XidSpace]
    #: (version number of the *older* version, delta new->old) pairs, newest
    #: first; applying them successively to ``current`` walks back in time.
    history: List[Tuple[int, Delta]] = field(default_factory=list)


class Repository:
    """In-memory versioned warehouse with indexes and classification."""

    def __init__(
        self,
        classifier: Optional[SemanticClassifier] = None,
        clock: Optional[Clock] = None,
        keep_versions: int = 8,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.classifier = (
            classifier if classifier is not None else SemanticClassifier()
        )
        self.clock = clock if clock is not None else SimulatedClock()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        tracer = StageTracer(self.metrics)
        self._xml_latency = tracer.stage_histogram(STAGE_REPOSITORY_STORE_XML)
        self._html_latency = tracer.stage_histogram(
            STAGE_REPOSITORY_STORE_HTML
        )
        self.indexes = WarehouseIndexes()
        self.keep_versions = max(1, keep_versions)
        self._by_url: Dict[str, int] = {}
        self._docs: Dict[int, _StoredDocument] = {}
        self._next_doc_id = 1

    # -- storing -----------------------------------------------------------

    def store_xml(
        self, url: str, content: Union[str, Document]
    ) -> FetchOutcome:
        """Load one fetched XML page; returns the change outcome.

        Instrumentation: a successful store observes one latency sample on
        ``repository.store_xml.latency_seconds`` and bumps
        ``repository.outcomes{kind=xml,status=...}``; a rejected page (the
        parser raised) records nothing here — the pipeline accounts for
        rejects with their reason.
        """
        start = self.metrics.now()
        outcome = self._store_xml(url, content)
        self._xml_latency.observe(self.metrics.now() - start)
        self.metrics.counter(
            COUNTER_REPOSITORY_OUTCOMES, kind=XML, status=outcome.status
        ).inc()
        return outcome

    def _store_xml(
        self, url: str, content: Union[str, Document]
    ) -> FetchOutcome:
        document = parse(content) if isinstance(content, str) else content
        now = self.clock.now()
        doc_id = self._by_url.get(url)
        if doc_id is None:
            return self._store_new_xml(url, document, now)
        stored = self._docs[doc_id]
        if stored.meta.kind != XML:
            raise RepositoryError(
                f"{url} was previously stored as {stored.meta.kind}"
            )
        assert stored.current is not None and stored.xid_space is not None
        stored.meta.last_accessed = now
        new_signature = document_signature(document)
        if new_signature == stored.meta.signature:
            return FetchOutcome(
                meta=stored.meta,
                status=DOC_UNCHANGED,
                document=stored.current,
            )
        try:
            delta = compute_delta(stored.current, document, stored.xid_space)
        except DiffError:
            # Root element changed: restart the lineage (same doc id).
            return self._restart_lineage(stored, document, now, new_signature)
        if not delta:
            # Content hash differs only through aspects the diff ignores
            # (e.g. DOCTYPE changes); treat as unchanged at element level.
            stored.meta.signature = new_signature
            return FetchOutcome(
                meta=stored.meta,
                status=DOC_UNCHANGED,
                document=stored.current,
            )
        old_document = stored.current
        stored.history.insert(0, (stored.meta.version, delta.inverted()))
        del stored.history[self.keep_versions - 1 :]
        stored.current = document
        stored.meta.version += 1
        stored.meta.last_updated = now
        stored.meta.signature = new_signature
        self._reindex(stored)
        return FetchOutcome(
            meta=stored.meta,
            status=DOC_UPDATED,
            document=document,
            old_document=old_document,
            delta=delta,
        )

    def _store_new_xml(
        self, url: str, document: Document, now: float
    ) -> FetchOutcome:
        doc_id = self._next_doc_id
        self._next_doc_id += 1
        xid_space = XidSpace()
        xid_space.assign_fresh(document.root)
        meta = DocumentMeta(
            doc_id=doc_id,
            url=url,
            kind=XML,
            dtd_url=document.dtd_url,
            last_accessed=now,
            last_updated=now,
            signature=document_signature(document),
            version=1,
        )
        if document.dtd_url is not None:
            meta.dtd_id = self.classifier.dtd_registry.register(
                document.dtd_url
            )
        meta.domain = self.classifier.classify(document)
        stored = _StoredDocument(
            meta=meta, current=document, xid_space=xid_space
        )
        self._by_url[url] = doc_id
        self._docs[doc_id] = stored
        self._reindex(stored)
        return FetchOutcome(meta=meta, status=DOC_NEW, document=document)

    def _restart_lineage(
        self,
        stored: _StoredDocument,
        document: Document,
        now: float,
        signature: int,
    ) -> FetchOutcome:
        old_document = stored.current
        xid_space = XidSpace()
        xid_space.assign_fresh(document.root)
        stored.current = document
        stored.xid_space = xid_space
        stored.history.clear()
        stored.meta.version += 1
        stored.meta.last_updated = now
        stored.meta.signature = signature
        stored.meta.dtd_url = document.dtd_url
        if document.dtd_url is not None:
            stored.meta.dtd_id = self.classifier.dtd_registry.register(
                document.dtd_url
            )
        stored.meta.domain = self.classifier.classify(document)
        self._reindex(stored)
        # No delta is available across a lineage restart; report the update
        # with both versions so document-level monitoring still fires.
        return FetchOutcome(
            meta=stored.meta,
            status=DOC_UPDATED,
            document=document,
            old_document=old_document,
            delta=None,
        )

    def store_html(self, url: str, content: str) -> FetchOutcome:
        """Track a non-warehoused HTML page: signature only."""
        start = self.metrics.now()
        outcome = self._store_html(url, content)
        self._html_latency.observe(self.metrics.now() - start)
        self.metrics.counter(
            COUNTER_REPOSITORY_OUTCOMES, kind=HTML, status=outcome.status
        ).inc()
        return outcome

    def _store_html(self, url: str, content: str) -> FetchOutcome:
        now = self.clock.now()
        signature = page_signature(content)
        doc_id = self._by_url.get(url)
        if doc_id is None:
            new_id = self._next_doc_id
            self._next_doc_id += 1
            meta = DocumentMeta(
                doc_id=new_id,
                url=url,
                kind=HTML,
                last_accessed=now,
                last_updated=now,
                signature=signature,
                version=1,
            )
            self._by_url[url] = new_id
            self._docs[new_id] = _StoredDocument(
                meta=meta, current=None, xid_space=None
            )
            return FetchOutcome(meta=meta, status=DOC_NEW)
        stored = self._docs[doc_id]
        stored.meta.last_accessed = now
        if stored.meta.signature == signature:
            return FetchOutcome(meta=stored.meta, status=DOC_UNCHANGED)
        stored.meta.signature = signature
        stored.meta.version += 1
        stored.meta.last_updated = now
        return FetchOutcome(meta=stored.meta, status=DOC_UPDATED)

    def _reindex(self, stored: _StoredDocument) -> None:
        assert stored.current is not None
        self.indexes.index_document(
            stored.meta.doc_id, stored.current, domain=stored.meta.domain
        )

    # -- reading ------------------------------------------------------------

    def meta_for_url(self, url: str) -> DocumentMeta:
        doc_id = self._by_url.get(url)
        if doc_id is None:
            raise DocumentNotFound(url)
        return self._docs[doc_id].meta

    def meta(self, doc_id: int) -> DocumentMeta:
        stored = self._docs.get(doc_id)
        if stored is None:
            raise DocumentNotFound(f"doc_id {doc_id}")
        return stored.meta

    def has_url(self, url: str) -> bool:
        return url in self._by_url

    def document(self, doc_id: int) -> Document:
        """Current version of an XML document (a defensive copy)."""
        stored = self._docs.get(doc_id)
        if stored is None:
            raise DocumentNotFound(f"doc_id {doc_id}")
        if stored.current is None:
            raise RepositoryError(
                f"{stored.meta.url} is an HTML page and is not warehoused"
            )
        return copy_document(stored.current)

    def document_for_url(self, url: str) -> Document:
        doc_id = self._by_url.get(url)
        if doc_id is None:
            raise DocumentNotFound(url)
        return self.document(doc_id)

    def version(self, doc_id: int, version: int) -> Document:
        """Reconstruct a retained older version by replaying inverted deltas."""
        stored = self._docs.get(doc_id)
        if stored is None:
            raise DocumentNotFound(f"doc_id {doc_id}")
        if stored.current is None:
            raise RepositoryError("HTML pages keep no versions")
        if version == stored.meta.version:
            return copy_document(stored.current)
        current = stored.current
        for older_version, inverted in stored.history:
            current = apply_delta(current, inverted)
            if older_version == version:
                return current
        raise RepositoryError(
            f"version {version} of doc {doc_id} is no longer retained"
        )

    def retained_versions(self, doc_id: int) -> List[int]:
        stored = self._docs.get(doc_id)
        if stored is None:
            raise DocumentNotFound(f"doc_id {doc_id}")
        versions = [stored.meta.version]
        versions.extend(older for older, _ in stored.history)
        return versions

    def remove(self, url: str) -> None:
        doc_id = self._by_url.pop(url, None)
        if doc_id is None:
            raise DocumentNotFound(url)
        self.indexes.unindex_document(doc_id)
        del self._docs[doc_id]

    # -- enumeration -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._docs)

    def all_meta(self) -> Iterable[DocumentMeta]:
        return [stored.meta for stored in self._docs.values()]

    def xml_doc_ids(self) -> List[int]:
        return [
            doc_id
            for doc_id, stored in self._docs.items()
            if stored.current is not None
        ]

    def add_importance(self, url: str, amount: float) -> None:
        """Subscriptions mentioning a page add importance (Section 2.2)."""
        doc_id = self._by_url.get(url)
        if doc_id is not None:
            self._docs[doc_id].meta.importance += amount
