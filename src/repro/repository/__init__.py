"""Warehouse: versioned document store, indexes, semantic classification.

Substitutes the Natix repository + index manager + semantic module of
Figure 1 with in-memory Python equivalents that expose what the monitoring
subsystem actually reads.
"""

from .clustering import ClusteredRepository
from .index import WarehouseIndexes
from .persistence import load_repository, save_repository
from .metadata import HTML, XML, DocumentMeta, filename_of
from .semantics import SemanticClassifier
from .store import FetchOutcome, Repository

__all__ = [
    "ClusteredRepository",
    "WarehouseIndexes",
    "load_repository",
    "save_repository",
    "HTML",
    "XML",
    "DocumentMeta",
    "filename_of",
    "SemanticClassifier",
    "FetchOutcome",
    "Repository",
]
