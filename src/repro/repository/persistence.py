"""Warehouse persistence: save/load a repository to a directory.

The original Natix store is disk-based; our in-memory substitute gains
durability through an explicit snapshot: one XML file per document version
chain plus a JSON manifest of metadata.  Reloading reproduces the current
versions, metadata, indexes and XID spaces (history chains are rebuilt
lazily — older versions are *not* persisted, matching what the monitoring
subsystem needs after a restart: the latest version to diff future fetches
against).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from ..diff.xids import XidSpace, max_xid
from ..errors import RepositoryError
from ..xmlstore.parser import parse
from ..xmlstore.serializer import serialize
from .metadata import XML, DocumentMeta
from .store import Repository, _StoredDocument

_MANIFEST = "manifest.json"


def save_repository(repository: Repository, directory: str) -> int:
    """Write the warehouse snapshot; returns the number of documents."""
    os.makedirs(directory, exist_ok=True)
    manifest = []
    for meta in repository.all_meta():
        entry: Dict = {
            "doc_id": meta.doc_id,
            "url": meta.url,
            "kind": meta.kind,
            "dtd_url": meta.dtd_url,
            "dtd_id": meta.dtd_id,
            "domain": meta.domain,
            "last_accessed": meta.last_accessed,
            "last_updated": meta.last_updated,
            "signature": meta.signature,
            "version": meta.version,
            "importance": meta.importance,
        }
        if meta.is_xml:
            document = repository.document(meta.doc_id)
            stored = repository._docs[meta.doc_id]
            entry["file"] = f"doc-{meta.doc_id}.xml"
            entry["xids"] = _xid_list(document)
            assert stored.xid_space is not None
            entry["next_xid"] = stored.xid_space.next_xid
            path = os.path.join(directory, entry["file"])
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(serialize(document))
        manifest.append(entry)
    manifest_path = os.path.join(directory, _MANIFEST)
    temp = manifest_path + ".tmp"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump({"documents": manifest}, handle)
    os.replace(temp, manifest_path)
    return len(manifest)


def load_repository(
    repository: Repository, directory: str
) -> int:
    """Populate an *empty* repository from a snapshot; returns the count."""
    if len(repository):
        raise RepositoryError("load_repository needs an empty repository")
    manifest_path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise RepositoryError(f"no warehouse snapshot in {directory!r}")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    max_doc_id = 0
    for entry in manifest["documents"]:
        meta = DocumentMeta(
            doc_id=entry["doc_id"],
            url=entry["url"],
            kind=entry["kind"],
            dtd_url=entry["dtd_url"],
            dtd_id=entry["dtd_id"],
            domain=entry["domain"],
            last_accessed=entry["last_accessed"],
            last_updated=entry["last_updated"],
            signature=entry["signature"],
            version=entry["version"],
            importance=entry["importance"],
        )
        document = None
        xid_space: Optional[XidSpace] = None
        if entry["kind"] == XML:
            path = os.path.join(directory, entry["file"])
            with open(path, "r", encoding="utf-8") as handle:
                document = parse(handle.read())
            _apply_xid_list(document, entry["xids"])
            floor = max(entry.get("next_xid", 1), max_xid(document) + 1)
            xid_space = XidSpace(first_xid=floor)
        stored = _StoredDocument(
            meta=meta, current=document, xid_space=xid_space
        )
        repository._by_url[meta.url] = meta.doc_id
        repository._docs[meta.doc_id] = stored
        if document is not None:
            if meta.dtd_url is not None:
                repository.classifier.dtd_registry.register(meta.dtd_url)
            repository.indexes.index_document(
                meta.doc_id, document, domain=meta.domain
            )
        max_doc_id = max(max_doc_id, meta.doc_id)
    repository._next_doc_id = max_doc_id + 1
    return len(manifest["documents"])


def _xid_list(document) -> list:
    return [node.xid for node in document.preorder()]


def _apply_xid_list(document, xids: list) -> None:
    nodes = list(document.preorder())
    if len(nodes) != len(xids):
        raise RepositoryError(
            "warehouse snapshot is corrupt: XID list does not match the"
            " document's node count"
        )
    for node, xid in zip(nodes, xids):
        node.xid = xid
