"""Per-document metadata kept by the warehouse.

The URL Alerter's atomic conditions (Section 5.1) read exactly these fields:
URL, filename (the tail of the URL), DOCID, DTDID, DTD url, semantic domain,
LastAccessed, LastUpdate, plus the page signature used to decide
changed/unchanged for non-warehoused (HTML) pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

XML = "xml"
HTML = "html"


def filename_of(url: str) -> str:
    """The tail of a URL (e.g. ``index.html``), per Section 5.1."""
    path = url.split("?", 1)[0].split("#", 1)[0]
    return path.rstrip("/").rsplit("/", 1)[-1]


@dataclass
class DocumentMeta:
    """Metadata row for one warehoused (or signature-tracked) document."""

    doc_id: int
    url: str
    kind: str = XML  # XML or HTML
    dtd_url: Optional[str] = None
    dtd_id: Optional[int] = None
    domain: Optional[str] = None
    #: Wall-clock (simulated) seconds of the last fetch of this page.
    last_accessed: float = 0.0
    #: Last fetch at which the content was found changed.
    last_updated: float = 0.0
    #: Whole-page signature (HTML pages keep only this).
    signature: int = 0
    #: Version counter, 1 for the first stored version.
    version: int = 0
    #: Importance score; subscriptions that mention a page explicitly add
    #: importance so the refresh module reads it more often (Section 2.2).
    importance: float = 1.0
    filename: str = field(default="", init=False)

    def __post_init__(self):
        self.filename = filename_of(self.url)

    @property
    def is_xml(self) -> bool:
        return self.kind == XML
