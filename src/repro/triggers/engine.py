"""The Trigger Engine (Section 3).

"The Trigger Engine can trigger an external action either upon receiving a
notification, or at a given date.  In our setting, it is in charge of
evaluating the continuous queries either when a particular notification is
detected or regularly (e.g., biweekly).  The query code combined with the
result of the query forms a notification that is sent to the Reporter."

``delta`` continuous queries (Section 5.2) keep the previous result
version: after the first full answer, only the modifications of the result
are delivered, as a ``<Name-delta>`` element built from the versioning
subsystem's delta (insertions/updates carry XIDs, the paper's naming
scheme).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..clock import Clock, SimulatedClock
from ..diff import XidSpace, compute_delta
from ..errors import TriggerError
from ..language.ast import ContinuousQuery
from ..observability.metrics import MetricsRegistry, NULL_REGISTRY
from ..observability.names import (
    COUNTER_TRIGGER_EVALUATIONS,
    STAGE_TRIGGERS_TICK,
)
from ..observability.tracing import StageTracer
from ..language.frequencies import period_seconds
from ..query.engine import QueryEngine
from ..xmlstore.nodes import Document, ElementNode

#: deliver(subscription_id, query_name, elements)
DeliverCallback = Callable[[int, str, List[ElementNode]], None]
#: A scheduled external action.
Action = Callable[[], None]


@dataclass
class _RegisteredQuery:
    subscription_id: int
    definition: ContinuousQuery
    next_due: Optional[float] = None
    previous_result: Optional[Document] = None
    xid_space: XidSpace = field(default_factory=XidSpace)
    evaluations: int = 0


@dataclass
class TriggerStats:
    evaluations: int = 0
    notifications_emitted: int = 0
    actions_fired: int = 0


class TriggerEngine:
    def __init__(
        self,
        query_engine: QueryEngine,
        deliver: DeliverCallback,
        clock: Optional[Clock] = None,
        answer_store=None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        """``answer_store`` (a
        :class:`~repro.triggers.answers.QueryAnswerStore`) optionally
        versions every evaluation's answer (Section 2.2)."""
        self.query_engine = query_engine
        self.deliver = deliver
        self.clock = clock if clock is not None else SimulatedClock()
        self.answer_store = answer_store
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._tick_latency = StageTracer(self.metrics).stage_histogram(
            STAGE_TRIGGERS_TICK
        )
        self._evaluations = self.metrics.counter(COUNTER_TRIGGER_EVALUATIONS)
        self.stats = TriggerStats()
        self._queries: Dict[Tuple[int, str], _RegisteredQuery] = {}
        #: (subscription_name, monitoring_query_name) -> [(sub_id, cq name)]
        self._notification_triggers: Dict[
            Tuple[str, str], List[Tuple[int, str]]
        ] = {}
        #: External actions on notifications (the generic use the paper
        #: suggests: analysis, classification, versioning ...).
        self._notification_actions: Dict[Tuple[str, str], List[Action]] = {}
        #: (due time, sequence, action) heap for date-based actions.
        self._scheduled_actions: List[Tuple[float, int, Action]] = []
        self._sequence = itertools.count()

    # -- registration ---------------------------------------------------------

    def register(
        self,
        subscription_id: int,
        subscription_name: str,
        definition: ContinuousQuery,
    ) -> None:
        key = (subscription_id, definition.name)
        if key in self._queries:
            raise TriggerError(
                f"continuous query {definition.name!r} already registered"
                f" for subscription {subscription_id}"
            )
        registered = _RegisteredQuery(
            subscription_id=subscription_id, definition=definition
        )
        if definition.frequency is not None:
            period = period_seconds(definition.frequency)
            registered.next_due = self.clock.now() + period
        elif definition.trigger is not None:
            trigger_key = (
                definition.trigger.subscription,
                definition.trigger.query,
            )
            self._notification_triggers.setdefault(trigger_key, []).append(
                key
            )
        else:
            raise TriggerError(
                f"continuous query {definition.name!r} has neither a"
                " frequency nor a trigger"
            )
        self._queries[key] = registered

    def unregister_subscription(self, subscription_id: int) -> None:
        for key in [k for k in self._queries if k[0] == subscription_id]:
            del self._queries[key]
        if self.answer_store is not None:
            self.answer_store.drop(subscription_id)
        for trigger_key in list(self._notification_triggers):
            remaining = [
                k
                for k in self._notification_triggers[trigger_key]
                if k[0] != subscription_id
            ]
            if remaining:
                self._notification_triggers[trigger_key] = remaining
            else:
                del self._notification_triggers[trigger_key]

    # -- external actions (generic Trigger Engine surface) -----------------------

    def schedule_action(self, at: float, action: Action) -> None:
        """Run ``action`` at absolute (simulated) time ``at``."""
        heapq.heappush(
            self._scheduled_actions, (at, next(self._sequence), action)
        )

    def on_notification(
        self, subscription_name: str, query_name: str, action: Action
    ) -> None:
        self._notification_actions.setdefault(
            (subscription_name, query_name), []
        ).append(action)

    # -- firing -----------------------------------------------------------------

    def tick(self) -> int:
        """Evaluate all due periodic queries and scheduled actions.

        Returns the number of continuous-query evaluations performed.
        """
        start = self.metrics.now()
        evaluated = self._tick()
        self._tick_latency.observe(self.metrics.now() - start)
        if evaluated:
            self._evaluations.inc(evaluated)
        return evaluated

    def _tick(self) -> int:
        now = self.clock.now()
        evaluated = 0
        while self._scheduled_actions and self._scheduled_actions[0][0] <= now:
            _, _, action = heapq.heappop(self._scheduled_actions)
            action()
            self.stats.actions_fired += 1
        for registered in self._queries.values():
            if registered.next_due is None or registered.next_due > now:
                continue
            period = period_seconds(registered.definition.frequency or "")
            # Catch up without emitting duplicate evaluations for long gaps.
            while registered.next_due is not None and registered.next_due <= now:
                registered.next_due += period
            self._evaluate(registered)
            evaluated += 1
        return evaluated

    def notification_received(
        self, subscription_name: str, query_name: str
    ) -> int:
        """A monitoring notification arrived: fire dependent queries/actions."""
        fired = 0
        for action in self._notification_actions.get(
            (subscription_name, query_name), ()
        ):
            action()
            self.stats.actions_fired += 1
        for key in self._notification_triggers.get(
            (subscription_name, query_name), ()
        ):
            registered = self._queries.get(key)
            if registered is not None:
                self._evaluate(registered)
                fired += 1
        return fired

    # -- evaluation -----------------------------------------------------------------

    def _evaluate(self, registered: _RegisteredQuery) -> None:
        definition = registered.definition
        result = self.query_engine.evaluate(
            definition.query_text, name=definition.name
        )
        self.stats.evaluations += 1
        registered.evaluations += 1
        result_document = result.to_document()
        if self.answer_store is not None:
            self.answer_store.record(
                registered.subscription_id,
                definition.name,
                result_document,
                evaluated_at=self.clock.now(),
            )
        if not definition.delta:
            self.deliver(
                registered.subscription_id,
                definition.name,
                [result_document.root],
            )
            self.stats.notifications_emitted += 1
            return
        # Delta mode: first answer in full, then only the modifications.
        if registered.previous_result is None:
            registered.xid_space.assign_fresh(result_document.root)
            registered.previous_result = result_document
            self.deliver(
                registered.subscription_id,
                definition.name,
                [result_document.root],
            )
            self.stats.notifications_emitted += 1
            return
        delta = compute_delta(
            registered.previous_result, result_document, registered.xid_space
        )
        registered.previous_result = result_document
        if not delta:
            return
        delta_element = delta.to_element(name=f"{definition.name}-delta")
        self.deliver(
            registered.subscription_id, definition.name, [delta_element]
        )
        self.stats.notifications_emitted += 1
