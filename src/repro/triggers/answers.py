"""Versioning of query answers (Section 2.2).

"Changes may also be discovered by regularly asking the same query and
discovering changes in the answer.  In that sense, the versioning of query
answers (not detailed here) is an important aspect of a change control
system."

:class:`QueryAnswerStore` keeps a bounded version chain per continuous
query — newest answer in full plus inverted deltas, the same layout the
document repository uses — so users can ask "what did AmsterdamPaintings
answer three evaluations ago?" and diff any two retained answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..diff import (
    Delta,
    XidSpace,
    apply_delta,
    compute_delta,
    copy_document,
)
from ..errors import DiffError, TriggerError
from ..xmlstore.nodes import Document

#: A query answer is identified by (subscription id, query name).
AnswerKey = Tuple[int, str]


@dataclass
class _AnswerChain:
    current: Document
    version: int
    xid_space: XidSpace
    #: (older version number, delta newest->older), newest first.
    history: List[Tuple[int, Delta]] = field(default_factory=list)
    evaluated_at: float = 0.0


class QueryAnswerStore:
    """Bounded version chains for continuous-query answers."""

    def __init__(self, keep_versions: int = 8):
        self.keep_versions = max(1, keep_versions)
        self._chains: Dict[AnswerKey, _AnswerChain] = {}

    # -- recording -----------------------------------------------------------

    def record(
        self,
        subscription_id: int,
        query_name: str,
        answer: Document,
        evaluated_at: float = 0.0,
    ) -> Tuple[int, Optional[Delta]]:
        """Store one evaluation's answer.

        Returns ``(version, delta)`` where ``delta`` maps the previous
        answer onto this one (None for the first evaluation, empty Delta
        when the answer did not change — in which case no new version is
        created).
        """
        key = (subscription_id, query_name)
        chain = self._chains.get(key)
        answer = copy_document(answer)
        if chain is None:
            xid_space = XidSpace()
            for node in answer.preorder():
                node.xid = None
            xid_space.assign_fresh(answer.root)
            self._chains[key] = _AnswerChain(
                current=answer,
                version=1,
                xid_space=xid_space,
                evaluated_at=evaluated_at,
            )
            return 1, None
        for node in answer.preorder():
            node.xid = None
        try:
            delta = compute_delta(chain.current, answer, chain.xid_space)
        except DiffError:
            # The answer's root element changed (query rewritten): restart.
            xid_space = XidSpace()
            xid_space.assign_fresh(answer.root)
            chain.current = answer
            chain.version += 1
            chain.xid_space = xid_space
            chain.history.clear()
            chain.evaluated_at = evaluated_at
            return chain.version, None
        if not delta:
            chain.evaluated_at = evaluated_at
            return chain.version, delta
        chain.history.insert(0, (chain.version, delta.inverted()))
        del chain.history[self.keep_versions - 1 :]
        chain.current = answer
        chain.version += 1
        chain.evaluated_at = evaluated_at
        return chain.version, delta

    # -- reading ----------------------------------------------------------------

    def latest(self, subscription_id: int, query_name: str) -> Document:
        chain = self._require((subscription_id, query_name))
        return copy_document(chain.current)

    def latest_version(self, subscription_id: int, query_name: str) -> int:
        return self._require((subscription_id, query_name)).version

    def version(
        self, subscription_id: int, query_name: str, version: int
    ) -> Document:
        chain = self._require((subscription_id, query_name))
        if version == chain.version:
            return copy_document(chain.current)
        current = chain.current
        for older_version, inverted in chain.history:
            current = apply_delta(current, inverted)
            if older_version == version:
                return current
        raise TriggerError(
            f"answer version {version} of {query_name!r} is not retained"
        )

    def retained_versions(
        self, subscription_id: int, query_name: str
    ) -> List[int]:
        chain = self._require((subscription_id, query_name))
        return [chain.version] + [older for older, _ in chain.history]

    def diff(
        self,
        subscription_id: int,
        query_name: str,
        from_version: int,
        to_version: int,
    ) -> Delta:
        """Delta between two retained answer versions."""
        older = self.version(subscription_id, query_name, from_version)
        newer = self.version(subscription_id, query_name, to_version)
        space = XidSpace()
        space.assign_fresh(older.root)
        return compute_delta(older, newer, space)

    def drop(self, subscription_id: int) -> None:
        for key in [k for k in self._chains if k[0] == subscription_id]:
            del self._chains[key]

    def _require(self, key: AnswerKey) -> _AnswerChain:
        chain = self._chains.get(key)
        if chain is None:
            raise TriggerError(
                f"no recorded answers for query {key[1]!r} of subscription"
                f" {key[0]}"
            )
        return chain
