"""Trigger Engine: periodic and notification-triggered continuous queries,
plus versioning of query answers."""

from .answers import QueryAnswerStore
from .engine import TriggerEngine, TriggerStats

__all__ = ["QueryAnswerStore", "TriggerEngine", "TriggerStats"]
