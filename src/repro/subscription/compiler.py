"""Subscription compilation: AST -> registrations across the system.

The Subscription Manager "chooses the internal codes of atomic events and
(dynamically) warns the Alerters of the creation of new events ... It
controls in a similar manner the Monitoring Query Processor for managing
complex events, the Trigger Engine for continuous queries and the
Reporter(s) for reports" (Section 3).  This module is that wiring:

* each monitoring query becomes a complex event in the MQP, its atomic
  conditions become interned atomic events registered with the alerter
  chain, and a :class:`NotificationBinding` records how to render its
  notifications;
* continuous queries are registered with the Trigger Engine;
* the report section (or a default ``when immediate``) goes to the
  Reporter;
* refresh statements add importance to the mentioned pages (Section 2.2)
  and are exposed as crawler hints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..alerters.chain import AlerterChain
from ..core.events import AtomicEventKey
from ..language.ast import (
    ImmediateCondition,
    MonitoringQuery,
    ReportCondition,
    ReportSpec,
    Subscription,
)
from ..language.conditions import condition_event_key
from ..language.frequencies import period_seconds
from ..reporting.reporter import Reporter, ReportRegistration
from ..triggers.engine import TriggerEngine
from .rendering import NotificationBinding, item_event_codes

#: Default report section when a subscription omits one.
DEFAULT_REPORT = ReportSpec(
    when=ReportCondition(terms=(ImmediateCondition(),))
)


@dataclass
class CompiledSubscription:
    subscription_id: int
    name: str
    source_text: str
    owner_email: Optional[str] = None
    recipients: Tuple[str, ...] = ()
    privileged: bool = False
    active: bool = True
    #: Complex-event codes registered for this subscription's monitoring
    #: queries, aligned with the parsed ``monitoring`` list.
    complex_codes: List[int] = field(default_factory=list)
    #: Per complex code: (unique event keys, their atomic codes).
    event_keys: Dict[int, List[Tuple[AtomicEventKey, int]]] = field(
        default_factory=dict
    )
    bindings: Dict[int, NotificationBinding] = field(default_factory=dict)
    #: (target subscription name, query name or None) virtual references.
    virtual_refs: List[Tuple[str, Optional[str]]] = field(default_factory=list)
    #: url -> refresh period in seconds (crawler hints).
    refresh_hints: Dict[str, float] = field(default_factory=dict)


class SubscriptionCompiler:
    """Performs the registrations for one subscription."""

    def __init__(
        self,
        processor,  # MonitoringQueryProcessor or a sharded facade
        alerter_chain: AlerterChain,
        trigger_engine: Optional[TriggerEngine],
        reporter: Optional[Reporter],
        repository=None,
    ):
        self.processor = processor
        self.alerter_chain = alerter_chain
        self.trigger_engine = trigger_engine
        self.reporter = reporter
        self.repository = repository
        #: Alerter-side refcounts: atomic code -> registrations using it.
        self._alerted: Dict[int, int] = {}

    # -- compile -----------------------------------------------------------------

    def compile(
        self,
        subscription_id: int,
        subscription: Subscription,
        source_text: str,
        owner_email: Optional[str] = None,
        recipients: Tuple[str, ...] = (),
        privileged: bool = False,
    ) -> CompiledSubscription:
        compiled = CompiledSubscription(
            subscription_id=subscription_id,
            name=subscription.name,
            source_text=source_text,
            owner_email=owner_email,
            recipients=recipients,
            privileged=privileged,
        )
        for index, query in enumerate(subscription.monitoring):
            self._compile_monitoring(compiled, subscription, index, query)
        if self.trigger_engine is not None:
            for continuous in subscription.continuous:
                self.trigger_engine.register(
                    subscription_id, subscription.name, continuous
                )
        if self.reporter is not None:
            report = subscription.report or DEFAULT_REPORT
            self.reporter.register(
                ReportRegistration(
                    subscription_id=subscription_id,
                    when=report.when,
                    recipients=recipients,
                    report_query=report.query_text,
                    atmost_count=report.atmost_count,
                    atmost_frequency=report.atmost_frequency,
                    archive_frequency=report.archive_frequency,
                )
            )
        for refresh in subscription.refreshes:
            compiled.refresh_hints[refresh.url] = period_seconds(
                refresh.frequency
            )
            if self.repository is not None:
                self.repository.add_importance(refresh.url, 1.0)
        for virtual in subscription.virtuals:
            compiled.virtual_refs.append((virtual.subscription, virtual.query))
        return compiled

    def _compile_monitoring(
        self,
        compiled: CompiledSubscription,
        subscription: Subscription,
        index: int,
        query: MonitoringQuery,
    ) -> None:
        """Register one complex event per disjunct of the where clause.

        All of a query's disjuncts share one :class:`NotificationBinding`
        (same query name, same select); the Subscription Manager
        deduplicates per-document batches so a document matching several
        disjuncts notifies once.
        """
        query_name = query.name or f"Q{index + 1}"
        registry = self.processor.registry
        merged_item_codes: Dict[str, int] = {}
        disjunct_events = []
        for disjunct in query.all_disjuncts():
            keys = [
                condition_event_key(condition, query.from_bindings)
                for condition in disjunct
            ]
            event = self.processor.register(keys)
            condition_codes: List[int] = []
            unique: Dict[AtomicEventKey, int] = {}
            for key in keys:
                code = registry.atomic_code(key)
                assert code is not None
                condition_codes.append(code)
                unique[key] = code
            for key, code in unique.items():
                count = self._alerted.get(code, 0)
                if count == 0:
                    self.alerter_chain.register(code, key)
                self._alerted[code] = count + 1
            if self.repository is not None:
                # "Subscriptions influence the refreshing of pages only by
                # adding importance to the pages they explicitly mention"
                # (Section 2.2) — exact-URL conditions mention a page.
                for condition in disjunct:
                    if condition.kind == "url_eq" and condition.string:
                        self.repository.add_importance(
                            condition.string, 0.5
                        )
            narrowed = MonitoringQuery(
                name=query.name,
                select=query.select,
                from_bindings=query.from_bindings,
                conditions=disjunct,
            )
            for item, code in item_event_codes(
                narrowed, condition_codes
            ).items():
                merged_item_codes.setdefault(item, code)
            disjunct_events.append((event, unique))

        binding = NotificationBinding(
            subscription_id=compiled.subscription_id,
            subscription_name=subscription.name,
            query_name=query_name,
            select=query.select,
            item_codes=merged_item_codes,
        )
        for event, unique in disjunct_events:
            compiled.complex_codes.append(event.code)
            compiled.event_keys[event.code] = list(unique.items())
            compiled.bindings[event.code] = binding

    # -- decompile ------------------------------------------------------------------

    def release(self, compiled: CompiledSubscription) -> None:
        """Undo every registration of :meth:`compile`."""
        for complex_code in compiled.complex_codes:
            self.processor.unregister(complex_code)
            for key, code in compiled.event_keys.get(complex_code, ()):
                count = self._alerted.get(code, 0) - 1
                if count <= 0:
                    self._alerted.pop(code, None)
                    self.alerter_chain.unregister(code, key)
                else:
                    self._alerted[code] = count
        if self.trigger_engine is not None:
            self.trigger_engine.unregister_subscription(
                compiled.subscription_id
            )
        if self.reporter is not None:
            self.reporter.unregister(compiled.subscription_id)
