"""Notification rendering: MQP notifications -> XML elements.

A monitoring query's ``select`` clause decides what a notification carries
(Section 5.1).  Three cases:

* **template** — ``select <UpdatedPage url=URL/>``: the XML template is
  instantiated per notification; unquoted attribute values naming a pseudo
  variable are substituted (``URL`` — the document URL, ``DATE`` — the
  detection timestamp, ``DOCID`` where known).
* **items** — ``select X`` with ``from self//Member X``: the alerter put the
  matched elements for X's condition in the alert's data payload; they are
  parsed back and emitted as the notification content.
* **default** — the paper's implemented behaviour ("notifications simply
  return the URL of the document that triggered the monitoring query and
  basic informations"): ``<Notification query=... url=... date=.../>``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.processor import Notification
from ..errors import SubscriptionError, XMLSyntaxError
from ..language.ast import MonitoringQuery, SelectSpec
from ..xmlstore.nodes import ElementNode
from ..xmlstore.parser import parse

#: Unquoted attribute value referencing a variable: ``url=URL``.
_UNQUOTED_ATTR_RE = re.compile(r"=\s*([A-Za-z_][A-Za-z0-9_]*)")


@dataclass
class NotificationBinding:
    """Everything needed to render notifications of one complex event."""

    subscription_id: int
    subscription_name: str
    query_name: str
    select: SelectSpec
    #: select item -> atomic event code whose payload carries its matches.
    item_codes: Dict[str, int]

    def render(self, notification: Notification) -> List[ElementNode]:
        if self.select.template is not None:
            return [_instantiate_template(self.select.template, notification)]
        if self.select.items:
            elements: List[ElementNode] = []
            for item in self.select.items:
                code = self.item_codes.get(item)
                payloads = (
                    notification.data.get(code, []) if code is not None else []
                )
                for payload in payloads:
                    try:
                        elements.append(parse(payload).root)
                    except XMLSyntaxError:
                        wrapper = ElementNode("value")
                        wrapper.append_text(str(payload))
                        elements.append(wrapper)
            if elements:
                return elements
        return [_default_notification(self.query_name, notification)]


def _default_notification(
    query_name: str, notification: Notification
) -> ElementNode:
    return ElementNode(
        "Notification",
        {
            "query": query_name,
            "url": notification.document_url,
            "date": f"{notification.timestamp:.0f}",
        },
    )


def _instantiate_template(
    template: str, notification: Notification
) -> ElementNode:
    values = {
        "URL": notification.document_url,
        "DATE": f"{notification.timestamp:.0f}",
    }

    def substitute(match: "re.Match[str]") -> str:
        name = match.group(1)
        value = values.get(name)
        if value is None:
            # Not a pseudo variable: keep it as a literal (quoted) token so
            # the XML parser accepts the template.
            value = name
        return f'="{value}"'

    quoted = _UNQUOTED_ATTR_RE.sub(substitute, template)
    try:
        return parse(quoted).root
    except XMLSyntaxError as exc:
        raise SubscriptionError(
            f"cannot instantiate select template {template!r}: {exc}"
        ) from exc


def item_event_codes(
    query: MonitoringQuery,
    condition_codes: List[int],
) -> Dict[str, int]:
    """Map each select item to the atomic-event code of its condition.

    ``condition_codes`` holds the interned code of each condition, aligned
    with ``query.conditions``.  An item maps to the first element condition
    targeting the same variable — directly (``new X``) or through the tag
    the variable's binding path resolves to (``from self//Product X`` +
    ``new Product``).
    """
    from ..language.conditions import resolve_target_tag

    mapping: Dict[str, int] = {}
    for item in query.select.items:
        variable = item.split("/", 1)[0].split("@", 1)[0]
        try:
            variable_tag: Optional[str] = resolve_target_tag(
                variable, query.from_bindings
            )
        except SubscriptionError:
            variable_tag = None
        for condition, code in zip(query.conditions, condition_codes):
            if condition.kind != "element":
                continue
            target_tag = resolve_target_tag(
                condition.target or "", query.from_bindings
            )
            if condition.target == variable or (
                variable_tag is not None and target_tag == variable_tag
            ):
                mapping[item] = code
                break
    return mapping
