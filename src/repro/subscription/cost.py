"""Subscription cost control (Section 5.4).

"The cost of some monitoring or continuous queries may be quite
prohibitive.  This is the reason why we only allow the condition extend
URL, and not the matching of an arbitrary pattern.  Similarly, one would
like to prevent the use of contains conditions on too common a word such
as 'the' ... we do not want to trigger a continuous query with too
frequent an event."

The controller applies these a-priori checks; users with the ``privileged``
flag bypass them ("restrict the right of specifying expensive subscriptions
to users with appropriate privileges").  A-posteriori inhibition is the
Subscription Manager's ``inhibit``.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..errors import ResourceLimitError
from ..language.ast import (
    AtomicCondition,
    ELEMENT,
    SELF_CONTAINS,
    Subscription,
    URL_EXTENDS,
)
from ..language.frequencies import period_seconds
from ..repository.index import WarehouseIndexes
from ..xmlstore.words import DEFAULT_STOP_WORDS, normalize_word


class CostController:
    def __init__(
        self,
        stop_words: FrozenSet[str] = DEFAULT_STOP_WORDS,
        min_prefix_length: int = 8,
        min_trigger_period: str = "hourly",
        max_word_document_fraction: float = 0.5,
        indexes: Optional[WarehouseIndexes] = None,
        total_documents: int = 0,
    ):
        self.stop_words = stop_words
        self.min_prefix_length = min_prefix_length
        self.min_trigger_period_seconds = period_seconds(min_trigger_period)
        self.max_word_document_fraction = max_word_document_fraction
        #: When connected to the warehouse indexes, words whose document
        #: frequency exceeds the fraction are rejected even if not in the
        #: static stop list.
        self.indexes = indexes
        self.total_documents = total_documents

    # -- public API ------------------------------------------------------------

    def check_subscription(
        self, subscription: Subscription, privileged: bool = False
    ) -> None:
        """Raise :class:`ResourceLimitError` on the first violation."""
        if privileged:
            return
        for query in subscription.monitoring:
            for disjunct in query.all_disjuncts():
                for condition in disjunct:
                    self._check_condition(condition)
        for continuous in subscription.continuous:
            if continuous.frequency is not None:
                if (
                    period_seconds(continuous.frequency)
                    < self.min_trigger_period_seconds
                ):
                    raise ResourceLimitError(
                        f"continuous query {continuous.name!r} would run more"
                        f" often than the allowed minimum period"
                    )
        for refresh in subscription.refreshes:
            if (
                period_seconds(refresh.frequency)
                < self.min_trigger_period_seconds
            ):
                raise ResourceLimitError(
                    f"refresh of {refresh.url!r} would run more often than"
                    " the allowed minimum period"
                )

    # -- checks -----------------------------------------------------------------

    def _check_condition(self, condition: AtomicCondition) -> None:
        if condition.kind == URL_EXTENDS:
            prefix = condition.string or ""
            if len(prefix) < self.min_prefix_length:
                raise ResourceLimitError(
                    f"URL prefix {prefix!r} is too wide (shorter than"
                    f" {self.min_prefix_length} characters)"
                )
            return
        word: Optional[str] = None
        if condition.kind == SELF_CONTAINS:
            word = condition.string
        elif condition.kind == ELEMENT and condition.string is not None:
            word = condition.string
        if word is None:
            return
        normalized = normalize_word(word)
        if normalized in self.stop_words:
            raise ResourceLimitError(
                f"contains condition on too common a word {word!r}"
            )
        if self.indexes is not None and self.total_documents > 0:
            frequency = self.indexes.word_frequency(normalized)
            if (
                frequency / self.total_documents
                > self.max_word_document_fraction
            ):
                raise ResourceLimitError(
                    f"word {word!r} appears in {frequency} of"
                    f" {self.total_documents} documents; too common to"
                    " monitor"
                )
