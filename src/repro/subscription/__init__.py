"""Subscription Manager: lifecycle, compilation, routing, persistence."""

from .compiler import CompiledSubscription, SubscriptionCompiler
from .cost import CostController
from .manager import SubscriptionManager
from .rendering import NotificationBinding

__all__ = [
    "CompiledSubscription",
    "SubscriptionCompiler",
    "CostController",
    "SubscriptionManager",
    "NotificationBinding",
]
