"""The (Xyleme) Subscription Manager — Section 3.

Responsibilities reproduced from the paper:

* interface for inserting / deleting / modifying subscriptions (here a
  Python API; the original sat behind an Apache form);
* parsing and validating subscription text (the "Xyleme specific module");
* choosing event codes and controlling the Alerters, the MQP, the Trigger
  Engine and the Reporter (delegated to :class:`SubscriptionCompiler`);
* persistence and recovery through a SQL database (``repro.minisql``
  standing in for MySQL) — user emails included;
* routing MQP notifications to the Reporter / Trigger Engine, including
  *virtual subscriptions* (Section 5.4) that piggyback on another user's
  monitoring queries;
* cost control (Section 5.4) a priori via :class:`CostController` and a
  posteriori via :meth:`inhibit`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from ..core.processor import Notification
from ..errors import ReportingError, SubscriptionError
from ..language.ast import Subscription
from ..language.parser import parse_subscription
from ..language.unparse import unparse
from ..language.validate import validate_subscription
from ..minisql import (
    BOOLEAN,
    Column,
    Database,
    Eq,
    INTEGER,
    TEXT,
    schema,
)
from .compiler import CompiledSubscription, SubscriptionCompiler
from .cost import CostController

_SUBSCRIPTIONS_SCHEMA = schema(
    "subscriptions",
    Column("id", INTEGER, primary_key=True),
    Column("name", TEXT, nullable=False),
    Column("owner_email", TEXT),
    Column("recipients", TEXT, nullable=False),
    Column("source", TEXT, nullable=False),
    Column("privileged", BOOLEAN, nullable=False),
    Column("active", BOOLEAN, nullable=False),
)
_USERS_SCHEMA = schema(
    "users",
    Column("email", TEXT, primary_key=True),
    Column("privileged", BOOLEAN, nullable=False),
)


class SubscriptionManager:
    def __init__(
        self,
        compiler: SubscriptionCompiler,
        cost_controller: Optional[CostController] = None,
        database: Optional[Database] = None,
    ):
        self.compiler = compiler
        self.cost_controller = (
            cost_controller if cost_controller is not None else CostController()
        )
        self.database = database if database is not None else Database()
        if not self.database.has_table("subscriptions"):
            self.database.create_table(_SUBSCRIPTIONS_SCHEMA)
        if not self.database.has_table("users"):
            self.database.create_table(_USERS_SCHEMA)
        self._next_id = 1 + max(
            (row["id"] for row in self.database.table("subscriptions").rows()),
            default=0,
        )
        self._subscriptions: Dict[int, CompiledSubscription] = {}
        self._id_by_name: Dict[str, int] = {}
        #: complex code -> owning compiled subscription (binding lookup).
        self._code_owner: Dict[int, int] = {}
        #: (subscription name, query name or None) -> virtual subscriber ids.
        self._virtual_subscribers: Dict[
            Tuple[str, Optional[str]], Set[int]
        ] = {}

    # -- user management ---------------------------------------------------------

    def register_user(self, email: str, privileged: bool = False) -> None:
        users = self.database.table("users")
        if users.get(email) is None:
            users.insert({"email": email, "privileged": privileged})
        else:
            users.update(Eq("email", email), {"privileged": privileged})

    def is_privileged(self, email: Optional[str]) -> bool:
        if email is None:
            return False
        row = self.database.table("users").get(email)
        return bool(row and row["privileged"])

    # -- subscription lifecycle -----------------------------------------------------

    def add_subscription(
        self,
        source: Union[str, Subscription],
        owner_email: Optional[str] = None,
        recipients: Tuple[str, ...] = (),
        privileged: Optional[bool] = None,
    ) -> int:
        """Parse, validate, cost-check, persist and register a subscription.

        Returns the new subscription id.
        """
        if isinstance(source, str):
            source_text = source
            subscription = parse_subscription(source)
        else:
            # Programmatically-built AST: render canonical source so the
            # subscription is recoverable from the database like any other.
            subscription = source
            source_text = unparse(subscription)
        validate_subscription(subscription)
        if subscription.name in self._id_by_name:
            raise SubscriptionError(
                f"a subscription named {subscription.name!r} already exists"
            )
        if privileged is None:
            privileged = self.is_privileged(owner_email)
        self.cost_controller.check_subscription(
            subscription, privileged=privileged
        )
        if not recipients and owner_email is not None:
            recipients = (owner_email,)

        subscription_id = self._next_id
        self._next_id += 1
        compiled = self.compiler.compile(
            subscription_id,
            subscription,
            source_text,
            owner_email=owner_email,
            recipients=recipients,
            privileged=privileged,
        )
        self._install(compiled)
        self.database.table("subscriptions").insert(
            {
                "id": subscription_id,
                "name": subscription.name,
                "owner_email": owner_email,
                "recipients": ",".join(recipients),
                "source": source_text,
                "privileged": bool(privileged),
                "active": True,
            }
        )
        return subscription_id

    def _install(self, compiled: CompiledSubscription) -> None:
        self._subscriptions[compiled.subscription_id] = compiled
        self._id_by_name[compiled.name] = compiled.subscription_id
        for code in compiled.complex_codes:
            self._code_owner[code] = compiled.subscription_id
        for reference in compiled.virtual_refs:
            self._virtual_subscribers.setdefault(reference, set()).add(
                compiled.subscription_id
            )

    def remove_subscription(self, subscription_id: int) -> None:
        compiled = self._subscriptions.pop(subscription_id, None)
        if compiled is None:
            raise SubscriptionError(
                f"no subscription with id {subscription_id}"
            )
        self._id_by_name.pop(compiled.name, None)
        for code in compiled.complex_codes:
            self._code_owner.pop(code, None)
        for reference in compiled.virtual_refs:
            subscribers = self._virtual_subscribers.get(reference)
            if subscribers is not None:
                subscribers.discard(subscription_id)
                if not subscribers:
                    del self._virtual_subscribers[reference]
        self.compiler.release(compiled)
        self.database.table("subscriptions").delete(Eq("id", subscription_id))

    def update_subscription(
        self,
        subscription_id: int,
        source: Union[str, Subscription],
    ) -> None:
        """Replace a subscription's definition in place (same id).

        "Subscriptions keep being added, removed and updated while the
        system is running" (Section 4.1).  The report buffer restarts
        empty: pending notifications of the old definition are dropped
        (they may no longer match the new report query).
        """
        old = self._require(subscription_id)
        if isinstance(source, str):
            source_text = source
            subscription = parse_subscription(source)
        else:
            subscription = source
            source_text = unparse(subscription)
        validate_subscription(subscription)
        other_id = self._id_by_name.get(subscription.name)
        if other_id is not None and other_id != subscription_id:
            raise SubscriptionError(
                f"a subscription named {subscription.name!r} already exists"
            )
        self.cost_controller.check_subscription(
            subscription, privileged=old.privileged
        )
        # Tear down the old registrations, then compile the replacement
        # under the same id.
        was_active = old.active
        self.remove_subscription(subscription_id)
        compiled = self.compiler.compile(
            subscription_id,
            subscription,
            source_text,
            owner_email=old.owner_email,
            recipients=old.recipients,
            privileged=old.privileged,
        )
        compiled.active = was_active
        self._install(compiled)
        self.database.table("subscriptions").insert(
            {
                "id": subscription_id,
                "name": subscription.name,
                "owner_email": old.owner_email,
                "recipients": ",".join(old.recipients),
                "source": source_text,
                "privileged": bool(old.privileged),
                "active": was_active,
            }
        )

    def inhibit(self, subscription_id: int) -> None:
        """A-posteriori cost control: stop routing without deleting."""
        compiled = self._require(subscription_id)
        compiled.active = False
        self.database.table("subscriptions").update(
            Eq("id", subscription_id), {"active": False}
        )

    def resume(self, subscription_id: int) -> None:
        compiled = self._require(subscription_id)
        compiled.active = True
        self.database.table("subscriptions").update(
            Eq("id", subscription_id), {"active": True}
        )

    def _require(self, subscription_id: int) -> CompiledSubscription:
        compiled = self._subscriptions.get(subscription_id)
        if compiled is None:
            raise SubscriptionError(
                f"no subscription with id {subscription_id}"
            )
        return compiled

    # -- queries ------------------------------------------------------------------------

    def subscription_id(self, name: str) -> Optional[int]:
        return self._id_by_name.get(name)

    def subscription(self, subscription_id: int) -> CompiledSubscription:
        return self._require(subscription_id)

    def count(self) -> int:
        return len(self._subscriptions)

    def refresh_hints(self) -> Dict[str, float]:
        """url -> smallest requested refresh period across subscriptions."""
        hints: Dict[str, float] = {}
        for compiled in self._subscriptions.values():
            for url, period in compiled.refresh_hints.items():
                current = hints.get(url)
                if current is None or period < current:
                    hints[url] = period
        return hints

    # -- notification routing ----------------------------------------------------------

    def handle_notifications(self, batch: List[Notification]) -> None:
        """MQP sink: render and route one per-document notification batch."""
        reporter = self.compiler.reporter
        trigger_engine = self.compiler.trigger_engine
        # A batch covers one document; a query whose where clause has
        # several disjuncts may match through more than one complex event —
        # deliver it once.
        seen_bindings: Set[int] = set()
        for notification in batch:
            owner_id = self._code_owner.get(notification.complex_code)
            if owner_id is None:
                continue
            compiled = self._subscriptions.get(owner_id)
            if compiled is None or not compiled.active:
                continue
            binding = compiled.bindings.get(notification.complex_code)
            if binding is None:
                continue
            if id(binding) in seen_bindings:
                continue
            seen_bindings.add(id(binding))
            if reporter is not None:
                self._deliver(
                    reporter, owner_id, binding.query_name,
                    binding.render(notification),
                )
                for target_id in self._virtual_targets(
                    binding.subscription_name, binding.query_name
                ):
                    target = self._subscriptions.get(target_id)
                    if target is not None and target.active:
                        # Render fresh elements per buffer: report assembly
                        # reparents notification nodes.
                        self._deliver(
                            reporter, target_id, binding.query_name,
                            binding.render(notification),
                        )
            if trigger_engine is not None:
                trigger_engine.notification_received(
                    binding.subscription_name, binding.query_name
                )

    @staticmethod
    def _deliver(reporter, subscription_id, query_name, elements) -> None:
        try:
            reporter.deliver(subscription_id, query_name, elements)
        except ReportingError:
            # A subscription without a report buffer (pure trigger wiring)
            # simply drops its rendered notifications.
            pass

    def _virtual_targets(
        self, subscription_name: str, query_name: str
    ) -> Set[int]:
        targets: Set[int] = set()
        targets |= self._virtual_subscribers.get(
            (subscription_name, query_name), set()
        )
        targets |= self._virtual_subscribers.get(
            (subscription_name, None), set()
        )
        return targets

    # -- recovery -------------------------------------------------------------------------

    def recover(self) -> int:
        """Re-register every active persisted subscription (crash recovery).

        Call on a fresh manager whose database was recovered from its WAL;
        returns the number of subscriptions restored.
        """
        restored = 0
        rows = self.database.table("subscriptions").select(order_by="id")
        for row in rows:
            if row["id"] in self._subscriptions:
                continue
            subscription = parse_subscription(row["source"])
            recipients = tuple(
                r for r in (row["recipients"] or "").split(",") if r
            )
            compiled = self.compiler.compile(
                row["id"],
                subscription,
                row["source"],
                owner_email=row["owner_email"],
                recipients=recipients,
                privileged=bool(row["privileged"]),
            )
            compiled.active = bool(row["active"])
            self._install(compiled)
            if row["id"] >= self._next_id:
                self._next_id = row["id"] + 1
            restored += 1
        return restored
