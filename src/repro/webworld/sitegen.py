"""Synthetic web-site generation.

Produces the document families the paper's examples revolve around:

* **product catalogs** (``new Product``, ``updated Product contains
  "camera"``, Amazon-style URLs, a shared catalog DTD);
* **museum collections** (the AmsterdamPaintings continuous query);
* **member pages** (the ``self//Member`` monitoring example);
* **HTML pages** (signature-only monitoring).

Everything is driven by a seeded ``random.Random`` so streams are
reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..xmlstore.nodes import Document, ElementNode
from ..xmlstore.serializer import serialize
from .vocabulary import random_host, random_name, random_sentence

CATALOG_DTD = "http://dtd.example.org/catalog.dtd"
MUSEUM_DTD = "http://dtd.example.org/museum.dtd"
MEMBERS_DTD = "http://dtd.example.org/members.dtd"

PRODUCT_CATEGORIES = (
    "camera", "hi-fi", "computer", "phone", "book", "music", "garden"
)


class SiteGenerator:
    """Seeded factory for synthetic pages."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    # -- catalogs ---------------------------------------------------------------

    def catalog_url(self, host: Optional[str] = None) -> str:
        host = host or random_host(self.rng)
        return f"http://{host}/catalog/products.xml"

    def product(self, product_id: int) -> ElementNode:
        rng = self.rng
        product = ElementNode("Product", {"id": str(product_id)})
        product.make_child("name", text=random_sentence(rng, 2))
        product.make_child("category", text=rng.choice(PRODUCT_CATEGORIES))
        product.make_child("price", text=f"{rng.uniform(5, 2500):.2f}")
        product.make_child(
            "description", text=random_sentence(rng, rng.randint(4, 12))
        )
        return product

    def catalog(self, products: int = 10) -> Document:
        root = ElementNode("catalog")
        root.make_child("vendor", text=random_sentence(self.rng, 2))
        for product_id in range(1, products + 1):
            root.append(self.product(product_id))
        return Document(root, doctype_name="catalog", dtd_url=CATALOG_DTD)

    # -- museums -----------------------------------------------------------------

    def museum_url(self, host: Optional[str] = None) -> str:
        host = host or random_host(self.rng)
        return f"http://{host}/collection.xml"

    def museum(self, paintings: int = 8, city: Optional[str] = None) -> Document:
        rng = self.rng
        root = ElementNode("museum")
        root.make_child("name", text=random_sentence(rng, 2))
        root.make_child(
            "address",
            text=f"{rng.randint(1, 200)} main street "
            f"{city or rng.choice(['Amsterdam', 'Paris', 'London', 'Wien'])}",
        )
        for _ in range(paintings):
            painting = root.make_child("painting")
            painting.make_child("title", text=random_sentence(rng, 3))
            painting.make_child("artist", text=random_name(rng))
            painting.make_child("year", text=str(rng.randint(1400, 2000)))
        return Document(root, doctype_name="museum", dtd_url=MUSEUM_DTD)

    # -- member pages -------------------------------------------------------------

    def members_url(self, host: Optional[str] = None) -> str:
        host = host or random_host(self.rng)
        return f"http://{host}/team/members.xml"

    def members(self, count: int = 5) -> Document:
        root = ElementNode("members")
        for _ in range(count):
            member = root.make_child("Member")
            first, last = random_name(self.rng).split(" ", 1)
            member.make_child("name", text=last)
            member.make_child("fn", text=first)
        return Document(root, doctype_name="members", dtd_url=MEMBERS_DTD)

    # -- generic XML (for alerter stress tests) ---------------------------------------

    def generic_document(
        self, size: int, depth: int, fanout: Optional[int] = None
    ) -> Document:
        """A tree with ~``size`` nodes and the given maximum depth.

        Used by ``bench_xml_alerter`` to reproduce the Size × Depth cost
        discussion of Section 6.3.
        """
        rng = self.rng
        root = ElementNode("doc")
        nodes: List[ElementNode] = [root]
        produced = 1
        while produced < size:
            candidates = [n for n in nodes if n.level < depth]
            if not candidates:
                break
            parent = rng.choice(candidates)
            child = parent.make_child(
                rng.choice(("section", "item", "entry", "note")),
            )
            child.append_text(random_sentence(rng, rng.randint(2, 6)))
            nodes.append(child)
            produced += 1
        return Document(root)

    # -- HTML -----------------------------------------------------------------------

    def html_url(self, host: Optional[str] = None) -> str:
        host = host or random_host(self.rng)
        return f"http://{host}/index.html"

    def html_page(self, paragraphs: int = 5) -> str:
        rng = self.rng
        body = "".join(
            f"<p>{random_sentence(rng, rng.randint(6, 18))}</p>"
            for _ in range(paragraphs)
        )
        title = random_sentence(rng, 3)
        return (
            f"<html><head><title>{title}</title></head>"
            f"<body><h1>{title}</h1>{body}</body></html>"
        )


def to_xml(document: Document) -> str:
    """Serialize a generated document (synonym kept for readability)."""
    return serialize(document)
