"""Synthetic web + workload generators (the reproduction's data substrate).

* :class:`SiteGenerator` — catalogs, museums, member pages, HTML.
* :class:`ChangeModel` — element-level page evolution between fetches.
* :class:`SimulatedCrawler` — importance-driven refresh scheduling.
* :class:`SyntheticWorkload` — the paper's controlled (Card(A), Card(C),
  c, s) event workload for the MQP benchmarks.
"""

from .change_model import ChangeModel, ChangeRates
from .crawler import CrawledPage, SimulatedCrawler
from .refresh import ChangeRateEstimator, PageHistory, RefreshPlanner
from .sitegen import (
    CATALOG_DTD,
    MEMBERS_DTD,
    MUSEUM_DTD,
    PRODUCT_CATEGORIES,
    SiteGenerator,
    to_xml,
)
from .workload import SyntheticWorkload, WorkloadParams, biased_document_sets

__all__ = [
    "ChangeModel",
    "ChangeRates",
    "CrawledPage",
    "SimulatedCrawler",
    "ChangeRateEstimator",
    "PageHistory",
    "RefreshPlanner",
    "CATALOG_DTD",
    "MEMBERS_DTD",
    "MUSEUM_DTD",
    "PRODUCT_CATEGORIES",
    "SiteGenerator",
    "to_xml",
    "SyntheticWorkload",
    "WorkloadParams",
    "biased_document_sets",
]
