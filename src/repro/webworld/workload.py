"""The paper's synthetic MQP workload (Section 4.2, "Analysis in brief").

"In our experimentation, we completely controlled Card(A), Card(C), s and
c.  For Card(A), we fix an upper bound.  Then to produce the test set,
atomic events are randomly drawn in the set {a_0 ... a_Card(A)-1} with no
guarantee that they will all be taken.  Finally, to obtain k, we use the
fact that k can be estimated as c̄ · Card(C) / Card(A)."

:class:`SyntheticWorkload` reproduces exactly that: uniform draws for
complex events and document event sets, parameterized by the four knobs.
A Zipf-skewed variant models the paper's observation that "there may be
thousands of complex events that will involve the url of Amazon's whereas
only very few will be concerned with the url of John Doe's home page".
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple


@dataclass(frozen=True)
class WorkloadParams:
    """The paper's knobs.

    ``c_min``/``c_max`` bound the per-conjunction size (the paper uses
    c̄ ≈ 3, "unlikely in our context to exceed 7 or 8"); ``s`` is the
    number of atomic events detected per document (10..100 in Figure 5).
    """

    card_a: int
    card_c: int
    c_min: int = 2
    c_max: int = 4
    s: int = 20
    seed: int = 0
    #: 0.0 = uniform draws (the paper's setup); > 0 = Zipf skew exponent.
    zipf_exponent: float = 0.0

    @property
    def c_mean(self) -> float:
        return (self.c_min + self.c_max) / 2

    @property
    def estimated_k(self) -> float:
        """The paper's estimate k ≈ c̄ · Card(C) / Card(A)."""
        return self.c_mean * self.card_c / self.card_a


class SyntheticWorkload:
    """Reproducible draws: complex events and document event sets use
    independent generators, so the order of calls never changes a draw."""

    def __init__(self, params: WorkloadParams):
        self.params = params
        self._event_rng = random.Random(params.seed)
        self._doc_rng = random.Random(params.seed + 7919)
        self._events: Optional[List[Tuple[int, List[int]]]] = None
        self._cumulative: Optional[List[float]] = None
        if params.zipf_exponent > 0.0:
            cumulative: List[float] = []
            total = 0.0
            for rank in range(1, params.card_a + 1):
                total += 1.0 / (rank ** params.zipf_exponent)
                cumulative.append(total)
            self._cumulative = cumulative

    # -- draws -----------------------------------------------------------------

    def _draw_event(self, rng: random.Random) -> int:
        if self._cumulative is None:
            return rng.randrange(self.params.card_a)
        point = rng.random() * self._cumulative[-1]
        return bisect.bisect_left(self._cumulative, point)

    def _draw_set(self, rng: random.Random, size: int) -> List[int]:
        chosen: set = set()
        while len(chosen) < size:
            chosen.add(self._draw_event(rng))
        return sorted(chosen)

    # -- workload pieces ------------------------------------------------------------

    def complex_events(self) -> List[Tuple[int, List[int]]]:
        """(complex code, sorted atomic codes) for all Card(C) events.

        Generated once and cached, so matcher loading and any later
        inspection see the same draw.
        """
        if self._events is None:
            params = self.params
            rng = self._event_rng
            self._events = [
                (code, self._draw_set(rng, rng.randint(params.c_min, params.c_max)))
                for code in range(1, params.card_c + 1)
            ]
        return self._events

    def document_event_sets(self, count: int) -> List[List[int]]:
        """``count`` document event sets of size s (sorted, duplicate-free)."""
        return [
            self._draw_set(self._doc_rng, self.params.s)
            for _ in range(count)
        ]

    def load_matcher(self, matcher) -> None:
        """Register every complex event of the workload into ``matcher``."""
        for code, atomic_codes in self.complex_events():
            matcher.add(code, atomic_codes)

    def build(self, matcher_factory: Callable):
        """Construct and load a matcher in one call."""
        matcher = matcher_factory()
        self.load_matcher(matcher)
        return matcher

    def observed_k(self) -> float:
        """Exact k of the drawn workload (vs the c̄·Card(C)/Card(A) estimate)."""
        fanout: dict = {}
        for _, atomic_codes in self.complex_events():
            for code in atomic_codes:
                fanout[code] = fanout.get(code, 0) + 1
        if not fanout:
            return 0.0
        return sum(fanout.values()) / len(fanout)


def biased_document_sets(
    workload: SyntheticWorkload,
    count: int,
    hit_fraction: float,
    seed: int = 1,
) -> List[List[int]]:
    """Document sets engineered so ~``hit_fraction`` of them contain a full
    complex event — useful for notification-rate experiments where uniform
    draws would almost never match at large Card(A)."""
    rng = random.Random(seed)
    events = workload.complex_events()
    sets = workload.document_event_sets(count)
    for event_set in sets:
        if rng.random() >= hit_fraction or not events:
            continue
        _, atomic_codes = rng.choice(events)
        usable = atomic_codes[: workload.params.s]
        keep = event_set[: max(0, len(event_set) - len(usable))]
        merged = set(keep)
        merged.update(usable)
        event_set[:] = sorted(merged)
    return sets
