"""Acquisition & refresh strategy — Figure 1's third module.

"Its task is to decide when to (re)read an XML or HTML document.  This
decision is based on criteria such as the importance of a document, its
estimated change rate or subscriptions involving this particular document"
(Section 2.1).  "In our current implementation, subscriptions influence the
refreshing of pages only by adding importance to the pages they explicitly
mention.  Such pages will be read more often" (Section 2.2).

Two cooperating pieces:

* :class:`ChangeRateEstimator` — per-page change-rate estimation from the
  observed fetch history.  Pages change according to (approximately) a
  Poisson process; given fetch intervals and changed/unchanged outcomes,
  the maximum-likelihood rate solves  Σ_changed Δtᵢ·e^{−λΔtᵢ}/(1−e^{−λΔtᵢ})
  = Σ_unchanged Δtᵢ — we use the standard closed-ish estimator
  λ̂ = −log((n−X+0.5)/(n+0.5))/Δ̄ (Cho & Garcia-Molina's bias-reduced
  estimator for a uniform fetch interval, generalized to the mean
  interval), clamped to sane bounds.
* :class:`RefreshPlanner` — allocates a fixed daily fetch budget across
  pages by a weight combining importance, estimated change rate and
  subscription refresh hints, and converts each page's share into a
  refresh interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..clock import SECONDS_PER_DAY

#: Estimated rates are clamped into [once a quarter, hourly].
MIN_RATE_PER_DAY = 1.0 / 90.0
MAX_RATE_PER_DAY = 24.0


@dataclass
class PageHistory:
    """Observed fetch outcomes for one page."""

    fetches: int = 0
    changes: int = 0
    #: Sum of the intervals between consecutive fetches, in seconds.
    total_interval: float = 0.0
    last_fetch_at: Optional[float] = None

    def record_fetch(self, at: float, changed: bool) -> None:
        if self.last_fetch_at is not None:
            self.total_interval += max(0.0, at - self.last_fetch_at)
            self.fetches += 1
            if changed:
                self.changes += 1
        self.last_fetch_at = at

    @property
    def mean_interval(self) -> Optional[float]:
        if self.fetches == 0:
            return None
        return self.total_interval / self.fetches

    def state_dict(self) -> Dict:
        """JSON-serializable state (crash-recovery checkpoints)."""
        return {
            "fetches": self.fetches,
            "changes": self.changes,
            "total_interval": self.total_interval,
            "last_fetch_at": self.last_fetch_at,
        }

    @classmethod
    def from_state_dict(cls, state: Dict) -> "PageHistory":
        return cls(
            fetches=int(state["fetches"]),
            changes=int(state["changes"]),
            total_interval=float(state["total_interval"]),
            last_fetch_at=state["last_fetch_at"],
        )


class ChangeRateEstimator:
    """Per-page Poisson change-rate estimation (changes per day)."""

    def __init__(self, default_rate_per_day: float = 1.0):
        self.default_rate_per_day = default_rate_per_day
        self._histories: Dict[str, PageHistory] = {}

    def record_fetch(self, url: str, at: float, changed: bool) -> None:
        self._histories.setdefault(url, PageHistory()).record_fetch(
            at, changed
        )

    def history(self, url: str) -> Optional[PageHistory]:
        return self._histories.get(url)

    def state_dict(self) -> Dict:
        """JSON-serializable state (crash-recovery checkpoints)."""
        return {
            url: history.state_dict()
            for url, history in self._histories.items()
        }

    def restore_state(self, state: Dict) -> None:
        self._histories = {
            url: PageHistory.from_state_dict(entry)
            for url, entry in state.items()
        }

    def rate_per_day(self, url: str) -> float:
        """Estimated changes/day; the default until evidence accumulates."""
        history = self._histories.get(url)
        if history is None or history.fetches < 2:
            return self.default_rate_per_day
        mean_interval = history.mean_interval
        if not mean_interval:
            return self.default_rate_per_day
        n = history.fetches
        x = history.changes
        # Bias-reduced MLE for a Poisson process sampled at (roughly)
        # uniform intervals: lambda = -log((n - X + 0.5)/(n + 0.5)) / mean.
        fraction = (n - x + 0.5) / (n + 0.5)
        rate_per_second = -math.log(fraction) / mean_interval
        rate = rate_per_second * SECONDS_PER_DAY
        return min(MAX_RATE_PER_DAY, max(MIN_RATE_PER_DAY, rate))


@dataclass
class PlannedPage:
    url: str
    importance: float = 1.0
    #: Subscription refresh hint: maximum interval in seconds, or None.
    max_interval: Optional[float] = None
    #: Suspended pages (open circuit breakers) receive no fetch budget.
    suspended: bool = False


class RefreshPlanner:
    """Allocates a daily fetch budget across pages.

    Weight per page = importance × √(estimated change rate) — the square
    root reflects the classical result that refreshing proportionally to
    the raw change rate over-invests in pages that change faster than any
    feasible revisit frequency.  Subscription hints act as per-page caps on
    the interval: "pages for a particular site should be visited at least
    weekly" (Section 2.2).
    """

    def __init__(
        self,
        estimator: ChangeRateEstimator,
        daily_budget: float,
        min_interval: float = SECONDS_PER_DAY / 24,
    ):
        if daily_budget <= 0:
            raise ValueError("daily_budget must be positive")
        self.estimator = estimator
        self.daily_budget = daily_budget
        self.min_interval = min_interval
        self._pages: Dict[str, PlannedPage] = {}

    # -- page table ---------------------------------------------------------------

    def add_page(
        self,
        url: str,
        importance: float = 1.0,
        max_interval: Optional[float] = None,
    ) -> None:
        self._pages[url] = PlannedPage(
            url=url, importance=importance, max_interval=max_interval
        )

    def remove_page(self, url: str) -> None:
        self._pages.pop(url, None)

    def set_importance(self, url: str, importance: float) -> None:
        page = self._pages.get(url)
        if page is not None:
            page.importance = importance

    def apply_refresh_hints(self, hints: Dict[str, float]) -> None:
        for url, interval in hints.items():
            page = self._pages.get(url)
            if page is not None and (
                page.max_interval is None or interval < page.max_interval
            ):
                page.max_interval = interval

    def suspend_page(self, url: str) -> None:
        """Exclude a page from the budget (its host's circuit is open)."""
        page = self._pages.get(url)
        if page is not None:
            page.suspended = True

    def resume_page(self, url: str) -> None:
        page = self._pages.get(url)
        if page is not None:
            page.suspended = False

    def apply_breaker_state(self, open_urls: Iterable[str]) -> None:
        """Sync suspensions with the crawler's circuit breakers.

        Pages in ``open_urls`` (see
        :meth:`~repro.webworld.crawler.SimulatedCrawler.open_breaker_urls`)
        are suspended — a dead host must not consume fetch budget — and
        every other page is resumed, so a recovered host re-enters the
        plan on the next :meth:`plan_intervals` call.
        """
        open_set = set(open_urls)
        for url, page in self._pages.items():
            page.suspended = url in open_set

    def __len__(self) -> int:
        return len(self._pages)

    # -- planning -------------------------------------------------------------------

    def _weight(self, page: PlannedPage) -> float:
        rate = self.estimator.rate_per_day(page.url)
        return max(page.importance, 0.0) * math.sqrt(rate)

    def plan_intervals(self) -> Dict[str, float]:
        """Per-page refresh intervals (seconds) spending the daily budget.

        A page receiving share w/W of a budget of B fetches/day is visited
        every 86400·W/(w·B) seconds, clamped by ``min_interval`` below and
        the page's hint cap above.  Hint caps may push total spend above
        the budget — subscriptions are commitments, so the overflow is
        taken from the unhinted pages proportionally.
        """
        active = {
            url: page
            for url, page in self._pages.items()
            if not page.suspended
        }
        if not active:
            return {}
        weights = {url: self._weight(page) for url, page in active.items()}
        total_weight = sum(weights.values()) or 1.0
        intervals: Dict[str, float] = {}
        committed_budget = 0.0
        flexible: List[str] = []
        for url, page in active.items():
            share = weights[url] / total_weight
            interval = SECONDS_PER_DAY / max(
                share * self.daily_budget, 1e-9
            )
            interval = max(self.min_interval, interval)
            if page.max_interval is not None and interval > page.max_interval:
                interval = max(self.min_interval, page.max_interval)
                committed_budget += SECONDS_PER_DAY / interval
                intervals[url] = interval
            else:
                flexible.append(url)
        remaining_budget = max(self.daily_budget - committed_budget, 0.0)
        flexible_weight = sum(weights[url] for url in flexible) or 1.0
        for url in flexible:
            share = weights[url] / flexible_weight
            fetches_per_day = share * remaining_budget
            interval = SECONDS_PER_DAY / max(fetches_per_day, 1e-9)
            page = self._pages[url]
            interval = max(self.min_interval, interval)
            if page.max_interval is not None:
                interval = min(interval, page.max_interval)
            intervals[url] = interval
        return intervals

    def planned_fetches_per_day(self) -> float:
        return sum(
            SECONDS_PER_DAY / interval
            for interval in self.plan_intervals().values()
        )
