"""Simulated crawler / acquisition-and-refresh module.

The real module "decide[s] when to (re)read an XML or HTML document ...
based on criteria such as the importance of a document, its estimated
change rate or subscriptions involving this particular document"
(Section 2.1).  The simulation keeps a page table with per-page refresh
intervals derived from importance and subscription refresh hints, evolves
page content through a :class:`ChangeModel`, and emits :class:`Fetch`
items in due-time order.

Fault tolerance (``repro.faults``): wiring a
:class:`~repro.faults.FaultInjector` makes fetch attempts fail with the
:class:`~repro.errors.FetchError` taxonomy, and the crawler then behaves
like a production fetcher:

* a transient failure reschedules the URL at the
  :class:`~repro.faults.RetryPolicy` backoff interval instead of the
  nominal refresh interval (``retry.attempts``);
* per-URL :class:`~repro.faults.CircuitBreaker`\\ s open after repeated
  consecutive failures, so dead hosts stop consuming fetch budget until
  a half-open probe succeeds (``breaker.state_changes{to=...}``);
* a fetch whose retries are exhausted — or that failed permanently — is
  quarantined into the :class:`~repro.faults.DeadLetterQueue`.

Determinism contract: page content evolves exactly once per *nominal*
attempt (retries re-serve the already-evolved content), and the injector
draws from its own RNG, so a faulty run consumes the crawler's
content-evolution RNG in exactly the same order as a fault-free run —
once every retry lands, both runs have produced the same fetch contents.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from ..clock import Clock, SECONDS_PER_DAY, SimulatedClock
from ..errors import FetchError, PipelineError
from ..faults.dlq import DeadLetterEntry, DeadLetterQueue, SOURCE_CRAWL
from ..faults.injector import FaultInjector
from ..faults.retry import CLOSED, CircuitBreaker, RetryPolicy
from ..observability.metrics import MetricsRegistry, NULL_REGISTRY
from ..observability.names import (
    COUNTER_BREAKER_STATE_CHANGES,
    COUNTER_RETRY_ATTEMPTS,
)
from ..pipeline.stream import Fetch, HTML_PAGE, XML_PAGE
from ..xmlstore.nodes import Document
from ..xmlstore.serializer import serialize
from .change_model import ChangeModel


@dataclass
class CrawledPage:
    url: str
    kind: str
    document: Optional[Document] = None   # XML pages
    html: Optional[str] = None            # HTML pages
    importance: float = 1.0
    #: Probability that the page changed when refetched.
    change_probability: float = 0.5
    refresh_interval: float = SECONDS_PER_DAY
    next_fetch: float = 0.0
    fetch_count: int = 0


@dataclass
class _RetryState:
    """A failed fetch awaiting its next retry attempt."""

    fetch: Fetch
    due: float       # the nominal due time the failed attempt served
    attempt: int     # attempts made so far (>= 1)


class SimulatedCrawler:
    """Priority-queue crawler over a mutable page table.

    ``fault_injector`` / ``retry_policy`` / ``breaker_factory`` /
    ``dead_letters`` opt the crawler into the resilient fetch path (see
    the module docstring); without an injector the behaviour — and the
    RNG stream — is byte-for-byte the fault-free crawler.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        change_model: Optional[ChangeModel] = None,
        seed: int = 0,
        base_interval: float = SECONDS_PER_DAY,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_factory: Optional[Callable[[], CircuitBreaker]] = (
            CircuitBreaker
        ),
        dead_letters: Optional[DeadLetterQueue] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.clock = clock if clock is not None else SimulatedClock()
        self.change_model = (
            change_model if change_model is not None else ChangeModel(seed)
        )
        self.rng = random.Random(seed)
        self.base_interval = base_interval
        self.fault_injector = fault_injector
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.breaker_factory = breaker_factory
        self.dead_letters = dead_letters
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._pages: Dict[str, CrawledPage] = {}
        self._queue: List = []  # (next_fetch, url)
        self._retry_states: Dict[str, _RetryState] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.fetches_emitted = 0
        self.faults_seen = 0
        self.retries_scheduled = 0
        self.dead_lettered = 0

    # -- page table ------------------------------------------------------------

    def add_xml_page(
        self,
        url: str,
        document: Document,
        importance: float = 1.0,
        change_probability: float = 0.5,
    ) -> CrawledPage:
        page = CrawledPage(
            url=url,
            kind=XML_PAGE,
            document=document,
            importance=importance,
            change_probability=change_probability,
            refresh_interval=self._interval_for(importance),
            next_fetch=self.clock.now(),
        )
        self._pages[url] = page
        self._push(page)
        return page

    def add_html_page(
        self,
        url: str,
        html: str,
        importance: float = 1.0,
        change_probability: float = 0.3,
    ) -> CrawledPage:
        page = CrawledPage(
            url=url,
            kind=HTML_PAGE,
            html=html,
            importance=importance,
            change_probability=change_probability,
            refresh_interval=self._interval_for(importance),
            next_fetch=self.clock.now(),
        )
        self._pages[url] = page
        self._push(page)
        return page

    def _interval_for(self, importance: float) -> float:
        """More important pages are read more often (Section 2.2)."""
        return self.base_interval / max(importance, 0.1)

    def apply_refresh_hints(self, hints: Dict[str, float]) -> None:
        """Subscriptions' refresh statements shorten page intervals."""
        for url, period in hints.items():
            page = self._pages.get(url)
            if page is not None and period < page.refresh_interval:
                page.refresh_interval = period

    def add_importance(self, url: str, amount: float) -> None:
        page = self._pages.get(url)
        if page is not None:
            page.importance += amount
            page.refresh_interval = self._interval_for(page.importance)

    def set_interval(self, url: str, interval: float) -> None:
        """Pin a page's refresh interval (used by the refresh planner)."""
        page = self._pages.get(url)
        if page is not None:
            page.refresh_interval = max(1.0, interval)

    def apply_plan(self, intervals: Dict[str, float]) -> None:
        """Install a :class:`~repro.webworld.refresh.RefreshPlanner` plan."""
        for url, interval in intervals.items():
            self.set_interval(url, interval)

    def page(self, url: str) -> Optional[CrawledPage]:
        return self._pages.get(url)

    def remove_page(self, url: str) -> None:
        """Forget a page; queued fetch entries for it are skipped."""
        self._pages.pop(url, None)
        self._retry_states.pop(url, None)
        self._breakers.pop(url, None)

    def __len__(self) -> int:
        return len(self._pages)

    # -- breakers ----------------------------------------------------------------

    def breaker(self, url: str) -> Optional[CircuitBreaker]:
        """The circuit breaker for ``url``, if failures created one."""
        return self._breakers.get(url)

    def open_breaker_urls(self) -> List[str]:
        """URLs whose circuit is currently not closed (dead hosts).

        Feed this into
        :meth:`~repro.webworld.refresh.RefreshPlanner.apply_breaker_state`
        so the refresh planner stops budgeting fetches for them.
        """
        return sorted(
            url
            for url, breaker in self._breakers.items()
            if breaker.state != CLOSED
        )

    def _breaker_for(self, url: str) -> Optional[CircuitBreaker]:
        if self.breaker_factory is None:
            return None
        breaker = self._breakers.get(url)
        if breaker is None:
            breaker = self._breakers[url] = self.breaker_factory()
            previous = breaker.on_state_change

            def record(old: str, new: str) -> None:
                self.metrics.counter(
                    COUNTER_BREAKER_STATE_CHANGES, to=new
                ).inc()
                if previous is not None:
                    previous(old, new)

            breaker.on_state_change = record
        return breaker

    # -- fetching ----------------------------------------------------------------

    def _push(self, page: CrawledPage) -> None:
        # Ties broken by URL, never by insertion order: pop order must be
        # a pure function of (due time, url) so that retry scheduling —
        # which perturbs insertion order but not due times — cannot change
        # the order simultaneous nominal fetches consume the shared
        # content-evolution RNG (the determinism contract above).
        heapq.heappush(self._queue, (page.next_fetch, page.url))

    def _reschedule(self, page: CrawledPage, due: float) -> None:
        """Schedule the next nominal fetch from the *due* time, not now.

        Rescheduling from ``now`` would let a slow consumer permanently
        stretch every page's effective refresh period; anchoring on the
        due time keeps each page on its nominal cadence.  If the consumer
        fell more than a full interval behind, missed slots are skipped
        (no catch-up burst) while the phase of the cadence is preserved.
        """
        interval = page.refresh_interval
        next_time = due + interval
        now = self.clock.now()
        if next_time <= now:
            missed = int((now - due) // interval)
            next_time = due + (missed + 1) * interval
            if next_time <= now:
                next_time += interval
        page.next_fetch = next_time
        self._push(page)

    def due_fetches(self) -> Iterator[Fetch]:
        """Yield fetches whose due time has passed (in due order).

        Page content evolves at fetch time according to the change model
        and each page's change probability, then the page is rescheduled.
        With a fault injector wired, failed attempts are retried at the
        backoff interval, gated by per-URL circuit breakers, and
        quarantined to the dead-letter queue once retries are exhausted —
        see the module docstring.
        """
        now = self.clock.now()
        while self._queue and self._queue[0][0] <= now:
            due, url = heapq.heappop(self._queue)
            page = self._pages.get(url)
            if page is None:
                self._retry_states.pop(url, None)
                continue
            state = self._retry_states.get(url)
            if state is not None:
                fetch = self._attempt_retry(page, state, now)
            else:
                fetch = self._attempt_nominal(page, due, now)
            if fetch is not None:
                self.fetches_emitted += 1
                yield fetch

    def _attempt_nominal(
        self, page: CrawledPage, due: float, now: float
    ) -> Optional[Fetch]:
        """One scheduled fetch: evolve content, then roll for a fault."""
        breaker = self._breakers.get(page.url)
        if breaker is not None and not breaker.allow(now):
            # Open circuit: the page waits on the breaker, not on its
            # refresh interval, and its content does not evolve — a dead
            # host consumes no fetch budget and no RNG.
            page.next_fetch = breaker.retry_at(now)
            self._push(page)
            return None
        fetch = self._fetch(page)
        if self.fault_injector is None:
            self._reschedule(page, due)
            return fetch
        fault = self.fault_injector.roll(page.url, fetch.content)
        if fault is None:
            if breaker is not None:
                breaker.record_success(now)
            self._reschedule(page, due)
            return fetch
        self._record_failure(page.url, now)
        if fault.transient and self.retry_policy.max_attempts > 1:
            self._schedule_retry(page, fetch, due, attempt=1, now=now)
        else:
            self._quarantine(page, fetch, fault, attempts=1, now=now)
            self._reschedule(page, due)
        return None

    def _attempt_retry(
        self, page: CrawledPage, state: _RetryState, now: float
    ) -> Optional[Fetch]:
        """Re-attempt a failed fetch; the content was already evolved."""
        fault = (
            self.fault_injector.roll(page.url, state.fetch.content)
            if self.fault_injector is not None
            else None
        )
        if fault is None:
            breaker = self._breakers.get(page.url)
            if breaker is not None:
                breaker.record_success(now)
            del self._retry_states[page.url]
            self._reschedule(page, state.due)
            return state.fetch
        self._record_failure(page.url, now)
        state.attempt += 1
        if fault.transient and state.attempt < self.retry_policy.max_attempts:
            self._push_retry(page.url, state.attempt, now)
        else:
            self._quarantine(
                page, state.fetch, fault, attempts=state.attempt, now=now
            )
            del self._retry_states[page.url]
            self._reschedule(page, state.due)
        return None

    def _schedule_retry(
        self,
        page: CrawledPage,
        fetch: Fetch,
        due: float,
        attempt: int,
        now: float,
    ) -> None:
        self._retry_states[page.url] = _RetryState(
            fetch=fetch, due=due, attempt=attempt
        )
        self._push_retry(page.url, attempt, now)

    def _push_retry(self, url: str, attempt: int, now: float) -> None:
        delay = self.retry_policy.backoff(attempt, url)
        heapq.heappush(self._queue, (now + delay, url))
        self.retries_scheduled += 1
        self.metrics.counter(COUNTER_RETRY_ATTEMPTS).inc()

    def _record_failure(self, url: str, now: float) -> None:
        self.faults_seen += 1
        breaker = self._breaker_for(url)
        if breaker is not None:
            breaker.record_failure(now)

    def _quarantine(
        self,
        page: CrawledPage,
        fetch: Fetch,
        fault: FetchError,
        attempts: int,
        now: float,
    ) -> None:
        self.dead_lettered += 1
        if self.dead_letters is not None:
            self.dead_letters.push(
                DeadLetterEntry(
                    url=page.url,
                    content=fetch.content,
                    kind=fetch.kind,
                    error=str(fault),
                    error_class=type(fault).__name__,
                    source=SOURCE_CRAWL,
                    attempts=attempts,
                    quarantined_at=now,
                )
            )

    def _fetch(self, page: CrawledPage) -> Fetch:
        """Evolve the page once and build its Fetch (the page *content*
        is what it is regardless of whether our read of it succeeds)."""
        page.fetch_count += 1
        changed = (
            page.fetch_count > 1
            and self.rng.random() < page.change_probability
        )
        if page.kind == XML_PAGE:
            if page.document is None:
                raise PipelineError(
                    f"XML page {page.url} has no document in the page table"
                )
            if changed:
                page.document = self.change_model.mutate(page.document)
            return Fetch(
                url=page.url, content=serialize(page.document), kind=XML_PAGE
            )
        if page.html is None:
            raise PipelineError(
                f"HTML page {page.url} has no content in the page table"
            )
        if changed:
            page.html = page.html.replace(
                "</body>",
                f"<p>update {page.fetch_count}</p></body>",
                1,
            )
        return Fetch(url=page.url, content=page.html, kind=HTML_PAGE)
