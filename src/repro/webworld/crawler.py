"""Simulated crawler / acquisition-and-refresh module.

The real module "decide[s] when to (re)read an XML or HTML document ...
based on criteria such as the importance of a document, its estimated
change rate or subscriptions involving this particular document"
(Section 2.1).  The simulation keeps a page table with per-page refresh
intervals derived from importance and subscription refresh hints, evolves
page content through a :class:`ChangeModel`, and emits :class:`Fetch`
items in due-time order.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..clock import Clock, SECONDS_PER_DAY, SimulatedClock
from ..pipeline.stream import Fetch, HTML_PAGE, XML_PAGE
from ..xmlstore.nodes import Document
from ..xmlstore.serializer import serialize
from .change_model import ChangeModel


@dataclass
class CrawledPage:
    url: str
    kind: str
    document: Optional[Document] = None   # XML pages
    html: Optional[str] = None            # HTML pages
    importance: float = 1.0
    #: Probability that the page changed when refetched.
    change_probability: float = 0.5
    refresh_interval: float = SECONDS_PER_DAY
    next_fetch: float = 0.0
    fetch_count: int = 0


class SimulatedCrawler:
    """Priority-queue crawler over a mutable page table."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        change_model: Optional[ChangeModel] = None,
        seed: int = 0,
        base_interval: float = SECONDS_PER_DAY,
    ):
        self.clock = clock if clock is not None else SimulatedClock()
        self.change_model = (
            change_model if change_model is not None else ChangeModel(seed)
        )
        self.rng = random.Random(seed)
        self.base_interval = base_interval
        self._pages: Dict[str, CrawledPage] = {}
        self._queue: List = []  # (next_fetch, sequence, url)
        self._sequence = itertools.count()
        self.fetches_emitted = 0

    # -- page table ------------------------------------------------------------

    def add_xml_page(
        self,
        url: str,
        document: Document,
        importance: float = 1.0,
        change_probability: float = 0.5,
    ) -> CrawledPage:
        page = CrawledPage(
            url=url,
            kind=XML_PAGE,
            document=document,
            importance=importance,
            change_probability=change_probability,
            refresh_interval=self._interval_for(importance),
            next_fetch=self.clock.now(),
        )
        self._pages[url] = page
        self._push(page)
        return page

    def add_html_page(
        self,
        url: str,
        html: str,
        importance: float = 1.0,
        change_probability: float = 0.3,
    ) -> CrawledPage:
        page = CrawledPage(
            url=url,
            kind=HTML_PAGE,
            html=html,
            importance=importance,
            change_probability=change_probability,
            refresh_interval=self._interval_for(importance),
            next_fetch=self.clock.now(),
        )
        self._pages[url] = page
        self._push(page)
        return page

    def _interval_for(self, importance: float) -> float:
        """More important pages are read more often (Section 2.2)."""
        return self.base_interval / max(importance, 0.1)

    def apply_refresh_hints(self, hints: Dict[str, float]) -> None:
        """Subscriptions' refresh statements shorten page intervals."""
        for url, period in hints.items():
            page = self._pages.get(url)
            if page is not None and period < page.refresh_interval:
                page.refresh_interval = period

    def add_importance(self, url: str, amount: float) -> None:
        page = self._pages.get(url)
        if page is not None:
            page.importance += amount
            page.refresh_interval = self._interval_for(page.importance)

    def set_interval(self, url: str, interval: float) -> None:
        """Pin a page's refresh interval (used by the refresh planner)."""
        page = self._pages.get(url)
        if page is not None:
            page.refresh_interval = max(1.0, interval)

    def apply_plan(self, intervals: Dict[str, float]) -> None:
        """Install a :class:`~repro.webworld.refresh.RefreshPlanner` plan."""
        for url, interval in intervals.items():
            self.set_interval(url, interval)

    def page(self, url: str) -> Optional[CrawledPage]:
        return self._pages.get(url)

    def remove_page(self, url: str) -> None:
        """Forget a page; queued fetch entries for it are skipped."""
        self._pages.pop(url, None)

    def __len__(self) -> int:
        return len(self._pages)

    # -- fetching ----------------------------------------------------------------

    def _push(self, page: CrawledPage) -> None:
        heapq.heappush(
            self._queue, (page.next_fetch, next(self._sequence), page.url)
        )

    def due_fetches(self) -> Iterator[Fetch]:
        """Yield fetches whose due time has passed (in due order).

        Page content evolves at fetch time according to the change model
        and each page's change probability, then the page is rescheduled.
        """
        now = self.clock.now()
        while self._queue and self._queue[0][0] <= now:
            _, _, url = heapq.heappop(self._queue)
            page = self._pages.get(url)
            if page is None:
                continue
            yield self._fetch(page)
            page.next_fetch = now + page.refresh_interval
            self._push(page)

    def _fetch(self, page: CrawledPage) -> Fetch:
        page.fetch_count += 1
        self.fetches_emitted += 1
        changed = (
            page.fetch_count > 1
            and self.rng.random() < page.change_probability
        )
        if page.kind == XML_PAGE:
            assert page.document is not None
            if changed:
                page.document = self.change_model.mutate(page.document)
            return Fetch(
                url=page.url, content=serialize(page.document), kind=XML_PAGE
            )
        assert page.html is not None
        if changed:
            page.html = page.html.replace(
                "</body>",
                f"<p>update {page.fetch_count}</p></body>",
                1,
            )
        return Fetch(url=page.url, content=page.html, kind=HTML_PAGE)
