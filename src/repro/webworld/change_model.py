"""Page evolution: how the synthetic web changes between fetches.

The crawler refetches pages; this model mutates a page's XML between
fetches so the diff/alerter path sees realistic element-level changes:
insertions (a new product), text updates (a price change), deletions and
attribute edits, with configurable rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..diff.delta import copy_document
from ..xmlstore.nodes import Document, ElementNode, TextNode
from .sitegen import SiteGenerator
from .vocabulary import random_sentence


@dataclass
class ChangeRates:
    """Expected number of edits of each kind per mutation round."""

    inserts: float = 1.0
    text_updates: float = 2.0
    deletes: float = 0.3
    attribute_updates: float = 0.2


class ChangeModel:
    """Applies random edits to copies of documents."""

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[ChangeRates] = None,
        element_factory: Optional[Callable[[], ElementNode]] = None,
    ):
        self.rng = random.Random(seed)
        self.rates = rates if rates is not None else ChangeRates()
        #: Builds subtrees for insertions; defaults to catalog products.
        # The default lives in instance attributes (not a closure) so crash
        # recovery can checkpoint and restore its generator RNG + serial.
        self._insert_generator: Optional[SiteGenerator] = None
        self._insert_serial = 10_000
        if element_factory is None:
            self._insert_generator = SiteGenerator(seed=seed + 1)
            element_factory = self._default_factory
        self.element_factory = element_factory

    def _default_factory(self) -> ElementNode:
        self._insert_serial += 1
        return self._insert_generator.product(self._insert_serial)

    def _count(self, expected: float) -> int:
        """Sample an edit count with the given expectation (Bernoulli/int mix)."""
        base = int(expected)
        if self.rng.random() < (expected - base):
            base += 1
        return base

    def mutate(self, document: Document) -> Document:
        """Return an edited deep copy of ``document`` (input untouched)."""
        result = copy_document(document)
        for node in result.preorder():
            node.xid = None  # the repository re-matches via diff
        for _ in range(self._count(self.rates.deletes)):
            self._delete_element(result)
        for _ in range(self._count(self.rates.inserts)):
            self._insert_element(result)
        for _ in range(self._count(self.rates.text_updates)):
            self._update_text(result)
        for _ in range(self._count(self.rates.attribute_updates)):
            self._update_attribute(result)
        return result

    # -- edits ----------------------------------------------------------------------

    def _elements(self, document: Document) -> List[ElementNode]:
        return [
            node
            for node in document.preorder()
            if isinstance(node, ElementNode)
        ]

    def _insert_element(self, document: Document) -> None:
        parents = [
            node
            for node in self._elements(document)
            if node.level <= 1
        ]
        parent = self.rng.choice(parents) if parents else document.root
        position = self.rng.randint(0, len(parent.children))
        parent.insert(position, self.element_factory())

    def _delete_element(self, document: Document) -> None:
        candidates = [
            node
            for node in self._elements(document)
            if node.parent is not None
        ]
        if not candidates:
            return
        self.rng.choice(candidates).detach()

    def _update_text(self, document: Document) -> None:
        texts = [
            node
            for node in document.preorder()
            if isinstance(node, TextNode)
        ]
        if not texts:
            return
        target = self.rng.choice(texts)
        target.data = random_sentence(self.rng, self.rng.randint(1, 6))

    def _update_attribute(self, document: Document) -> None:
        candidates = [
            node for node in self._elements(document) if node.attributes
        ]
        if not candidates:
            return
        target = self.rng.choice(candidates)
        name = self.rng.choice(sorted(target.attributes))
        target.attributes[name] = str(self.rng.randrange(1_000_000))
