"""Deterministic vocabulary and name pools for the synthetic web.

The generators must be reproducible (benchmarks fix seeds), so all random
choices flow through a ``random.Random`` instance owned by the caller.
"""

from __future__ import annotations

from typing import List, Sequence

import random

#: Base word pool used for element text; includes the paper's running
#: examples (camera, electronic, hi-fi ...) so example subscriptions match.
WORDS: Sequence[str] = (
    "camera digital electronic product catalog price discount special "
    "battery lens zoom flash memory card tripod portrait landscape "
    "museum painting sculpture gallery exhibition masterpiece canvas "
    "renaissance baroque impressionist portrait still life watercolor "
    "xml warehouse monitoring subscription query index crawler semantic "
    "robot java linux cluster database trigger continuous alert delta "
    "amsterdam paris london berlin madrid roma vienna bruxelles geneva "
    "music opera violin piano concert symphony orchestra quartet "
    "biology genome protein cell molecule enzyme bacteria virus "
    "hi-fi stereo amplifier speaker tuner turntable headphone cable"
).split()

FIRST_NAMES: Sequence[str] = (
    "benjamin serge gregory mihai laurent amelie sophie vincent fanny "
    "pierangelo jeremie david sebastien bernd lucie marianne claude"
).split()

LAST_NAMES: Sequence[str] = (
    "nguyen abiteboul cobena preda mignet marian cluet aguilera veltri "
    "watez jouglet leniniven ailleret amann moreau petit leroy"
).split()

SITE_WORDS: Sequence[str] = (
    "shop store market catalog museum press news labs research archive "
    "portal index directory media culture science tech finance travel"
).split()

TOP_LEVEL_DOMAINS: Sequence[str] = ("com", "org", "fr", "nl", "de", "uk")


def random_words(rng: random.Random, count: int) -> List[str]:
    return [rng.choice(WORDS) for _ in range(count)]


def random_sentence(rng: random.Random, words: int) -> str:
    return " ".join(random_words(rng, words))


def random_name(rng: random.Random) -> str:
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def random_host(rng: random.Random) -> str:
    return (
        f"www.{rng.choice(SITE_WORDS)}{rng.randrange(1000)}."
        f"{rng.choice(TOP_LEVEL_DOMAINS)}"
    )
