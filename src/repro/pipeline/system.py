"""The assembled subscription system (Figure 3).

:class:`SubscriptionSystem` wires every module of the reproduction the way
the paper's architecture diagram does: the document flow enters through the
loader/repository, Alerters detect atomic events, the Monitoring Query
Processor detects complex events, notifications are routed by the
Subscription Manager to the Reporter and the Trigger Engine, and reports
leave through the email sink / web publisher.

Documents travel through the staged pipeline of
:mod:`repro.pipeline.stages`; single pages go through :meth:`feed_xml` /
:meth:`feed_html`, whole crawls through :meth:`feed_batch` /
:meth:`run_stream`, which hand each batch to the pluggable
:class:`~repro.pipeline.executor.BatchExecutor` (serial by default).

This is the facade examples and integration tests use::

    system = SubscriptionSystem(executor="threaded", batch_size=64)
    system.subscribe('subscription S ...', owner_email='user@example.org')
    system.feed_xml('http://site/catalog.xml', '<catalog>...</catalog>')
    system.run_stream(crawler.due_fetches())
    system.advance_days(7)   # trigger engine + reporter timers run
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple, Union

from ..alerters.chain import AlerterChain
from ..clock import Clock, SECONDS_PER_DAY, SimulatedClock
from ..core.aes import AESMatcher
from ..core.processor import MonitoringQueryProcessor
from ..core.sharding import (
    FlowPartitionedProcessor,
    SubscriptionPartitionedProcessor,
)
from ..errors import PipelineError, ReportingError
from ..faults.dlq import DeadLetterEntry, DeadLetterQueue, SOURCE_PIPELINE
from ..minisql import Database
from ..observability.metrics import MetricsRegistry, split_key
from ..observability.names import (
    COUNTER_DOCUMENTS_FED,
    COUNTER_DOCUMENTS_REJECTED,
    COUNTER_NOTIFICATIONS_EMITTED,
    GAUGE_EXECUTOR_QUEUE_DEPTH,
    GAUGE_SUBSCRIPTIONS,
    HISTOGRAM_BATCH_SIZE,
    STAGE_EXECUTOR_RUN_BATCH,
    stage_latency_name,
)
from ..observability.tracing import LATENCY_SUFFIX
from ..query.engine import QueryEngine
from ..reporting.email_sink import EmailSink, WebPublisher
from ..reporting.reporter import Reporter
from ..repository.semantics import SemanticClassifier
from ..repository.store import Repository
from ..subscription.compiler import SubscriptionCompiler
from ..subscription.cost import CostController
from ..subscription.manager import SubscriptionManager
from ..triggers.answers import QueryAnswerStore
from ..triggers.engine import TriggerEngine
from ..xmlstore.nodes import Document
from .executor import (
    BATCH_SIZE_BUCKETS,
    BatchExecutor,
    DEFAULT_BATCH_SIZE,
)
from .executors import ExecutorSpec, create as _create_executor, resolve
from .stages import FeedResult, LIFECYCLE, PipelineTask
from .stream import Fetch, HTML_PAGE, XML_PAGE

__all__ = ["FeedResult", "SubscriptionSystem"]


class SubscriptionSystem:
    """The assembled Figure 3 architecture behind one facade.

    Wires repository, alerters, MQP (optionally sharded), Subscription
    Manager, Trigger Engine and Reporter on a shared simulated clock.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        classifier: Optional[SemanticClassifier] = None,
        matcher_factory: Callable = AESMatcher,
        database: Optional[Database] = None,
        daily_email_capacity: int = 300_000,
        cost_controller: Optional[CostController] = None,
        shards: int = 1,
        shard_mode: str = "flow",
        metrics: Optional[MetricsRegistry] = None,
        executor: Union[str, "ExecutorSpec", BatchExecutor, None] = None,
        batch_size: Optional[int] = None,
        queue_bound: Optional[int] = None,
        dead_letters: Optional[DeadLetterQueue] = None,
    ):
        """``shards`` > 1 distributes the MQP (Section 4.2): ``shard_mode``
        is "flow" (documents partitioned; every shard holds all
        subscriptions) or "subscriptions" (subscriptions partitioned; every
        document visits every shard).

        ``metrics`` injects the observability registry threaded through
        every stage; the default builds one over the system clock (so
        latencies are deterministic under a :class:`SimulatedClock`).  Pass
        :data:`~repro.observability.NULL_REGISTRY` to disable
        instrumentation entirely.

        ``executor`` selects the batch executor used by :meth:`feed_batch`
        and :meth:`run_stream` — a spec string
        (``"process:workers=4,batch=64"``; see
        :mod:`repro.pipeline.executors` for the grammar), an
        :class:`~repro.pipeline.executors.ExecutorSpec`, an instance, or
        ``None`` for ``$REPRO_EXECUTOR`` / serial.  ``batch_size`` and
        ``queue_bound`` (the ingest-queue bound used by
        :meth:`run_stream`) override the spec's ``batch=`` / ``queue=``
        fields; the defaults are 32 and 2x the batch size.

        ``dead_letters`` quarantines pages the loader rejects instead of
        silently dropping them: each rejected fetch becomes a
        :class:`~repro.faults.DeadLetterEntry` (source ``"pipeline"``)
        that :meth:`requeue_dead_letters` can replay later.  ``None``
        keeps the pre-existing drop-and-count behaviour.
        """
        self.clock = clock if clock is not None else SimulatedClock()
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(self.clock)
        )
        self.classifier = (
            classifier if classifier is not None else SemanticClassifier()
        )
        self.repository = Repository(
            classifier=self.classifier, clock=self.clock,
            metrics=self.metrics,
        )
        self.query_engine = QueryEngine(self.repository)
        if shards <= 1:
            self.processor: Any = MonitoringQueryProcessor(
                matcher_factory=matcher_factory, clock=self.clock,
                metrics=self.metrics, shard_label="0",
            )
        elif shard_mode == "subscriptions":
            self.processor = SubscriptionPartitionedProcessor(
                shard_count=shards,
                matcher_factory=matcher_factory,
                clock=self.clock,
                metrics=self.metrics,
            )
        else:
            self.processor = FlowPartitionedProcessor(
                shard_count=shards,
                matcher_factory=matcher_factory,
                clock=self.clock,
                metrics=self.metrics,
            )
        self.alerter_chain = AlerterChain(metrics=self.metrics)
        self.email_sink = EmailSink(
            clock=self.clock, daily_capacity=daily_email_capacity
        )
        self.publisher = WebPublisher()
        self.reporter = Reporter(
            clock=self.clock,
            email_sink=self.email_sink,
            publisher=self.publisher,
            report_query_runner=self._run_report_query,
            metrics=self.metrics,
        )
        self.answer_store = QueryAnswerStore()
        self.trigger_engine = TriggerEngine(
            query_engine=self.query_engine,
            deliver=self._deliver_continuous,
            clock=self.clock,
            answer_store=self.answer_store,
            metrics=self.metrics,
        )
        if cost_controller is None:
            cost_controller = CostController(
                indexes=self.repository.indexes,
                total_documents=0,
            )
        self.cost_controller = cost_controller
        self.compiler = SubscriptionCompiler(
            processor=self.processor,
            alerter_chain=self.alerter_chain,
            trigger_engine=self.trigger_engine,
            reporter=self.reporter,
            repository=self.repository,
        )
        self.manager = SubscriptionManager(
            compiler=self.compiler,
            cost_controller=cost_controller,
            database=database,
        )
        self.processor.add_sink(self.manager.handle_notifications)
        self.documents_fed = 0
        self.documents_rejected = 0
        self._fed_counter = self.metrics.counter(COUNTER_DOCUMENTS_FED)
        self._emitted_counter = self.metrics.counter(
            COUNTER_NOTIFICATIONS_EMITTED
        )
        self._subscriptions_gauge = self.metrics.gauge(GAUGE_SUBSCRIPTIONS)
        if isinstance(executor, BatchExecutor):
            spec = ExecutorSpec(name=executor.name)
            self.executor = executor
        else:
            spec = resolve(executor)
            self.executor = _create_executor(spec)
        self.executor_spec = spec
        if batch_size is None:
            batch_size = spec.batch if spec.batch is not None else DEFAULT_BATCH_SIZE
        if batch_size < 1:
            raise PipelineError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = int(batch_size)
        if queue_bound is None:
            queue_bound = (
                spec.queue if spec.queue is not None else 2 * self.batch_size
            )
        if queue_bound < self.batch_size:
            raise PipelineError(
                f"queue_bound ({queue_bound}) must be >= batch_size"
                f" ({self.batch_size}) or full batches could never form"
            )
        self.queue_bound = int(queue_bound)
        self.dead_letters = dead_letters
        #: The attached RecoveryManager, if crash recovery is enabled
        #: (see enable_recovery / recover_runtime).
        self.recovery: Optional[Any] = None
        # Batch metrics are interned on the first feed_batch call so a
        # system fed only through the single-document path keeps a snapshot
        # free of executor series.
        self._queue_gauge = None
        self._batch_size_histogram = None
        self._run_batch_latency = None

    # -- subscription API -----------------------------------------------------------

    def subscribe(
        self,
        source: str,
        owner_email: Optional[str] = None,
        recipients: Tuple[str, ...] = (),
        privileged: Optional[bool] = None,
    ) -> int:
        self.cost_controller.total_documents = len(self.repository)
        subscription_id = self.manager.add_subscription(
            source,
            owner_email=owner_email,
            recipients=recipients,
            privileged=privileged,
        )
        self._subscriptions_gauge.set(self.manager.count())
        return subscription_id

    def unsubscribe(self, subscription_id: int) -> None:
        self.manager.remove_subscription(subscription_id)
        self._subscriptions_gauge.set(self.manager.count())

    # -- document flow ------------------------------------------------------------------

    def feed_xml(self, url: str, content: str) -> FeedResult:
        """One XML page fetched by the (simulated) crawler."""
        return self._feed_one(Fetch(url=url, content=content, kind=XML_PAGE))

    def feed_html(self, url: str, content: str) -> FeedResult:
        """One HTML page: signature tracking + keyword alerting only."""
        return self._feed_one(Fetch(url=url, content=content, kind=HTML_PAGE))

    def feed(self, fetch: Fetch) -> FeedResult:
        return self._feed_one(fetch)

    def _feed_one(self, fetch: Fetch) -> FeedResult:
        """Run one document through the stage lifecycle, no executor, no
        error slot: failures propagate to the caller as they always did."""
        task = PipelineTask(fetch=fetch)
        for stage, step in LIFECYCLE:
            step(self, task)
            task.stage = stage
        return task.result()

    def feed_batch(
        self, fetches: Iterable[Fetch], skip_malformed: bool = True
    ) -> List[FeedResult]:
        """Feed one batch of pages through the configured executor.

        Semantics match sequential :meth:`feed` calls on the same pages:
        per-document error isolation (with ``skip_malformed`` a rejected
        page is counted under ``documents_rejected`` /
        ``pipeline.documents_rejected{reason=...}`` and skipped), identical
        notifications, reports and counters.  With ``skip_malformed=False``
        the first rejection is raised and no later page in the batch enters
        the stateful stages.

        Batch observability: one ``executor.batch_size`` observation, one
        ``executor.run_batch.latency_seconds{executor=...}`` span, and the
        ``executor.queue_depth`` gauge holds the in-flight batch size while
        the executor runs.
        """
        tasks = [
            PipelineTask(fetch=fetch, index=index)
            for index, fetch in enumerate(fetches)
        ]
        if not tasks:
            return []
        if self._batch_size_histogram is None:
            self._queue_gauge = self.metrics.gauge(GAUGE_EXECUTOR_QUEUE_DEPTH)
            self._batch_size_histogram = self.metrics.histogram(
                HISTOGRAM_BATCH_SIZE,
                BATCH_SIZE_BUCKETS,
                executor=self.executor.name,
            )
            self._run_batch_latency = self.metrics.histogram(
                stage_latency_name(STAGE_EXECUTOR_RUN_BATCH),
                executor=self.executor.name,
            )
        self._batch_size_histogram.observe(len(tasks))
        self._queue_gauge.set(len(tasks))
        start = self.metrics.now()
        try:
            self.executor.run_batch(
                self, tasks, stop_on_error=not skip_malformed
            )
        finally:
            self._run_batch_latency.observe(self.metrics.now() - start)
            self._queue_gauge.set(0)
        results: List[FeedResult] = []
        for task in tasks:
            if task.error is not None:
                if not skip_malformed:
                    raise task.error
                self.documents_rejected += 1
                self.metrics.counter(
                    COUNTER_DOCUMENTS_REJECTED,
                    reason=type(task.error).__name__,
                ).inc()
                if self.dead_letters is not None:
                    self.dead_letters.push(
                        DeadLetterEntry(
                            url=task.fetch.url,
                            content=task.fetch.content,
                            kind=task.fetch.kind,
                            error=str(task.error),
                            error_class=type(task.error).__name__,
                            source=SOURCE_PIPELINE,
                            quarantined_at=self.clock.now(),
                        )
                    )
            elif task.done:
                results.append(task.result())
        if self.recovery is not None:
            self.recovery.note_batch()
        return results

    def run_stream(
        self,
        stream: Iterable[Fetch],
        skip_malformed: bool = True,
        batch_size: Optional[int] = None,
        queue_bound: Optional[int] = None,
    ) -> List[FeedResult]:
        """Feed a whole stream through the bounded ingest queue.

        A feeder thread drains ``stream`` into a
        :class:`~repro.pipeline.ingest.BoundedFetchQueue` of ``queue_bound``
        items (default: the system's ``queue_bound``) while this thread
        consumes batches of ``batch_size`` (default: the system's
        ``batch_size``) via :meth:`feed_batch` — so a slow executor
        throttles the stream (``ingest.backpressure_waits``) instead of
        buffering it, and ``executor.queue_depth`` can genuinely saturate.

        Per-document semantics are unchanged from eager chunking: with
        ``skip_malformed`` (the default) a page the loader rejects — any
        :class:`~repro.errors.ReproError` subclass it raises, not only
        :class:`~repro.errors.XMLSyntaxError` — is counted
        (``documents_rejected``, plus a
        ``pipeline.documents_rejected{reason=...}`` metric recording the
        error class) and skipped rather than aborting the stream.
        """
        from .ingest import IngestSession

        session = IngestSession(
            self,
            batch_size=batch_size,
            queue_bound=queue_bound,
            skip_malformed=skip_malformed,
        )
        return session.run(stream)

    def requeue_dead_letters(self) -> Tuple[int, int]:
        """Replay every quarantined document through the pipeline.

        Drains :attr:`dead_letters` and re-feeds each entry via
        :meth:`feed_batch`.  A document rejected again goes straight back
        into quarantine (``feed_batch`` pushes it), so the operation is
        safe to repeat.  Returns ``(recovered, requarantined)``.
        """
        if self.dead_letters is None:
            raise PipelineError(
                "this system has no dead-letter queue; pass dead_letters= "
                "to SubscriptionSystem to enable quarantine"
            )
        entries = self.dead_letters.drain()
        if not entries:
            return (0, 0)
        rejected_before = self.documents_rejected
        results = self.feed_batch(
            [entry.to_fetch() for entry in entries], skip_malformed=True
        )
        requarantined = self.documents_rejected - rejected_before
        return (len(results), requarantined)

    # -- crash recovery ------------------------------------------------------------------

    def enable_recovery(
        self,
        path: str,
        crawler: Optional[Any] = None,
        estimator: Optional[Any] = None,
        checkpoint_every: int = 64,
        sync_every: int = 1,
        metadata: Optional[Any] = None,
    ):
        """Make this system crash-consistent: journal every delivered
        notification to ``path`` (a :class:`~repro.minisql.wal.WriteAheadLog`)
        and checkpoint the full runtime — reporter buffers, repository,
        DLQ, and the ``crawler`` / ``estimator`` cursors when given —
        every ``checkpoint_every`` ingested batches.  An initial
        checkpoint is written immediately so *any* later crash has a
        restorable snapshot.  Returns the attached
        :class:`~repro.recovery.RecoveryManager`.
        """
        # Lazy import: repro.recovery reaches back into pipeline modules.
        from ..recovery import RecoveryManager

        manager = RecoveryManager(
            self,
            path,
            crawler=crawler,
            estimator=estimator,
            checkpoint_every=checkpoint_every,
            sync_every=sync_every,
            metadata=metadata,
        )
        manager.attach()
        manager.checkpoint()
        return manager

    def recover_runtime(
        self,
        path: str,
        crawler: Optional[Any] = None,
        estimator: Optional[Any] = None,
        checkpoint_every: int = 64,
        sync_every: int = 1,
    ):
        """Rebuild the runtime of a crashed system from its journal.

        Call on a *freshly built* system (typically constructed over
        ``Database.recover(...)`` so the subscription definitions came
        back first); this re-registers the persisted subscriptions,
        restores the checkpointed runtime into this system (and into
        ``crawler`` / ``estimator`` when given — they must be freshly
        built with the same configuration as the crashed run), and
        attaches a :class:`~repro.recovery.RecoveryManager` that dedups
        the regenerated post-checkpoint deliveries against the journal.
        Returns the manager; its ``replayed`` counter says how many
        journaled deliveries the checkpoint had not yet absorbed.
        """
        from ..recovery import RecoveryManager

        self.manager.recover()
        self._subscriptions_gauge.set(self.manager.count())
        manager = RecoveryManager(
            self,
            path,
            crawler=crawler,
            estimator=estimator,
            checkpoint_every=checkpoint_every,
            sync_every=sync_every,
        )
        manager.recover()
        return manager

    # -- observability -------------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Plain-dict view of the whole pipeline's metrics.

        Layout::

            {
              "documents_fed": int,            # pages that entered the system
              "documents_rejected": int,       # loader-rejected pages
              "rejections": {reason: count},   # per error-class breakdown
              "notifications_emitted": int,    # MQP notifications, total
              "shard_load": {"0": n, ...},     # alerts inspected per shard
              "stages": {stage: calls},        # per-stage call counts
              "counters": {...},               # raw labelled counters
              "gauges": {...},
              "histograms": {...},             # per-stage latency histograms
            }

        ``counters`` / ``gauges`` / ``histograms`` keep full label detail
        (keys rendered ``name{k=v,...}``); ``stages`` sums each stage's
        latency-histogram counts across labels, so for a clean stream
        ``stages["repository.store_xml"] + stages["repository.store_html"]
        == documents_fed``.
        """
        raw = self.metrics.snapshot()
        stages: dict = {}
        for key, payload in raw["histograms"].items():
            name, _ = split_key(key)
            if name.endswith(LATENCY_SUFFIX):
                stage = name[: -len(LATENCY_SUFFIX)]
                stages[stage] = stages.get(stage, 0) + payload["count"]
        rejections: dict = {}
        for key, value in raw["counters"].items():
            name, labels = split_key(key)
            if name == COUNTER_DOCUMENTS_REJECTED:
                reason = labels.get("reason", "unknown")
                rejections[reason] = rejections.get(reason, 0) + int(value)
        if hasattr(self.processor, "shard_load"):
            loads = self.processor.shard_load()
        else:
            loads = [self.processor.stats.alerts_processed]
        return {
            "documents_fed": self.documents_fed,
            "documents_rejected": self.documents_rejected,
            "rejections": rejections,
            "notifications_emitted": int(
                self.metrics.counter_total(COUNTER_NOTIFICATIONS_EMITTED)
            ),
            "shard_load": {
                str(index): load for index, load in enumerate(loads)
            },
            "stages": stages,
            "counters": raw["counters"],
            "gauges": raw["gauges"],
            "histograms": raw["histograms"],
        }

    # -- time ----------------------------------------------------------------------------

    def advance_time(self, seconds: float, tick_every: float = 3600.0) -> None:
        """Advance the simulated clock, running timers along the way.

        Timers (trigger engine, reporter) are evaluated every ``tick_every``
        simulated seconds so periodic conditions fire at the right times
        within long jumps.
        """
        if not isinstance(self.clock, SimulatedClock):
            raise TypeError("advance_time requires a SimulatedClock")
        remaining = seconds
        while remaining > 0:
            step = min(tick_every, remaining)
            self.clock.advance(step)
            remaining -= step
            self.trigger_engine.tick()
            self.reporter.tick()

    def advance_days(self, days: float) -> None:
        self.advance_time(days * SECONDS_PER_DAY)

    # -- internal wiring -----------------------------------------------------------------

    def _deliver_continuous(
        self, subscription_id: int, query_name: str, elements
    ) -> None:
        try:
            self.reporter.deliver(subscription_id, query_name, elements)
        except ReportingError:
            pass

    def _run_report_query(
        self, query_text: str, report_document: Document
    ) -> Document:
        result = self.query_engine.evaluate_on_document(
            query_text, report_document, name="Report"
        )
        return result.to_document()
