"""The assembled subscription system (Figure 3).

:class:`SubscriptionSystem` wires every module of the reproduction the way
the paper's architecture diagram does: the document flow enters through the
loader/repository, Alerters detect atomic events, the Monitoring Query
Processor detects complex events, notifications are routed by the
Subscription Manager to the Reporter and the Trigger Engine, and reports
leave through the email sink / web publisher.

This is the facade examples and integration tests use::

    system = SubscriptionSystem()
    system.subscribe('subscription S ...', owner_email='user@example.org')
    system.feed_xml('http://site/catalog.xml', '<catalog>...</catalog>')
    system.advance_days(7)   # trigger engine + reporter timers run
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Tuple

from ..alerters.chain import AlerterChain
from ..alerters.context import FetchedDocument
from ..clock import Clock, SECONDS_PER_DAY, SimulatedClock
from ..core.aes import AESMatcher
from ..core.processor import Alert, MonitoringQueryProcessor, Notification
from ..core.sharding import (
    FlowPartitionedProcessor,
    SubscriptionPartitionedProcessor,
)
from ..diff.changes import classify_changes
from ..errors import ReportingError, XMLSyntaxError
from ..minisql import Database
from ..query.engine import QueryEngine
from ..reporting.email_sink import EmailSink, WebPublisher
from ..reporting.reporter import Reporter
from ..repository.semantics import SemanticClassifier
from ..repository.store import FetchOutcome, Repository
from ..subscription.compiler import SubscriptionCompiler
from ..subscription.cost import CostController
from ..subscription.manager import SubscriptionManager
from ..triggers.answers import QueryAnswerStore
from ..triggers.engine import TriggerEngine
from ..xmlstore.nodes import Document
from .stream import Fetch


@dataclass
class FeedResult:
    """What one fetched page produced inside the system."""

    outcome: FetchOutcome
    alert: Optional[Alert]
    notifications: List[Notification]


class SubscriptionSystem:
    """The assembled Figure 3 architecture behind one facade.

    Wires repository, alerters, MQP (optionally sharded), Subscription
    Manager, Trigger Engine and Reporter on a shared simulated clock.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        classifier: Optional[SemanticClassifier] = None,
        matcher_factory: Callable = AESMatcher,
        database: Optional[Database] = None,
        daily_email_capacity: int = 300_000,
        cost_controller: Optional[CostController] = None,
        shards: int = 1,
        shard_mode: str = "flow",
    ):
        """``shards`` > 1 distributes the MQP (Section 4.2): ``shard_mode``
        is "flow" (documents partitioned; every shard holds all
        subscriptions) or "subscriptions" (subscriptions partitioned; every
        document visits every shard)."""
        self.clock = clock if clock is not None else SimulatedClock()
        self.classifier = (
            classifier if classifier is not None else SemanticClassifier()
        )
        self.repository = Repository(
            classifier=self.classifier, clock=self.clock
        )
        self.query_engine = QueryEngine(self.repository)
        if shards <= 1:
            self.processor: Any = MonitoringQueryProcessor(
                matcher_factory=matcher_factory, clock=self.clock
            )
        elif shard_mode == "subscriptions":
            self.processor = SubscriptionPartitionedProcessor(
                shard_count=shards,
                matcher_factory=matcher_factory,
                clock=self.clock,
            )
        else:
            self.processor = FlowPartitionedProcessor(
                shard_count=shards,
                matcher_factory=matcher_factory,
                clock=self.clock,
            )
        self.alerter_chain = AlerterChain()
        self.email_sink = EmailSink(
            clock=self.clock, daily_capacity=daily_email_capacity
        )
        self.publisher = WebPublisher()
        self.reporter = Reporter(
            clock=self.clock,
            email_sink=self.email_sink,
            publisher=self.publisher,
            report_query_runner=self._run_report_query,
        )
        self.answer_store = QueryAnswerStore()
        self.trigger_engine = TriggerEngine(
            query_engine=self.query_engine,
            deliver=self._deliver_continuous,
            clock=self.clock,
            answer_store=self.answer_store,
        )
        if cost_controller is None:
            cost_controller = CostController(
                indexes=self.repository.indexes,
                total_documents=0,
            )
        self.cost_controller = cost_controller
        self.compiler = SubscriptionCompiler(
            processor=self.processor,
            alerter_chain=self.alerter_chain,
            trigger_engine=self.trigger_engine,
            reporter=self.reporter,
            repository=self.repository,
        )
        self.manager = SubscriptionManager(
            compiler=self.compiler,
            cost_controller=cost_controller,
            database=database,
        )
        self.processor.add_sink(self.manager.handle_notifications)
        self.documents_fed = 0
        self.documents_rejected = 0

    # -- subscription API -----------------------------------------------------------

    def subscribe(
        self,
        source: str,
        owner_email: Optional[str] = None,
        recipients: Tuple[str, ...] = (),
        privileged: Optional[bool] = None,
    ) -> int:
        self.cost_controller.total_documents = len(self.repository)
        return self.manager.add_subscription(
            source,
            owner_email=owner_email,
            recipients=recipients,
            privileged=privileged,
        )

    def unsubscribe(self, subscription_id: int) -> None:
        self.manager.remove_subscription(subscription_id)

    # -- document flow ------------------------------------------------------------------

    def feed_xml(self, url: str, content: str) -> FeedResult:
        """One XML page fetched by the (simulated) crawler."""
        outcome = self.repository.store_xml(url, content)
        changes = None
        if outcome.delta is not None and outcome.old_document is not None:
            assert outcome.document is not None
            changes = classify_changes(
                outcome.old_document, outcome.document, outcome.delta
            )
        fetched = FetchedDocument(
            url=url,
            meta=outcome.meta,
            status=outcome.status,
            document=outcome.document,
            changes=changes,
        )
        return self._process(outcome, fetched)

    def feed_html(self, url: str, content: str) -> FeedResult:
        """One HTML page: signature tracking + keyword alerting only."""
        outcome = self.repository.store_html(url, content)
        fetched = FetchedDocument(
            url=url,
            meta=outcome.meta,
            status=outcome.status,
            raw_content=content,
        )
        return self._process(outcome, fetched)

    def feed(self, fetch: Fetch) -> FeedResult:
        if fetch.is_xml:
            return self.feed_xml(fetch.url, fetch.content)
        return self.feed_html(fetch.url, fetch.content)

    def run_stream(
        self, stream: Iterable[Fetch], skip_malformed: bool = True
    ) -> List[FeedResult]:
        """Feed a whole stream.

        Real crawls contain malformed pages; with ``skip_malformed`` (the
        default) a page the loader rejects is counted
        (``documents_rejected``) and skipped rather than aborting the
        stream.
        """
        results: List[FeedResult] = []
        for fetch in stream:
            try:
                results.append(self.feed(fetch))
            except XMLSyntaxError:
                if not skip_malformed:
                    raise
                self.documents_rejected += 1
        return results

    def _process(
        self, outcome: FetchOutcome, fetched: FetchedDocument
    ) -> FeedResult:
        self.documents_fed += 1
        alert = self.alerter_chain.build_alert(fetched)
        notifications: List[Notification] = []
        if alert is not None:
            notifications = self.processor.process_alert(alert)
        return FeedResult(
            outcome=outcome, alert=alert, notifications=notifications
        )

    # -- time ----------------------------------------------------------------------------

    def advance_time(self, seconds: float, tick_every: float = 3600.0) -> None:
        """Advance the simulated clock, running timers along the way.

        Timers (trigger engine, reporter) are evaluated every ``tick_every``
        simulated seconds so periodic conditions fire at the right times
        within long jumps.
        """
        if not isinstance(self.clock, SimulatedClock):
            raise TypeError("advance_time requires a SimulatedClock")
        remaining = seconds
        while remaining > 0:
            step = min(tick_every, remaining)
            self.clock.advance(step)
            remaining -= step
            self.trigger_engine.tick()
            self.reporter.tick()

    def advance_days(self, days: float) -> None:
        self.advance_time(days * SECONDS_PER_DAY)

    # -- internal wiring -----------------------------------------------------------------

    def _deliver_continuous(
        self, subscription_id: int, query_name: str, elements
    ) -> None:
        try:
            self.reporter.deliver(subscription_id, query_name, elements)
        except ReportingError:
            pass

    def _run_report_query(
        self, query_text: str, report_document: Document
    ) -> Document:
        result = self.query_engine.evaluate_on_document(
            query_text, report_document, name="Report"
        )
        return result.to_document()
