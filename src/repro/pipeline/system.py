"""The assembled subscription system (Figure 3).

:class:`SubscriptionSystem` wires every module of the reproduction the way
the paper's architecture diagram does: the document flow enters through the
loader/repository, Alerters detect atomic events, the Monitoring Query
Processor detects complex events, notifications are routed by the
Subscription Manager to the Reporter and the Trigger Engine, and reports
leave through the email sink / web publisher.

This is the facade examples and integration tests use::

    system = SubscriptionSystem()
    system.subscribe('subscription S ...', owner_email='user@example.org')
    system.feed_xml('http://site/catalog.xml', '<catalog>...</catalog>')
    system.advance_days(7)   # trigger engine + reporter timers run
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Tuple

from ..alerters.chain import AlerterChain
from ..alerters.context import FetchedDocument
from ..clock import Clock, SECONDS_PER_DAY, SimulatedClock
from ..core.aes import AESMatcher
from ..core.processor import Alert, MonitoringQueryProcessor, Notification
from ..core.sharding import (
    FlowPartitionedProcessor,
    SubscriptionPartitionedProcessor,
)
from ..diff.changes import classify_changes
from ..errors import ReportingError, ReproError
from ..minisql import Database
from ..observability.metrics import MetricsRegistry, split_key
from ..observability.names import (
    COUNTER_DOCUMENTS_FED,
    COUNTER_DOCUMENTS_REJECTED,
    COUNTER_NOTIFICATIONS_EMITTED,
    GAUGE_SUBSCRIPTIONS,
)
from ..observability.tracing import LATENCY_SUFFIX
from ..query.engine import QueryEngine
from ..reporting.email_sink import EmailSink, WebPublisher
from ..reporting.reporter import Reporter
from ..repository.semantics import SemanticClassifier
from ..repository.store import FetchOutcome, Repository
from ..subscription.compiler import SubscriptionCompiler
from ..subscription.cost import CostController
from ..subscription.manager import SubscriptionManager
from ..triggers.answers import QueryAnswerStore
from ..triggers.engine import TriggerEngine
from ..xmlstore.nodes import Document
from .stream import Fetch


@dataclass
class FeedResult:
    """What one fetched page produced inside the system."""

    outcome: FetchOutcome
    alert: Optional[Alert]
    notifications: List[Notification]


class SubscriptionSystem:
    """The assembled Figure 3 architecture behind one facade.

    Wires repository, alerters, MQP (optionally sharded), Subscription
    Manager, Trigger Engine and Reporter on a shared simulated clock.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        classifier: Optional[SemanticClassifier] = None,
        matcher_factory: Callable = AESMatcher,
        database: Optional[Database] = None,
        daily_email_capacity: int = 300_000,
        cost_controller: Optional[CostController] = None,
        shards: int = 1,
        shard_mode: str = "flow",
        metrics: Optional[MetricsRegistry] = None,
    ):
        """``shards`` > 1 distributes the MQP (Section 4.2): ``shard_mode``
        is "flow" (documents partitioned; every shard holds all
        subscriptions) or "subscriptions" (subscriptions partitioned; every
        document visits every shard).

        ``metrics`` injects the observability registry threaded through
        every stage; the default builds one over the system clock (so
        latencies are deterministic under a :class:`SimulatedClock`).  Pass
        :data:`~repro.observability.NULL_REGISTRY` to disable
        instrumentation entirely.
        """
        self.clock = clock if clock is not None else SimulatedClock()
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(self.clock)
        )
        self.classifier = (
            classifier if classifier is not None else SemanticClassifier()
        )
        self.repository = Repository(
            classifier=self.classifier, clock=self.clock,
            metrics=self.metrics,
        )
        self.query_engine = QueryEngine(self.repository)
        if shards <= 1:
            self.processor: Any = MonitoringQueryProcessor(
                matcher_factory=matcher_factory, clock=self.clock,
                metrics=self.metrics, shard_label="0",
            )
        elif shard_mode == "subscriptions":
            self.processor = SubscriptionPartitionedProcessor(
                shard_count=shards,
                matcher_factory=matcher_factory,
                clock=self.clock,
                metrics=self.metrics,
            )
        else:
            self.processor = FlowPartitionedProcessor(
                shard_count=shards,
                matcher_factory=matcher_factory,
                clock=self.clock,
                metrics=self.metrics,
            )
        self.alerter_chain = AlerterChain(metrics=self.metrics)
        self.email_sink = EmailSink(
            clock=self.clock, daily_capacity=daily_email_capacity
        )
        self.publisher = WebPublisher()
        self.reporter = Reporter(
            clock=self.clock,
            email_sink=self.email_sink,
            publisher=self.publisher,
            report_query_runner=self._run_report_query,
            metrics=self.metrics,
        )
        self.answer_store = QueryAnswerStore()
        self.trigger_engine = TriggerEngine(
            query_engine=self.query_engine,
            deliver=self._deliver_continuous,
            clock=self.clock,
            answer_store=self.answer_store,
            metrics=self.metrics,
        )
        if cost_controller is None:
            cost_controller = CostController(
                indexes=self.repository.indexes,
                total_documents=0,
            )
        self.cost_controller = cost_controller
        self.compiler = SubscriptionCompiler(
            processor=self.processor,
            alerter_chain=self.alerter_chain,
            trigger_engine=self.trigger_engine,
            reporter=self.reporter,
            repository=self.repository,
        )
        self.manager = SubscriptionManager(
            compiler=self.compiler,
            cost_controller=cost_controller,
            database=database,
        )
        self.processor.add_sink(self.manager.handle_notifications)
        self.documents_fed = 0
        self.documents_rejected = 0
        self._fed_counter = self.metrics.counter(COUNTER_DOCUMENTS_FED)
        self._emitted_counter = self.metrics.counter(
            COUNTER_NOTIFICATIONS_EMITTED
        )
        self._subscriptions_gauge = self.metrics.gauge(GAUGE_SUBSCRIPTIONS)

    # -- subscription API -----------------------------------------------------------

    def subscribe(
        self,
        source: str,
        owner_email: Optional[str] = None,
        recipients: Tuple[str, ...] = (),
        privileged: Optional[bool] = None,
    ) -> int:
        self.cost_controller.total_documents = len(self.repository)
        subscription_id = self.manager.add_subscription(
            source,
            owner_email=owner_email,
            recipients=recipients,
            privileged=privileged,
        )
        self._subscriptions_gauge.set(self.manager.count())
        return subscription_id

    def unsubscribe(self, subscription_id: int) -> None:
        self.manager.remove_subscription(subscription_id)
        self._subscriptions_gauge.set(self.manager.count())

    # -- document flow ------------------------------------------------------------------

    def feed_xml(self, url: str, content: str) -> FeedResult:
        """One XML page fetched by the (simulated) crawler."""
        outcome = self.repository.store_xml(url, content)
        changes = None
        if outcome.delta is not None and outcome.old_document is not None:
            assert outcome.document is not None
            changes = classify_changes(
                outcome.old_document, outcome.document, outcome.delta
            )
        fetched = FetchedDocument(
            url=url,
            meta=outcome.meta,
            status=outcome.status,
            document=outcome.document,
            changes=changes,
        )
        return self._process(outcome, fetched)

    def feed_html(self, url: str, content: str) -> FeedResult:
        """One HTML page: signature tracking + keyword alerting only."""
        outcome = self.repository.store_html(url, content)
        fetched = FetchedDocument(
            url=url,
            meta=outcome.meta,
            status=outcome.status,
            raw_content=content,
        )
        return self._process(outcome, fetched)

    def feed(self, fetch: Fetch) -> FeedResult:
        if fetch.is_xml:
            return self.feed_xml(fetch.url, fetch.content)
        return self.feed_html(fetch.url, fetch.content)

    def run_stream(
        self, stream: Iterable[Fetch], skip_malformed: bool = True
    ) -> List[FeedResult]:
        """Feed a whole stream.

        Real crawls contain malformed pages and kind-confused URLs; with
        ``skip_malformed`` (the default) a page the loader rejects — any
        :class:`ReproError` subclass it raises, not only
        :class:`XMLSyntaxError` — is counted (``documents_rejected``, plus
        a ``pipeline.documents_rejected{reason=...}`` metric recording the
        error class) and skipped rather than aborting the stream.
        """
        results: List[FeedResult] = []
        for fetch in stream:
            try:
                results.append(self.feed(fetch))
            except ReproError as exc:
                if not skip_malformed:
                    raise
                self.documents_rejected += 1
                self.metrics.counter(
                    COUNTER_DOCUMENTS_REJECTED, reason=type(exc).__name__
                ).inc()
        return results

    def _process(
        self, outcome: FetchOutcome, fetched: FetchedDocument
    ) -> FeedResult:
        self.documents_fed += 1
        self._fed_counter.inc()
        alert = self.alerter_chain.build_alert(fetched)
        notifications: List[Notification] = []
        if alert is not None:
            notifications = self.processor.process_alert(alert)
            if notifications:
                self._emitted_counter.inc(len(notifications))
        return FeedResult(
            outcome=outcome, alert=alert, notifications=notifications
        )

    # -- observability -------------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Plain-dict view of the whole pipeline's metrics.

        Layout::

            {
              "documents_fed": int,            # pages that entered the system
              "documents_rejected": int,       # loader-rejected pages
              "rejections": {reason: count},   # per error-class breakdown
              "notifications_emitted": int,    # MQP notifications, total
              "shard_load": {"0": n, ...},     # alerts inspected per shard
              "stages": {stage: calls},        # per-stage call counts
              "counters": {...},               # raw labelled counters
              "gauges": {...},
              "histograms": {...},             # per-stage latency histograms
            }

        ``counters`` / ``gauges`` / ``histograms`` keep full label detail
        (keys rendered ``name{k=v,...}``); ``stages`` sums each stage's
        latency-histogram counts across labels, so for a clean stream
        ``stages["repository.store_xml"] + stages["repository.store_html"]
        == documents_fed``.
        """
        raw = self.metrics.snapshot()
        stages: dict = {}
        for key, payload in raw["histograms"].items():
            name, _ = split_key(key)
            if name.endswith(LATENCY_SUFFIX):
                stage = name[: -len(LATENCY_SUFFIX)]
                stages[stage] = stages.get(stage, 0) + payload["count"]
        rejections: dict = {}
        for key, value in raw["counters"].items():
            name, labels = split_key(key)
            if name == COUNTER_DOCUMENTS_REJECTED:
                reason = labels.get("reason", "unknown")
                rejections[reason] = rejections.get(reason, 0) + int(value)
        if hasattr(self.processor, "shard_load"):
            loads = self.processor.shard_load()
        else:
            loads = [self.processor.stats.alerts_processed]
        return {
            "documents_fed": self.documents_fed,
            "documents_rejected": self.documents_rejected,
            "rejections": rejections,
            "notifications_emitted": int(
                self.metrics.counter_total(COUNTER_NOTIFICATIONS_EMITTED)
            ),
            "shard_load": {
                str(index): load for index, load in enumerate(loads)
            },
            "stages": stages,
            "counters": raw["counters"],
            "gauges": raw["gauges"],
            "histograms": raw["histograms"],
        }

    # -- time ----------------------------------------------------------------------------

    def advance_time(self, seconds: float, tick_every: float = 3600.0) -> None:
        """Advance the simulated clock, running timers along the way.

        Timers (trigger engine, reporter) are evaluated every ``tick_every``
        simulated seconds so periodic conditions fire at the right times
        within long jumps.
        """
        if not isinstance(self.clock, SimulatedClock):
            raise TypeError("advance_time requires a SimulatedClock")
        remaining = seconds
        while remaining > 0:
            step = min(tick_every, remaining)
            self.clock.advance(step)
            remaining -= step
            self.trigger_engine.tick()
            self.reporter.tick()

    def advance_days(self, days: float) -> None:
        self.advance_time(days * SECONDS_PER_DAY)

    # -- internal wiring -----------------------------------------------------------------

    def _deliver_continuous(
        self, subscription_id: int, query_name: str, elements
    ) -> None:
        try:
            self.reporter.deliver(subscription_id, query_name, elements)
        except ReportingError:
            pass

    def _run_report_query(
        self, query_text: str, report_document: Document
    ) -> Document:
        result = self.query_engine.evaluate_on_document(
            query_text, report_document, name="Report"
        )
        return result.to_document()
