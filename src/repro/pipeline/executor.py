"""Pluggable batch executors for the staged ingestion pipeline.

The paper's Xyleme scales ingestion by running its Figure 3 stages as
independent processes; related FPGA/cluster work (see PAPERS.md) scales the
*match* stage by fanning one document stream across parallel engines.  This
module gives the reproduction the same seam: a :class:`BatchExecutor` turns
one batch of :class:`~repro.pipeline.stages.PipelineTask` items into
completed tasks, and the three implementations trade concurrency for
simplicity without changing observable behaviour:

* :class:`SerialExecutor` — the default; byte-for-byte today's one-document-
  at-a-time behaviour, each task running the full lifecycle in input order.
* :class:`ThreadedExecutor` — fans the *pure* stages (XML parsing, alerter
  detection) out over a shared thread pool, then merges back into input
  order before the stateful load/alert/match stages.  Under the CPython GIL
  this buys overlap rather than raw speedup (the bench records the actual
  ratio); the ordered merge is what the next PRs' process pools and async
  crawlers will plug into.
* :class:`ShardFanoutExecutor` — runs the front half in order, then fans
  the batch's alerts out across a
  :class:`~repro.core.sharding.FlowPartitionedProcessor`'s shards
  concurrently (one worker per occupied shard) instead of the serial
  shard loop, dispatching notifications in input order afterwards.

Equivalence contract (property-tested): for the same stream, every
executor produces the same notification multiset, the same rejection
accounting and the same document/notification counters as the serial path.

Every executor observes the same batch metrics: one
``executor.stage.latency_seconds{executor=,stage=}`` observation per stage
per batch (the total time the batch spent in that stage), plus the
``executor.batch_size`` histogram, ``executor.run_batch.latency_seconds``
and the ``executor.queue_depth`` gauge maintained by
:meth:`~repro.pipeline.system.SubscriptionSystem.feed_batch`.
"""

from __future__ import annotations

import os
import pickle
import threading
import warnings
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.sharding import FlowPartitionedProcessor
from ..errors import PipelineError
from ..observability.metrics import MetricsRegistry
from ..observability.names import (
    COUNTER_EXECUTOR_FALLBACKS,
    COUNTER_EXECUTOR_WATCHDOG_TIMEOUTS,
    STAGE_EXECUTOR_STAGE,
    stage_latency_name,
)
from .stages import (
    LIFECYCLE,
    PipelineTask,
    STAGE_ALERT,
    STAGE_CLASSIFY,
    STAGE_DETECT,
    STAGE_LOAD,
    STAGE_MATCH,
    STAGE_PARSE,
    STAGE_ROUTE,
    alert_stage,
    classify_stage,
    detect_stage,
    load_stage,
    match_stage,
    parse_stage,
    raise_if_fatal,
    route_stage,
    run_stage,
)

#: Documents per batch when the caller does not choose (``run_stream``).
DEFAULT_BATCH_SIZE = 32

#: Environment variable naming the default executor (CI runs the whole
#: tier-1 suite with ``REPRO_EXECUTOR=threaded`` to exercise the
#: non-default path).
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Buckets for the ``executor.batch_size`` histogram (documents, not
#: seconds — powers of two up to well past any sensible batch).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
)


class _StageTimer:
    """Accumulates per-stage elapsed time across one batch.

    ``flush`` records one observation per touched stage into
    ``executor.stage.latency_seconds{executor=<name>,stage=<stage>}`` — the
    total time this batch spent in that stage, whichever executor shape
    (per-task interleaving or whole-batch sweeps) produced it.
    """

    __slots__ = ("metrics", "executor", "elapsed")

    def __init__(self, metrics: MetricsRegistry, executor: str):
        self.metrics = metrics
        self.executor = executor
        self.elapsed: Dict[str, float] = {}

    def start(self) -> float:
        return self.metrics.now()

    def stop(self, stage: str, start: float) -> None:
        self.elapsed[stage] = (
            self.elapsed.get(stage, 0.0) + self.metrics.now() - start
        )

    def flush(self) -> None:
        for stage, total in self.elapsed.items():
            self.metrics.histogram(
                stage_latency_name(STAGE_EXECUTOR_STAGE),
                executor=self.executor,
                stage=stage,
            ).observe(total)


class BatchExecutor:
    """How one batch of tasks moves through the stage lifecycle.

    ``run_batch`` must run the stateful stages (load/classify/alert/match/
    route) in input order and honour the error-slot contract; with
    ``stop_on_error`` it must not run any stateful stage for tasks after
    the first rejected one (strict-mode streams abort at the first bad
    document, exactly like sequential feeding).
    """

    name = "base"

    def run_batch(
        self,
        system: Any,
        tasks: List[PipelineTask],
        stop_on_error: bool = False,
    ) -> List[PipelineTask]:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent; executors without any
        are free to inherit this no-op)."""

    def _count_fallback(self, system: Any) -> None:
        """Record one degraded-mode fallback to the serial path.

        A worker-infrastructure exception (a broken pool, a crashed
        shard sweep) must degrade the batch to the serial path, not
        abort the stream; every such event is counted under
        ``executor.fallbacks{executor=<name>}``.
        """
        system.metrics.counter(
            COUNTER_EXECUTOR_FALLBACKS, executor=self.name
        ).inc()


class SerialExecutor(BatchExecutor):
    """The reference executor: each task runs the full lifecycle, one task
    at a time, in input order — byte-for-byte the pre-batching behaviour."""

    name = "serial"

    def run_batch(
        self,
        system: Any,
        tasks: List[PipelineTask],
        stop_on_error: bool = False,
    ) -> List[PipelineTask]:
        timer = _StageTimer(system.metrics, self.name)
        for task in tasks:
            raise_if_fatal(task)
            for stage, step in LIFECYCLE:
                start = timer.start()
                run_stage(stage, step, system, task)
                timer.stop(stage, start)
                if task.error is not None:
                    break
            if task.error is not None and stop_on_error:
                break
        timer.flush()
        return tasks


class ThreadedExecutor(BatchExecutor):
    """Thread pool over the pure stages, ordered merge over the rest.

    Sweep layout per batch::

        1. parse    — worker threads (pure: XML text -> Document)
        2. load + classify — input order (repository state)
        3. detect   — worker threads (pure: read-only alerter tables)
        4. alert + match + route — input order (counters, MQP, sinks)

    Work is fanned out in contiguous slices — one future per worker, with
    the main thread taking the first slice — so per-item submission
    overhead stays negligible at small batch sizes.  The pool is created
    lazily and reused across batches.
    """

    name = "threaded"

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 2)
        self.max_workers = max(1, int(max_workers))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # -- pool plumbing ----------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-executor",
                )
            return self._pool

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    @staticmethod
    def _run_slice(
        step: Callable[[PipelineTask], Any], items: Sequence[PipelineTask]
    ) -> None:
        for item in items:
            step(item)

    def _sweep(
        self, step: Callable[[PipelineTask], Any], items: List[PipelineTask]
    ) -> None:
        """Apply a pure per-task step across the pool in slices.

        ``step`` must never raise — the stage steps used here park failures
        on the task instead (see the error-slot contract).
        """
        if len(items) <= 1 or self.max_workers == 1:
            self._run_slice(step, items)
            return
        workers = min(self.max_workers, len(items))
        bound = -(-len(items) // workers)  # ceil division
        slices = [
            items[offset : offset + bound]
            for offset in range(0, len(items), bound)
        ]
        pool = self._ensure_pool()
        futures = [
            pool.submit(self._run_slice, step, piece) for piece in slices[1:]
        ]
        self._run_slice(step, slices[0])  # main thread takes a share too
        for future in futures:
            future.result()

    def _guarded_sweep(
        self,
        system: Any,
        step: Callable[[PipelineTask], Any],
        items: List[PipelineTask],
    ) -> None:
        """A pool sweep that degrades to the serial path instead of
        aborting the stream.

        The per-task steps park their own failures (error-slot contract)
        and are idempotent — ``parse_stage`` skips tasks already parsed,
        ``detect_stage`` recomputes a pure result — so rerunning the
        whole slice serially after a partial sweep is safe.
        """
        try:
            self._sweep(step, items)
        except Exception:
            self._count_fallback(system)
            self._run_slice(step, items)

    # -- the batch --------------------------------------------------------

    def run_batch(
        self,
        system: Any,
        tasks: List[PipelineTask],
        stop_on_error: bool = False,
    ) -> List[PipelineTask]:
        timer = _StageTimer(system.metrics, self.name)

        start = timer.start()
        self._guarded_sweep(
            system,
            parse_stage,
            [t for t in tasks if t.fetch.is_xml and t.document is None],
        )
        timer.stop(STAGE_PARSE, start)

        reached = len(tasks)
        for position, task in enumerate(tasks):
            raise_if_fatal(task)
            start = timer.start()
            run_stage(STAGE_LOAD, load_stage, system, task)
            timer.stop(STAGE_LOAD, start)
            start = timer.start()
            run_stage(STAGE_CLASSIFY, classify_stage, system, task)
            timer.stop(STAGE_CLASSIFY, start)
            if task.error is not None and stop_on_error:
                reached = position + 1
                break
        live = tasks[:reached]

        start = timer.start()
        self._guarded_sweep(
            system,
            partial(detect_stage, system),
            [t for t in live if t.error is None],
        )
        timer.stop(STAGE_DETECT, start)

        for task in live:
            for stage, step in (
                (STAGE_ALERT, alert_stage),
                (STAGE_MATCH, match_stage),
                (STAGE_ROUTE, route_stage),
            ):
                start = timer.start()
                run_stage(stage, step, system, task)
                timer.stop(stage, start)
                if task.error is not None:
                    break
            if task.error is not None and stop_on_error:
                break
        timer.flush()
        return tasks


def _contiguous_slices(items: List, lanes: int) -> List[List]:
    """Split ``items`` into at most ``lanes`` contiguous slices."""
    lanes = min(max(1, lanes), len(items))
    bound = -(-len(items) // lanes)  # ceil division
    return [
        items[offset : offset + bound]
        for offset in range(0, len(items), bound)
    ]


class ProcessExecutor(BatchExecutor):
    """True-parallel parse/detect: the pure stages leave the GIL entirely.

    Sweep layout per batch (same ordered-merge contract as
    :class:`ThreadedExecutor`)::

        1. parse    — worker processes (payload: ParseRequest/Response)
        2. load + classify — input order (repository state)
        3. detect   — worker processes (payload: DetectRequest/Response)
        4. alert + match + route — input order (counters, MQP, sinks)

    ``workers`` counts parallel lanes *including* the parent process: the
    parent takes the first contiguous slice of every sweep while a lazily
    created pool of ``workers - 1`` processes takes the rest, so
    ``workers=1`` degenerates to the serial path with no pool at all.

    Detection tables travel as a pickled
    :class:`~repro.alerters.DetectorState` snapshot, re-pickled only when
    the chain version changes and cached per worker by version token (see
    :mod:`repro.pipeline.workers`).  ``detect_locally=True`` keeps the
    detect sweep in the parent (useful when documents are large enough
    that shipping them costs more than detection saves).

    A broken pool (a worker killed mid-batch) degrades the sweep to the
    serial path — counted under ``executor.fallbacks{executor=process}``
    — and the dead pool is discarded so the next batch starts a fresh
    one.  ``watchdog`` (seconds) bounds how long the parent waits for any
    single worker future: a hung worker — stuck rather than dead, which a
    broken-pool check never notices — times the sweep out, the batch
    degrades to the serial path exactly like pool death (counted under
    both ``executor.fallbacks`` and ``executor.watchdog_timeouts``), and
    the pool with the stuck process is discarded.  ``None`` disables the
    watchdog (the pre-existing wait-forever behaviour).
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        detect_locally: bool = False,
        watchdog: Optional[float] = None,
    ):
        if workers is None:
            workers = max(2, min(8, os.cpu_count() or 2))
        if watchdog is not None and watchdog <= 0:
            raise PipelineError(
                f"watchdog timeout must be positive, got {watchdog}"
            )
        self.workers = max(1, int(workers))
        self.watchdog = watchdog
        self.detect_locally = bool(detect_locally)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._blob_token: Optional[Tuple[int, int]] = None
        self._blob: bytes = b""

    # -- pool plumbing ----------------------------------------------------

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self.workers <= 1:
            return None
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers - 1
                )
            return self._pool

    def _discard_pool(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def _detector_blob(self, system: Any) -> Tuple[Tuple[int, int], bytes]:
        """The pickled detector snapshot, re-pickled once per version."""
        state = system.alerter_chain.detector_state()
        if state.token != self._blob_token:
            self._blob = pickle.dumps(state, pickle.HIGHEST_PROTOCOL)
            self._blob_token = state.token
        return self._blob_token, self._blob

    def _process_sweep(
        self,
        worker_fn: Callable,
        requests: List,
        apply_fn: Callable[[Any], None],
        extra_args: Tuple = (),
    ) -> None:
        """Fan a request list over the pool; parent takes the first slice.

        Raises whatever the pool raises (broken pool, unpicklable
        payload) — callers guard with a serial fallback.
        """
        pool = self._ensure_pool() if len(requests) > 1 else None
        if pool is None:
            for response in worker_fn(*extra_args, requests):
                apply_fn(response)
            return
        slices = _contiguous_slices(requests, self.workers)
        futures = [
            pool.submit(worker_fn, *extra_args, piece)
            for piece in slices[1:]
        ]
        try:
            for response in worker_fn(*extra_args, slices[0]):
                apply_fn(response)
            for future in futures:
                for response in future.result(timeout=self.watchdog):
                    apply_fn(response)
        except BaseException:
            for future in futures:
                future.cancel()
            raise

    # -- the batch --------------------------------------------------------

    def run_batch(
        self,
        system: Any,
        tasks: List[PipelineTask],
        stop_on_error: bool = False,
    ) -> List[PipelineTask]:
        from .workers import DetectRequest, ParseRequest, detect_slice, parse_slice

        timer = _StageTimer(system.metrics, self.name)

        # 1. parse — worker processes.
        parseable = [
            t for t in tasks if t.fetch.is_xml and t.document is None
        ]
        start = timer.start()
        if parseable:
            requests = [
                ParseRequest(t.index, t.fetch.url, t.fetch.content)
                for t in parseable
            ]
            by_index = {t.index: t for t in parseable}

            def apply_parse(response) -> None:
                task = by_index[response.index]
                if response.error is not None:
                    task.error = response.error
                    task.failed_stage = STAGE_PARSE
                else:
                    task.document = response.document
                    task.stage = STAGE_PARSE

            try:
                self._process_sweep(parse_slice, requests, apply_parse)
            except Exception as exc:
                self._degrade(system, exc)
                for task in parseable:
                    parse_stage(task)
        timer.stop(STAGE_PARSE, start)

        # 2. load + classify — input order.
        reached = len(tasks)
        for position, task in enumerate(tasks):
            raise_if_fatal(task)
            start = timer.start()
            run_stage(STAGE_LOAD, load_stage, system, task)
            timer.stop(STAGE_LOAD, start)
            start = timer.start()
            run_stage(STAGE_CLASSIFY, classify_stage, system, task)
            timer.stop(STAGE_CLASSIFY, start)
            if task.error is not None and stop_on_error:
                reached = position + 1
                break
        live = tasks[:reached]

        # 3. detect — worker processes (documents ship as pickled
        # FetchedDocument payloads; detection results come back as code
        # sets + payload copies).
        detectable = [t for t in live if t.error is None]
        start = timer.start()
        if detectable:
            if self.detect_locally or len(detectable) <= 1:
                for task in detectable:
                    detect_stage(system, task)
            else:
                requests = [
                    DetectRequest(t.index, t.fetched) for t in detectable
                ]
                by_index = {t.index: t for t in detectable}

                def apply_detect(response) -> None:
                    task = by_index[response.index]
                    if response.error is not None:
                        task.detection_error = response.error
                    else:
                        task.detection = response.detection

                try:
                    token, blob = self._detector_blob(system)
                    self._process_sweep(
                        detect_slice,
                        requests,
                        apply_detect,
                        extra_args=(token, blob),
                    )
                except Exception as exc:
                    self._degrade(system, exc)
                    for task in detectable:
                        detect_stage(system, task)
        timer.stop(STAGE_DETECT, start)

        # 4. alert + match + route — input order.
        for task in live:
            for stage, step in (
                (STAGE_ALERT, alert_stage),
                (STAGE_MATCH, match_stage),
                (STAGE_ROUTE, route_stage),
            ):
                start = timer.start()
                run_stage(stage, step, system, task)
                timer.stop(stage, start)
                if task.error is not None:
                    break
            if task.error is not None and stop_on_error:
                break
        timer.flush()
        return tasks

    def _degrade(self, system: Any, exc: Exception) -> None:
        """Count one degraded batch; discard the pool if it died or hung."""
        self._count_fallback(system)
        if isinstance(exc, FuturesTimeoutError):
            # A hung worker: the future never completed within the
            # watchdog.  The pool still holds the stuck process, so it is
            # discarded wholesale — the next batch starts a fresh one.
            system.metrics.counter(
                COUNTER_EXECUTOR_WATCHDOG_TIMEOUTS, executor=self.name
            ).inc()
            self._discard_pool()
        elif isinstance(exc, BrokenExecutor):
            self._discard_pool()


class ShardFanoutExecutor(BatchExecutor):
    """Sharded-parallel match: the batch's alerts fan out across the flow
    partitioner's shards concurrently instead of the serial shard loop.

    The front half (load/classify/alert) runs in input order; the match
    sweep groups alerts by owning shard and matches each group on its own
    worker thread (:meth:`FlowPartitionedProcessor.match_alert_batch`);
    sink dispatch then happens in input order, so everything downstream of
    the MQP sees exactly the serial sequence.  On a system without a
    multi-shard flow partitioner the match sweep degrades to the serial
    loop.
    """

    name = "sharded"

    def run_batch(
        self,
        system: Any,
        tasks: List[PipelineTask],
        stop_on_error: bool = False,
    ) -> List[PipelineTask]:
        timer = _StageTimer(system.metrics, self.name)
        reached = len(tasks)
        for position, task in enumerate(tasks):
            raise_if_fatal(task)
            for stage, step in (
                (STAGE_LOAD, load_stage),
                (STAGE_CLASSIFY, classify_stage),
                (STAGE_ALERT, alert_stage),
            ):
                start = timer.start()
                run_stage(stage, step, system, task)
                timer.stop(stage, start)
                if task.error is not None:
                    break
            if task.error is not None and stop_on_error:
                reached = position + 1
                break
        live = tasks[:reached]

        matchable = [
            t for t in live if t.error is None and t.alert is not None
        ]
        processor = system.processor
        start = timer.start()
        if (
            isinstance(processor, FlowPartitionedProcessor)
            and processor.shard_count > 1
            and len(matchable) > 1
        ):
            # A worker exception inside the concurrent shard sweep
            # degrades this batch to the serial match loop (nothing has
            # been dispatched yet — match_alert_batch computes every
            # shard's notifications before any sink fires).
            try:
                batches = processor.match_alert_batch(
                    [task.alert for task in matchable]
                )
            except Exception:
                self._count_fallback(system)
                batches = None
            if batches is None:
                for task in matchable:
                    run_stage(STAGE_MATCH, match_stage, system, task)
            else:
                for task, notifications in zip(matchable, batches):
                    processor.dispatch(notifications)
                    task.notifications = notifications
                    task.stage = STAGE_MATCH
        else:
            for task in matchable:
                run_stage(STAGE_MATCH, match_stage, system, task)
        timer.stop(STAGE_MATCH, start)

        for task in live:
            start = timer.start()
            run_stage(STAGE_ROUTE, route_stage, system, task)
            timer.stop(STAGE_ROUTE, start)
        timer.flush()
        return tasks


#: Legacy registry for bare-name specs.  Superseded by the
#: :mod:`repro.pipeline.executors` registry (which also understands
#: ``name:key=value,...`` option strings); kept so old callers keep
#: working.
EXECUTORS: Dict[str, Callable[[], BatchExecutor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadedExecutor.name: ThreadedExecutor,
    ProcessExecutor.name: ProcessExecutor,
    ShardFanoutExecutor.name: ShardFanoutExecutor,
}

#: One-shot latch for the ``make_executor`` deprecation warning (tests
#: reset it to assert the warning fires exactly once).
_MAKE_EXECUTOR_WARNED = False


def make_executor(
    spec: Union[str, BatchExecutor, None] = None,
) -> BatchExecutor:
    """Deprecated: use :func:`repro.pipeline.executors.create`.

    The replacement accepts everything this accepted (instances pass
    through, bare names are looked up, ``None`` falls back to
    ``$REPRO_EXECUTOR`` and then to serial) plus full
    ``name:key=value,...`` spec strings.  This shim delegates to it and
    emits one :class:`DeprecationWarning` per process.
    """
    global _MAKE_EXECUTOR_WARNED
    if not _MAKE_EXECUTOR_WARNED:
        _MAKE_EXECUTOR_WARNED = True
        warnings.warn(
            "repro.pipeline.executor.make_executor is deprecated; use "
            "repro.pipeline.executors.create (or the repro.api facade)",
            DeprecationWarning,
            stacklevel=2,
        )
    from .executors import create

    return create(spec)
