"""Asyncio fetch front-end: concurrent acquisition feeding the bounded queue.

The paper's crawlers acquire pages concurrently — fetch latency overlaps
across connections — while the monitoring pipeline consumes completed
fetches.  :class:`AsyncFetchFrontend` reproduces that shape on top of the
simulated web: ``concurrency`` coroutines pull due fetches from a
:class:`~repro.webworld.crawler.SimulatedCrawler`, optionally await a
simulated network latency, and push each completed fetch into a
:class:`~repro.pipeline.ingest.BoundedFetchQueue`.  The queue's bound is
the only coupling to the pipeline: when the executor falls behind, puts
block, the coroutines stall, and acquisition throttles itself.

``crawler.due_fetches()`` is a stateful generator (retry/breaker logic
mutates crawler state as it yields), so it is *not* safe to advance from
two places at once.  All coroutines run on one event loop thread and
``next(...)`` is called inline between awaits, which serialises access
without a lock.  Blocking ``queue.put`` calls are pushed to the loop's
default thread-pool executor so a full queue never stalls the loop itself.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Iterator, Optional

from ..observability.names import COUNTER_FRONTEND_FETCHES
from .ingest import BoundedFetchQueue, IngestCancelled
from .stream import Fetch

__all__ = ["AsyncFetchFrontend"]


class AsyncFetchFrontend:
    """Drains a crawler's due fetches concurrently into a bounded queue."""

    def __init__(
        self,
        crawler: Any,
        *,
        concurrency: int = 8,
        latency: Optional[Callable[[Fetch], float]] = None,
        metrics: Optional[Any] = None,
    ):
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.crawler = crawler
        self.concurrency = concurrency
        self.latency = latency
        # Interned on the first fetch so an empty crawl leaves no series.
        self._metrics = metrics

    def pump(self, queue: BoundedFetchQueue) -> int:
        """Drain every due fetch into ``queue``; returns the fetch count.

        Runs its own event loop, so it is called from a plain (feeder)
        thread — typically by
        :meth:`~repro.pipeline.ingest.IngestSession.run_crawl`.
        """
        return asyncio.run(self._pump(queue))

    async def _pump(self, queue: BoundedFetchQueue) -> int:
        fetch_iter: Iterator[Fetch] = iter(self.crawler.due_fetches())
        loop = asyncio.get_running_loop()
        pumped = 0

        async def worker() -> None:
            nonlocal pumped
            while True:
                try:
                    fetch = next(fetch_iter)
                except StopIteration:
                    return
                if self.latency is not None:
                    delay = self.latency(fetch)
                    if delay and delay > 0:
                        await asyncio.sleep(delay)
                await loop.run_in_executor(None, queue.put, fetch)
                pumped += 1
                if self._metrics is not None:
                    self._metrics.counter(COUNTER_FRONTEND_FETCHES).inc()

        tasks = [
            asyncio.ensure_future(worker()) for _ in range(self.concurrency)
        ]
        try:
            await asyncio.gather(*tasks)
        except IngestCancelled:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise
        return pumped
