"""End-to-end subscription system assembly."""

from .executor import (
    BatchExecutor,
    DEFAULT_BATCH_SIZE,
    EXECUTORS,
    SerialExecutor,
    ShardFanoutExecutor,
    ThreadedExecutor,
    make_executor,
)
from .stages import FeedResult, PipelineTask
from .stream import Fetch, chunked, from_pairs, HTML_PAGE, XML_PAGE
from .system import SubscriptionSystem

__all__ = [
    "BatchExecutor",
    "DEFAULT_BATCH_SIZE",
    "EXECUTORS",
    "Fetch",
    "FeedResult",
    "HTML_PAGE",
    "PipelineTask",
    "SerialExecutor",
    "ShardFanoutExecutor",
    "SubscriptionSystem",
    "ThreadedExecutor",
    "XML_PAGE",
    "chunked",
    "from_pairs",
    "make_executor",
]
