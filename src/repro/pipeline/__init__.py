"""End-to-end subscription system assembly."""

from .stream import Fetch, from_pairs, HTML_PAGE, XML_PAGE
from .system import FeedResult, SubscriptionSystem

__all__ = [
    "Fetch",
    "from_pairs",
    "HTML_PAGE",
    "XML_PAGE",
    "FeedResult",
    "SubscriptionSystem",
]
