"""End-to-end subscription system assembly."""

from .executor import (
    BatchExecutor,
    DEFAULT_BATCH_SIZE,
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    ShardFanoutExecutor,
    ThreadedExecutor,
    make_executor,
)
from .executors import ExecutorSpec, available, create, register
from .frontend import AsyncFetchFrontend
from .ingest import BoundedFetchQueue, IngestReport, IngestSession
from .stages import FeedResult, PipelineTask
from .stream import Fetch, chunked, from_pairs, HTML_PAGE, XML_PAGE
from .system import SubscriptionSystem

__all__ = [
    "AsyncFetchFrontend",
    "BatchExecutor",
    "BoundedFetchQueue",
    "DEFAULT_BATCH_SIZE",
    "EXECUTORS",
    "ExecutorSpec",
    "Fetch",
    "FeedResult",
    "HTML_PAGE",
    "IngestReport",
    "IngestSession",
    "PipelineTask",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardFanoutExecutor",
    "SubscriptionSystem",
    "ThreadedExecutor",
    "XML_PAGE",
    "available",
    "chunked",
    "create",
    "from_pairs",
    "make_executor",
    "register",
]
