"""The document flow: what the crawler hands to the monitoring system.

"We can abstractly view this stream as an infinite list of documents
d_1, d_2, ... the list of pages fetched by Xyleme in the order they are
fetched" (Section 2.2).  A stream is any iterable of :class:`Fetch` items;
``repro.webworld.crawler`` produces them from the synthetic web.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

from ..errors import PipelineError

XML_PAGE = "xml"
HTML_PAGE = "html"


@dataclass(frozen=True)
class Fetch:
    """One fetched page: URL, raw content and page kind."""

    url: str
    content: str
    kind: str = XML_PAGE

    @property
    def is_xml(self) -> bool:
        return self.kind == XML_PAGE


def from_pairs(pairs: Iterable, kind: str = XML_PAGE) -> Iterator[Fetch]:
    """Adapt an iterable of (url, content) pairs into a fetch stream."""
    for url, content in pairs:
        yield Fetch(url=url, content=content, kind=kind)


def chunked(stream: Iterable[Fetch], size: int) -> Iterator[List[Fetch]]:
    """Cut an infinite-or-finite fetch stream into batches of ``size``.

    The stream is consumed lazily — one batch is materialised at a time,
    so feeding a crawler's endless stream stays O(size) in memory.
    """
    if size < 1:
        raise PipelineError(f"batch size must be >= 1, got {size}")
    batch: List[Fetch] = []
    for fetch in stream:
        batch.append(fetch)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch
