"""The executor registry: one spec grammar for CLI, env and constructor.

Three PRs of growth left executor configuration scattered across
overlapping knobs — an ``executor=`` constructor kwarg, ``--executor`` /
``--batch-size`` CLI flags and the ``$REPRO_EXECUTOR`` variable, with the
process pool about to add workers and queue bounds on top.  This module
collapses all of it into one :class:`ExecutorSpec` with a single string
grammar accepted everywhere::

    serial
    threaded:workers=4
    process:workers=4,batch=64,queue=128
    process:workers=4,detect=local

Grammar: ``name[:key=value,...]`` where the keys are

* ``workers`` — parallel lanes for the threaded/process executors;
* ``batch`` (alias ``batch_size``) — documents per stream batch;
* ``queue`` (alias ``queue_depth``) — bound of the ingest queue between
  the fetch front-end and the executor (backpressure);
* ``detect`` — ``local`` or ``workers``; process executor only;
* ``watchdog`` — seconds before a hung worker future times the sweep
  out (degrading the batch to the serial path); process executor only.

Precedence, everywhere a spec can meet another source of the same
setting (most specific wins):

1. an explicit individual override — a CLI flag (``--workers``,
   ``--batch-size``, ``--queue-depth``) or constructor kwarg
   (``batch_size=``, ``queue_bound=``);
2. the field parsed from the spec string;
3. the ``$REPRO_EXECUTOR`` spec (consulted only when no spec was given);
4. the built-in default (serial, batch 32, queue 2×batch).

:func:`create` turns a spec (string, :class:`ExecutorSpec`, instance or
``None``) into a ready :class:`~repro.pipeline.executor.BatchExecutor`;
:func:`register` adds project-local executors to the same namespace.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace
from typing import Callable, Dict, Optional, Tuple, Union

from ..errors import PipelineError
from .executor import (
    BatchExecutor,
    EXECUTOR_ENV,
    ProcessExecutor,
    SerialExecutor,
    ShardFanoutExecutor,
    ThreadedExecutor,
)

__all__ = [
    "ExecutorSpec",
    "available",
    "create",
    "register",
    "resolve",
]

#: Spec keys that take positive integers, with their accepted aliases.
_INT_KEYS = {
    "workers": "workers",
    "batch": "batch",
    "batch_size": "batch",
    "queue": "queue",
    "queue_depth": "queue",
    "watchdog": "watchdog",
}

_DETECT_VALUES = ("local", "workers")


@dataclass(frozen=True)
class ExecutorSpec:
    """One parsed executor configuration (see the module docstring)."""

    name: str = SerialExecutor.name
    workers: Optional[int] = None
    batch: Optional[int] = None
    queue: Optional[int] = None
    detect: Optional[str] = None
    watchdog: Optional[int] = None

    @classmethod
    def parse(cls, text: str) -> "ExecutorSpec":
        """Parse ``name[:key=value,...]`` into a spec."""
        text = text.strip()
        name, _, options = text.partition(":")
        name = name.strip().lower()
        if not name:
            raise PipelineError(f"empty executor name in spec {text!r}")
        values: Dict[str, Union[int, str]] = {}
        if options.strip():
            for item in options.split(","):
                key, sep, value = item.partition("=")
                key = key.strip().lower()
                value = value.strip()
                if not sep or not value:
                    raise PipelineError(
                        f"malformed option {item.strip()!r} in executor spec"
                        f" {text!r} (expected key=value)"
                    )
                if key in _INT_KEYS:
                    canonical = _INT_KEYS[key]
                    try:
                        number = int(value)
                    except ValueError:
                        raise PipelineError(
                            f"executor spec option {key!r} needs an integer,"
                            f" got {value!r}"
                        ) from None
                    if number < 1:
                        raise PipelineError(
                            f"executor spec option {key!r} must be >= 1,"
                            f" got {number}"
                        )
                    values[canonical] = number
                elif key == "detect":
                    if value.lower() not in _DETECT_VALUES:
                        raise PipelineError(
                            f"executor spec option detect= must be one of"
                            f" {', '.join(_DETECT_VALUES)}, got {value!r}"
                        )
                    values["detect"] = value.lower()
                else:
                    known = sorted({*(_INT_KEYS), "detect"})
                    raise PipelineError(
                        f"unknown executor spec option {key!r}"
                        f" (choose from {', '.join(known)})"
                    )
        return cls(name=name, **values)

    def merged(self, **overrides) -> "ExecutorSpec":
        """A copy with every non-``None`` override applied (overrides win
        over spec fields — precedence rule 1)."""
        changes = {
            key: value for key, value in overrides.items() if value is not None
        }
        return replace(self, **changes) if changes else self

    def render(self) -> str:
        """The canonical spec string (parse/render round-trips)."""
        options = []
        for spec_field in fields(self):
            if spec_field.name == "name":
                continue
            value = getattr(self, spec_field.name)
            if value is not None:
                options.append(f"{spec_field.name}={value}")
        if not options:
            return self.name
        return f"{self.name}:{','.join(options)}"


def _reject_workers(spec: ExecutorSpec) -> None:
    if spec.workers is not None:
        raise PipelineError(
            f"executor {spec.name!r} takes no workers= option"
        )


def _reject_detect(spec: ExecutorSpec) -> None:
    if spec.detect is not None:
        raise PipelineError(
            f"executor {spec.name!r} takes no detect= option"
        )


def _reject_watchdog(spec: ExecutorSpec) -> None:
    if spec.watchdog is not None:
        raise PipelineError(
            f"executor {spec.name!r} takes no watchdog= option"
        )


def _build_serial(spec: ExecutorSpec) -> BatchExecutor:
    _reject_workers(spec)
    _reject_detect(spec)
    _reject_watchdog(spec)
    return SerialExecutor()


def _build_threaded(spec: ExecutorSpec) -> BatchExecutor:
    _reject_detect(spec)
    _reject_watchdog(spec)
    return ThreadedExecutor(max_workers=spec.workers)


def _build_process(spec: ExecutorSpec) -> BatchExecutor:
    return ProcessExecutor(
        workers=spec.workers,
        detect_locally=spec.detect == "local",
        watchdog=spec.watchdog,
    )


def _build_sharded(spec: ExecutorSpec) -> BatchExecutor:
    _reject_workers(spec)
    _reject_detect(spec)
    _reject_watchdog(spec)
    return ShardFanoutExecutor()


_FACTORIES: Dict[str, Callable[[ExecutorSpec], BatchExecutor]] = {
    SerialExecutor.name: _build_serial,
    ThreadedExecutor.name: _build_threaded,
    ProcessExecutor.name: _build_process,
    ShardFanoutExecutor.name: _build_sharded,
}


def register(
    name: str, factory: Callable[[ExecutorSpec], BatchExecutor]
) -> None:
    """Add (or replace) an executor factory under ``name``.

    ``factory`` receives the fully merged :class:`ExecutorSpec` and
    returns a ready executor; the name becomes valid in every spec
    string (CLI, env, constructor).
    """
    _FACTORIES[name.strip().lower()] = factory


def available() -> Tuple[str, ...]:
    """The registered executor names, sorted."""
    return tuple(sorted(_FACTORIES))


def resolve(
    spec: Union[str, ExecutorSpec, None] = None,
) -> ExecutorSpec:
    """Normalise any spec input into an :class:`ExecutorSpec`.

    ``None`` falls back to ``$REPRO_EXECUTOR`` (itself a full spec
    string) and then to the serial default — precedence rules 3 and 4.
    """
    if isinstance(spec, ExecutorSpec):
        return spec
    if spec is None:
        spec = os.environ.get(EXECUTOR_ENV) or SerialExecutor.name
    return ExecutorSpec.parse(str(spec))


def create(
    spec: Union[str, ExecutorSpec, BatchExecutor, None] = None,
    **overrides,
) -> BatchExecutor:
    """Build a :class:`BatchExecutor` from any accepted spec form.

    An instance passes through untouched; anything else goes through
    :func:`resolve` + :meth:`ExecutorSpec.merged` (keyword overrides win
    over spec fields) and the registered factory for the name.
    """
    if isinstance(spec, BatchExecutor):
        return spec
    resolved = resolve(spec).merged(**overrides)
    factory = _FACTORIES.get(resolved.name)
    if factory is None:
        known = ", ".join(available())
        raise PipelineError(
            f"unknown executor {resolved.name!r} (choose from {known})"
        )
    return factory(resolved)
