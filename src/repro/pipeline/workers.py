"""Worker-process side of the :class:`~repro.pipeline.executor.ProcessExecutor`.

The pure pipeline stages — XML parsing and alerter detection — touch no
shared state, so they can leave the GIL entirely and run in worker
*processes*.  Everything that crosses the process boundary is a small,
explicitly picklable payload type defined here:

* :class:`ParseRequest` / :class:`ParseResponse` — raw page text in,
  parsed :class:`~repro.xmlstore.nodes.Document` (or the parse error) out;
* :class:`DetectRequest` / :class:`DetectResponse` — a
  :class:`~repro.alerters.FetchedDocument` in, the merged alerter
  :data:`~repro.pipeline.stages.Detection` (or the error) out.

Detection needs the alerter chain's pattern tables.  Shipping them with
every request would swamp the win, so the parent pickles one
:class:`~repro.alerters.DetectorState` snapshot per chain *version* and
workers cache the unpickled snapshot by its ``(chain serial, version)``
token (:data:`DETECTOR_CACHE_SIZE` most recent): steady-state batches
re-send only the blob bytes, and a subscription change bumps the version
so stale tables are never reused.

Errors travel back as exception objects when they survive pickling; an
unpicklable exception is replaced by a same-category stand-in (a
:class:`~repro.errors.PipelineError` for ``ReproError``\\ s, a
``RuntimeError`` otherwise) so the parent's error-slot / fatal-error
semantics are preserved either way.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..alerters.chain import DetectorState
from ..alerters.context import FetchedDocument
from ..errors import PipelineError, ReproError
from ..xmlstore.nodes import Document
from ..xmlstore.parser import parse
from .stages import Detection

#: Unpickled detector snapshots kept per worker process (newest last).
DETECTOR_CACHE_SIZE = 4


@dataclass(frozen=True)
class ParseRequest:
    """One XML page to parse, tagged with its position in the batch."""

    index: int
    url: str
    content: str


@dataclass
class ParseResponse:
    """What parsing one page produced: a document or a parked error."""

    index: int
    document: Optional[Document] = None
    error: Optional[BaseException] = None


@dataclass(frozen=True)
class DetectRequest:
    """One classified document to run the alerter tables over."""

    index: int
    fetched: FetchedDocument


@dataclass
class DetectResponse:
    """The merged detection for one document, or a parked error."""

    index: int
    detection: Optional[Detection] = None
    error: Optional[BaseException] = None


def portable_error(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round-trip, else a
    same-category stand-in.

    The category matters: a :class:`ReproError` is a rejected document
    (parked on the error slot) while anything else is a programming error
    (re-raised in the parent), so the stand-in must stay on the same side
    of that line.
    """
    try:
        pickle.loads(pickle.dumps(exc))
    except Exception:
        message = f"{type(exc).__name__}: {exc}"
        if isinstance(exc, ReproError):
            return PipelineError(f"worker error (unpicklable): {message}")
        return RuntimeError(f"worker error (unpicklable): {message}")
    return exc


def parse_slice(requests: Sequence[ParseRequest]) -> List[ParseResponse]:
    """Parse a contiguous slice of a batch (runs in a worker process)."""
    responses: List[ParseResponse] = []
    for request in requests:
        try:
            document = parse(request.content)
        except Exception as exc:  # noqa: BLE001 — re-raised in order by load
            responses.append(
                ParseResponse(request.index, error=portable_error(exc))
            )
        else:
            responses.append(ParseResponse(request.index, document=document))
    return responses


#: token -> DetectorState, per worker process (module global: survives
#: across submissions for the life of the worker).
_detector_cache: "OrderedDict[Tuple[int, int], DetectorState]" = OrderedDict()


def _load_detector(token: Tuple[int, int], blob: bytes) -> DetectorState:
    detector = _detector_cache.get(token)
    if detector is None:
        detector = pickle.loads(blob)
        _detector_cache[token] = detector
        while len(_detector_cache) > DETECTOR_CACHE_SIZE:
            _detector_cache.popitem(last=False)
    else:
        _detector_cache.move_to_end(token)
    return detector


def detector_cache_info() -> Dict[str, int]:
    """Size of this process's detector cache (used by tests)."""
    return {"entries": len(_detector_cache)}


def detect_slice(
    token: Tuple[int, int],
    blob: bytes,
    requests: Sequence[DetectRequest],
) -> List[DetectResponse]:
    """Run the alerter tables over a slice of a batch (worker process).

    ``blob`` is the pickled :class:`DetectorState` for ``token``; it is
    unpickled at most once per version per worker.
    """
    detector = _load_detector(token, blob)
    responses: List[DetectResponse] = []
    for request in requests:
        try:
            detection = detector.detect_events(request.fetched)
        except Exception as exc:  # noqa: BLE001 — re-raised in order by alert
            responses.append(
                DetectResponse(request.index, error=portable_error(exc))
            )
        else:
            responses.append(
                DetectResponse(request.index, detection=detection)
            )
    return responses
