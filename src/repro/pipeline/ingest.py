"""Bounded-backpressure ingestion: the queue and the session facade.

The paper's Xyleme separates *acquisition* (crawlers fetching millions of
pages per day) from *monitoring* (the Figure 3 pipeline); between the two
sits a buffer that must not grow without limit when the pipeline is the
slow side.  This module is that seam for the reproduction:

* :class:`BoundedFetchQueue` — a thread-safe queue of
  :class:`~repro.pipeline.stream.Fetch` items with a hard bound.
  Producers block when the queue is full (each blocking put is counted
  under ``ingest.backpressure_waits``), so a slow executor throttles the
  fetch rate instead of buffering the crawl; the
  ``executor.queue_depth`` gauge tracks the depth and can therefore
  actually saturate at the bound.
* :class:`IngestSession` — the unified front door for feeding documents.
  ``feed`` / ``feed_batch`` / ``run`` / ``run_crawl`` replace the
  overlapping constructor kwargs, env vars and CLI flags that accreted
  across PRs 1–3 with one object configured by a single
  :class:`~repro.pipeline.executors.ExecutorSpec`.

``SubscriptionSystem.run_stream`` now routes through an
:class:`IngestSession` (a feeder thread fills the bounded queue while the
executor drains it), so every stream — plain iterables and the asyncio
fetch front-end alike — gets the same backpressure and the same
per-document rejection semantics as before.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional

from ..errors import PipelineError, RecoveryError
from ..faults.killpoints import KILL_POINT_POST_FETCH, maybe_kill
from ..observability.names import (
    COUNTER_INGEST_BACKPRESSURE_WAITS,
    GAUGE_EXECUTOR_QUEUE_DEPTH,
)
from .stages import FeedResult
from .stream import Fetch

__all__ = ["BoundedFetchQueue", "IngestCancelled", "IngestReport", "IngestSession"]


class IngestCancelled(Exception):
    """Raised inside a producer blocked on a cancelled queue (internal:
    the feeder catches it and stops consuming the stream)."""


@dataclass
class IngestReport:
    """What one streaming run did, beyond its per-document results."""

    documents: int
    batches: int
    peak_queue_depth: int
    backpressure_waits: int


class BoundedFetchQueue:
    """A bounded, thread-safe fetch buffer with backpressure.

    One producer side (``put`` / ``close`` / ``fail``), one consumer side
    (``next_batch``).  ``put`` blocks while the queue holds ``bound``
    items; ``next_batch`` blocks until a full batch is available or the
    stream ends, and re-raises a producer failure after the full batches
    before it have been served (matching the old ``chunked`` semantics,
    where a stream error lost only the partially accumulated batch).
    """

    def __init__(self, bound: int, metrics: Optional[Any] = None):
        if bound < 1:
            raise PipelineError(f"queue bound must be >= 1, got {bound}")
        self.bound = int(bound)
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._cancelled = False
        self._failure: Optional[BaseException] = None
        self.peak_depth = 0
        self.backpressure_waits = 0
        self._gauge = (
            metrics.gauge(GAUGE_EXECUTOR_QUEUE_DEPTH)
            if metrics is not None
            else None
        )
        # Interned on first actual wait so streams that never block keep
        # their metric snapshot identical to the plain feed_batch path.
        self._metrics = metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def _set_gauge(self) -> None:
        if self._gauge is not None:
            self._gauge.set(len(self._items))

    # -- producer side ----------------------------------------------------

    def put(self, fetch: Fetch) -> None:
        """Enqueue one fetch, blocking while the queue is full."""
        with self._not_full:
            if len(self._items) >= self.bound and not self._cancelled:
                self.backpressure_waits += 1
                if self._metrics is not None:
                    self._metrics.counter(
                        COUNTER_INGEST_BACKPRESSURE_WAITS
                    ).inc()
                while len(self._items) >= self.bound and not self._cancelled:
                    self._not_full.wait()
            if self._cancelled:
                raise IngestCancelled()
            if self._closed:
                raise PipelineError("put() on a closed ingest queue")
            self._items.append(fetch)
            depth = len(self._items)
            if depth > self.peak_depth:
                self.peak_depth = depth
            self._set_gauge()
            self._not_empty.notify()

    def close(self) -> None:
        """Mark the stream exhausted; pending items remain consumable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def fail(self, error: BaseException) -> None:
        """Mark the stream failed; ``next_batch`` re-raises ``error``
        once the full batches already buffered have been served."""
        with self._lock:
            self._failure = error
            self._closed = True
            self._not_empty.notify_all()

    # -- consumer side ----------------------------------------------------

    def cancel(self) -> None:
        """Abort from the consumer side: wake and fail blocked ``put``\\ s
        so the producer stops consuming its stream."""
        with self._lock:
            self._cancelled = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def next_batch(self, size: int) -> Optional[List[Fetch]]:
        """Dequeue the next batch of up to ``size`` fetches.

        Blocks until a full batch is buffered or the producer closed the
        stream; the final batch may be short.  Returns ``None`` when the
        stream is exhausted; raises the producer's error once every full
        batch buffered before the failure has been served.
        """
        if size < 1:
            raise PipelineError(f"batch size must be >= 1, got {size}")
        with self._not_empty:
            while len(self._items) < size and not self._closed:
                self._not_empty.wait()
            if len(self._items) >= size:
                batch = [self._items.popleft() for _ in range(size)]
            elif self._failure is None and self._items:
                batch = list(self._items)
                self._items.clear()
            else:
                batch = None
            self._set_gauge()
            self._not_full.notify_all()
            if batch is not None:
                return batch
            if self._failure is not None:
                # The partially accumulated tail is lost, exactly as it
                # was with eager chunking.
                self._items.clear()
                raise self._failure
            return None


class IngestSession:
    """One configured way of feeding documents into a system.

    Unifies the feeding surface that previously spread across
    ``feed``/``feed_batch``/``run_stream`` keyword arguments::

        from repro.api import IngestSession, SubscriptionSystem

        system = SubscriptionSystem(executor="process:workers=4")
        with IngestSession(system, batch_size=64, queue_bound=128) as s:
            s.run(stream)                  # any iterable of Fetch items
            s.run_crawl(crawler)           # asyncio fetch front-end
            print(s.last_report)

    ``batch_size`` / ``queue_bound`` / ``skip_malformed`` default to the
    system's configuration (itself derived from its
    :class:`~repro.pipeline.executors.ExecutorSpec`).  Closing the
    session releases the executor's worker pool only when
    ``own_executor=True`` (the session was handed a system built just
    for it).
    """

    def __init__(
        self,
        system: Any,
        *,
        batch_size: Optional[int] = None,
        queue_bound: Optional[int] = None,
        skip_malformed: bool = True,
        own_executor: bool = False,
    ):
        self.system = system
        self.batch_size = (
            int(batch_size) if batch_size is not None else system.batch_size
        )
        if self.batch_size < 1:
            raise PipelineError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        default_bound = getattr(system, "queue_bound", None)
        if queue_bound is not None:
            self.queue_bound = int(queue_bound)
        elif default_bound is not None:
            self.queue_bound = max(int(default_bound), self.batch_size)
        else:
            self.queue_bound = 2 * self.batch_size
        if self.queue_bound < self.batch_size:
            raise PipelineError(
                f"queue_bound ({self.queue_bound}) must be >= batch_size"
                f" ({self.batch_size}) or full batches could never form"
            )
        self.skip_malformed = skip_malformed
        self.own_executor = own_executor
        self.last_report: Optional[IngestReport] = None

    # -- single documents and prebuilt batches ----------------------------

    def feed(self, fetch: Fetch) -> FeedResult:
        """One document, no executor, failures propagate (as ``feed``
        always did)."""
        return self.system.feed(fetch)

    def feed_batch(self, fetches: Iterable[Fetch]) -> List[FeedResult]:
        """One prebuilt batch through the configured executor."""
        return self.system.feed_batch(
            fetches, skip_malformed=self.skip_malformed
        )

    # -- streams ----------------------------------------------------------

    def run(self, stream: Iterable[Fetch]) -> List[FeedResult]:
        """Feed a whole stream through the bounded queue.

        A feeder thread fills the queue (blocking at ``queue_bound``)
        while this thread drains batches of ``batch_size`` into
        ``feed_batch`` — so ``executor.queue_depth`` reflects real
        buffering and saturates at the bound instead of batches being
        chunked back-to-back.
        """

        def produce(queue: BoundedFetchQueue) -> None:
            for fetch in stream:
                queue.put(fetch)

        return self._run_with_producer(produce)

    def run_crawl(
        self,
        crawler: Any,
        *,
        concurrency: int = 8,
        latency: Optional[Callable[[Fetch], float]] = None,
    ) -> List[FeedResult]:
        """Drain a crawler's due fetches through the asyncio front-end.

        ``concurrency`` parallel fetch coroutines pull from
        ``crawler.due_fetches()`` and fill the bounded queue as their
        (simulated) responses arrive; see
        :class:`~repro.pipeline.frontend.AsyncFetchFrontend`.
        """
        from .frontend import AsyncFetchFrontend

        frontend = AsyncFetchFrontend(
            crawler,
            concurrency=concurrency,
            latency=latency,
            metrics=self.system.metrics,
        )
        return self._run_with_producer(frontend.pump)

    def resume(self, stream: Iterable[Fetch]) -> List[FeedResult]:
        """Continue a recovered system's ingestion from its checkpoint.

        Identical to :meth:`run`, but guarded: the system must carry a
        :class:`~repro.recovery.RecoveryManager` (attach one with
        ``SubscriptionSystem.recover_runtime``), so the regenerated
        post-checkpoint deliveries dedup against the journal instead of
        being journaled — and therefore delivered — twice.
        """
        if getattr(self.system, "recovery", None) is None:
            raise RecoveryError(
                "resume() needs a recovered system: call"
                " SubscriptionSystem.recover_runtime() first (or use"
                " run() for a fresh stream)"
            )
        return self.run(stream)

    def _run_with_producer(
        self, produce: Callable[[BoundedFetchQueue], Any]
    ) -> List[FeedResult]:
        queue = BoundedFetchQueue(self.queue_bound, metrics=self.system.metrics)

        def feeder() -> None:
            try:
                produce(queue)
            except IngestCancelled:
                return
            except BaseException as exc:  # noqa: BLE001 — re-raised by consumer
                queue.fail(exc)
                return
            queue.close()

        thread = threading.Thread(
            target=feeder, name="repro-ingest-feeder", daemon=True
        )
        recovery = getattr(self.system, "recovery", None)
        if recovery is not None:
            # Checkpoints are deferred while the stream is live: the
            # feeder thread mutates crawler/frontend state concurrently,
            # so mid-stream runtime snapshots would not be sound.
            recovery.stream_started()
        thread.start()
        results: List[FeedResult] = []
        batches = 0
        try:
            while True:
                batch = queue.next_batch(self.batch_size)
                if batch is None:
                    break
                maybe_kill(KILL_POINT_POST_FETCH)
                results.extend(
                    self.system.feed_batch(
                        batch, skip_malformed=self.skip_malformed
                    )
                )
                batches += 1
        except BaseException:
            queue.cancel()
            thread.join()
            if recovery is not None:
                recovery.stream_aborted()
            raise
        thread.join()
        if recovery is not None:
            recovery.stream_finished()
        self.last_report = IngestReport(
            documents=len(results),
            batches=batches,
            peak_queue_depth=queue.peak_depth,
            backpressure_waits=queue.backpressure_waits,
        )
        return results

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        if self.own_executor:
            self.system.executor.close()

    def __enter__(self) -> "IngestSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
