"""The staged ingestion pipeline: one document's task lifecycle.

Xyleme sustains "millions of documents per day" by decomposing ingestion
into independent stages (Figure 3: Alerters feed the Monitoring Query
Processor, which feeds the Subscription Manager and the Reporter).  This
module makes that decomposition explicit in the reproduction: each fetched
page travels through the pipeline as one :class:`PipelineTask`, and each
stage is a ``(system, task) -> None`` step that reads what earlier stages
produced and fills in its own slot::

    parse     pure: XML text -> Document        (hoistable to worker threads)
    load      repository store + version diff   (stateful, input order)
    classify  element-level change classification -> FetchedDocument
    detect    pure: run every alerter            (hoistable to worker threads)
    alert     document accounting + weak/strong gating -> Alert
    match     MQP complex-event matching -> notifications
    route     notification accounting -> FeedResult

The *error slot*: a stage that raises a :class:`~repro.errors.ReproError`
parks the exception on ``task.error`` instead of aborting the batch, so one
malformed page cannot take down its neighbours (per-document error
isolation, exactly as ``run_stream`` always promised).  Any other exception
type is a programming error and propagates.

Executors (:mod:`repro.pipeline.executor`) decide *how* tasks move through
the stages — strictly one at a time, with the pure stages fanned out over a
thread pool, or with the match stage sharded — but every executor runs the
stateful stages in input order, which is what makes them observably
equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..alerters.context import FetchedDocument
from ..core.processor import Alert, Notification
from ..diff.changes import classify_changes
from ..errors import ReproError
from ..faults.killpoints import KILL_POINT_POST_MATCH, maybe_kill
from ..repository.store import FetchOutcome
from ..xmlstore.nodes import Document
from ..xmlstore.parser import parse
from .stream import Fetch

#: Stage names, in lifecycle order.  ``parse`` and ``detect`` are the pure
#: halves of ``load`` and ``alert`` that executors may run on worker
#: threads; the serial executor folds them into their stateful partners.
STAGE_PARSE = "parse"
STAGE_LOAD = "load"
STAGE_CLASSIFY = "classify"
STAGE_DETECT = "detect"
STAGE_ALERT = "alert"
STAGE_MATCH = "match"
STAGE_ROUTE = "route"

#: Sentinel for a task no stage has completed yet.
STAGE_PENDING = "pending"

#: What the alerter chain's pure half returns (codes, payload).
Detection = Tuple[Set[int], Dict[int, Any]]


@dataclass
class FeedResult:
    """What one fetched page produced inside the system."""

    outcome: FetchOutcome
    alert: Optional[Alert]
    notifications: List[Notification]


@dataclass
class PipelineTask:
    """One document's journey through the staged pipeline.

    Every stage reads the slots earlier stages filled and writes its own;
    ``stage`` records the last stage that completed and ``error`` is the
    per-task error slot (a parked :class:`ReproError` means the document
    was rejected; later stages skip the task).
    """

    fetch: Fetch
    index: int = 0
    #: Filled by the parse stage (XML only); the load stage reuses it so a
    #: threaded pre-parse is never repeated.
    document: Optional[Document] = None
    #: Filled by the load stage.
    outcome: Optional[FetchOutcome] = None
    #: Filled by the classify stage.
    fetched: Optional[FetchedDocument] = None
    #: Filled by the detect stage when an executor pre-computes detection on
    #: a worker thread; the alert stage then only gates and assembles.
    detection: Optional[Detection] = None
    #: A non-ReproError raised by a concurrent detect sweep, re-raised at
    #: the task's ordered position so propagation matches the serial path.
    detection_error: Optional[BaseException] = None
    #: Filled by the alert stage (None: only weak events / nothing fired).
    alert: Optional[Alert] = None
    #: Filled by the match stage.
    notifications: List[Notification] = field(default_factory=list)
    #: The error slot (see module docstring).
    error: Optional[BaseException] = None
    failed_stage: Optional[str] = None
    stage: str = STAGE_PENDING

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def done(self) -> bool:
        return self.error is None and self.stage == STAGE_ROUTE

    def result(self) -> FeedResult:
        assert self.outcome is not None
        return FeedResult(
            outcome=self.outcome,
            alert=self.alert,
            notifications=self.notifications,
        )


# -- stage steps -----------------------------------------------------------------
#
# Each step takes the assembled SubscriptionSystem (duck-typed to avoid an
# import cycle) and one task.  Steps assume their predecessors ran; the
# executors guarantee the ordering.


def parse_stage(task: PipelineTask) -> PipelineTask:
    """Pure XML parsing, safe on worker threads (no shared state).

    Failures — of any exception type — are parked on the error slot; the
    load stage re-raises non-ReproErrors at the task's ordered position so
    propagation order matches the serial path exactly.
    """
    fetch = task.fetch
    if fetch.is_xml and task.document is None:
        try:
            task.document = parse(fetch.content)
        except Exception as exc:  # noqa: BLE001 — re-raised in order by load
            task.error = exc
            task.failed_stage = STAGE_PARSE
    if task.error is None:
        task.stage = STAGE_PARSE
    return task


def load_stage(system: Any, task: PipelineTask) -> None:
    """Store the page in the repository (stateful; input order matters)."""
    fetch = task.fetch
    if fetch.is_xml:
        content = task.document if task.document is not None else fetch.content
        task.outcome = system.repository.store_xml(fetch.url, content)
    else:
        task.outcome = system.repository.store_html(fetch.url, fetch.content)


def classify_stage(system: Any, task: PipelineTask) -> None:
    """Element-level change classification + the alerters' input record."""
    outcome = task.outcome
    assert outcome is not None
    fetch = task.fetch
    if fetch.is_xml:
        changes = None
        if outcome.delta is not None and outcome.old_document is not None:
            assert outcome.document is not None
            changes = classify_changes(
                outcome.old_document, outcome.document, outcome.delta
            )
        task.fetched = FetchedDocument(
            url=fetch.url,
            meta=outcome.meta,
            status=outcome.status,
            document=outcome.document,
            changes=changes,
        )
    else:
        task.fetched = FetchedDocument(
            url=fetch.url,
            meta=outcome.meta,
            status=outcome.status,
            raw_content=fetch.content,
        )


def detect_stage(system: Any, task: PipelineTask) -> PipelineTask:
    """Run every alerter over the document — the pure, read-only half of
    alert building, safe to run concurrently across documents."""
    assert task.fetched is not None
    try:
        task.detection = system.alerter_chain.detect_events(task.fetched)
    except Exception as exc:  # noqa: BLE001 — re-raised in order by alert
        task.detection_error = exc
    return task


def alert_stage(system: Any, task: PipelineTask) -> None:
    """Document accounting + weak/strong gating (Section 5.1)."""
    assert task.fetched is not None
    system.documents_fed += 1
    system._fed_counter.inc()
    if task.detection_error is not None:
        raise task.detection_error
    if task.detection is not None:
        task.alert = system.alerter_chain.finish_alert(
            task.fetched, task.detection
        )
    else:
        task.alert = system.alerter_chain.build_alert(task.fetched)


def match_stage(system: Any, task: PipelineTask) -> None:
    """MQP complex-event detection (dispatches notification sinks)."""
    if task.alert is not None:
        task.notifications = system.processor.process_alert(task.alert)
        maybe_kill(KILL_POINT_POST_MATCH)


def route_stage(system: Any, task: PipelineTask) -> None:
    """Notification accounting; the task is now a complete FeedResult."""
    if task.notifications:
        system._emitted_counter.inc(len(task.notifications))


#: The stateful lifecycle every executor runs in input order.  The pure
#: ``parse`` / ``detect`` stages are not listed: they are optional hoists
#: whose work the ``load`` / ``alert`` stages subsume when absent.
LIFECYCLE: Tuple[Tuple[str, Any], ...] = (
    (STAGE_LOAD, load_stage),
    (STAGE_CLASSIFY, classify_stage),
    (STAGE_ALERT, alert_stage),
    (STAGE_MATCH, match_stage),
    (STAGE_ROUTE, route_stage),
)


def run_stage(stage: str, step: Any, system: Any, task: PipelineTask) -> None:
    """Run one stage with the error-slot contract.

    A task whose slot is already occupied is skipped; a ReproError raised
    by the step is parked in the slot; anything else propagates (it is a
    bug, not a bad document).
    """
    if task.error is not None:
        return
    try:
        step(system, task)
    except ReproError as exc:
        task.error = exc
        task.failed_stage = stage
    else:
        task.stage = stage


def raise_if_fatal(task: PipelineTask) -> None:
    """Re-raise a parked non-ReproError at the task's ordered position."""
    if task.error is not None and not isinstance(task.error, ReproError):
        raise task.error
