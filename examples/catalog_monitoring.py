"""Catalog monitoring: element-level change alerts on product catalogs.

The scenario the paper's introduction motivates — "insertion of a new
electronic product in a catalog" — with the Section 5.1 example
conditions::

    new Product  and  URL extends "http://www.amazon.example/catalog/"
    updated Product contains "camera"  and  DTD = ".../catalog.dtd"

A synthetic catalog evolves over ten simulated days through the change
model; the subscription's report collects the matching product elements
(capped by ``atmost``), and the report query projects product names.

Run:  python examples/catalog_monitoring.py
"""

from repro import SubscriptionSystem
from repro.clock import SECONDS_PER_DAY, SimulatedClock
from repro.webworld import CATALOG_DTD, ChangeModel, SiteGenerator, to_xml

CATALOG_URL = "http://www.amazon.example/catalog/electronics.xml"

SUBSCRIPTION = f"""
subscription ElectronicsWatch

monitoring NewProduct
select X
from self//Product X
where URL extends "http://www.amazon.example/catalog/"
  and new X

monitoring CameraUpdate
select X
from self//Product X
where DTD = "{CATALOG_DTD}"
  and updated Product contains "camera"

report
when count >= 4
atmost 50
archive monthly
"""


def main() -> None:
    clock = SimulatedClock(start=990_000_000.0)
    system = SubscriptionSystem(clock=clock)
    subscription_id = system.subscribe(
        SUBSCRIPTION, owner_email="shopper@example.org"
    )

    generator = SiteGenerator(seed=11)
    catalog = generator.catalog(products=12)
    change_model = ChangeModel(seed=13)

    print("day  0: first crawl of the catalog")
    result = system.feed_xml(CATALOG_URL, to_xml(catalog))
    print(
        f"        status={result.outcome.status},"
        f" notifications={len(result.notifications)}"
    )

    document = catalog
    for day in range(1, 11):
        clock.advance(SECONDS_PER_DAY)
        document = change_model.mutate(document)
        result = system.feed_xml(CATALOG_URL, to_xml(document))
        fired = [n.complex_code for n in result.notifications]
        print(
            f"day {day:>2}: status={result.outcome.status},"
            f" complex events fired={fired}"
        )
        system.reporter.tick()

    print(f"\nreports generated: {system.reporter.stats.reports_generated}")
    print(
        "notifications suppressed by atmost:"
        f" {system.reporter.stats.notifications_suppressed}"
    )
    latest = system.publisher.fetch(subscription_id)
    if latest is not None:
        print("\n--- latest report (first 800 chars) ---")
        print(latest[:800])
    archived = system.reporter.archive.reports_for(subscription_id)
    print(f"\narchived reports (retention monthly): {len(archived)}")


if __name__ == "__main__":
    main()
