"""Quickstart: subscribe, feed two versions of a page, read the report.

Reproduces the paper's first example (Section 2.2): monitor updated pages
under a URL prefix and new ``<Member>`` elements of a team page, then get
an XML report by (simulated) email.

Run:  python examples/quickstart.py
"""

from repro import SubscriptionSystem
from repro.clock import SimulatedClock

MEMBERS_V1 = """\
<members>
  <Member><name>jouglet</name><fn>jeremie</fn></Member>
</members>"""

MEMBERS_V2 = """\
<members>
  <Member><name>jouglet</name><fn>jeremie</fn></Member>
  <Member><name>nguyen</name><fn>benjamin</fn></Member>
  <Member><name>preda</name><fn>mihai</fn></Member>
</members>"""

SUBSCRIPTION = """
subscription MyXyleme

monitoring UpdatedPage
select <UpdatedPage url=URL/>
where URL extends "http://inria.fr/Xy/"
  and modified self

monitoring NewMember
select X
from self//Member X
where URL = "http://inria.fr/Xy/members.xml"
  and new X

report when notifications.count >= 3
"""


def main() -> None:
    clock = SimulatedClock(start=990_000_000.0)  # around May 2001
    system = SubscriptionSystem(clock=clock)

    subscription_id = system.subscribe(
        SUBSCRIPTION, owner_email="benjamin.nguyen@inria.fr"
    )
    print(f"registered subscription #{subscription_id}")

    # The crawler fetches the page for the first time.
    first = system.feed_xml("http://inria.fr/Xy/members.xml", MEMBERS_V1)
    print(
        f"fetch 1: status={first.outcome.status}, "
        f"notifications={len(first.notifications)}"
    )

    # A day later the page has changed: two new members joined.
    clock.advance(86_400)
    second = system.feed_xml("http://inria.fr/Xy/members.xml", MEMBERS_V2)
    print(
        f"fetch 2: status={second.outcome.status}, "
        f"notifications={len(second.notifications)}"
    )

    print(f"\nreports generated: {system.reporter.stats.reports_generated}")
    print(f"emails sent      : {system.email_sink.total_sent}")
    for email in system.email_sink.sent:
        print(f"\n--- email to {email.recipient} ---")
        print(email.body)


if __name__ == "__main__":
    main()
