"""Web-scale monitoring: crawler + evolving synthetic web + many users.

Drives the full Figure 3 architecture for two simulated weeks:

* a synthetic web of product catalogs, museum pages and HTML news pages,
  evolving through the change model;
* an importance-driven crawler whose schedule honours subscription
  ``refresh`` statements;
* several users with different subscriptions, including a *virtual*
  subscription (Section 5.4) piggybacking on another user's query;
* persistence: the Subscription Manager's state survives a simulated crash
  through the embedded SQL store's write-ahead log.

Run:  python examples/web_scale_monitoring.py
"""

import os
import tempfile

from repro import SubscriptionSystem
from repro.clock import SimulatedClock
from repro.minisql import Database
from repro.repository import SemanticClassifier
from repro.webworld import ChangeModel, SimulatedCrawler, SiteGenerator

SHOPS = 8
MUSEUMS = 3
NEWS_PAGES = 4

CAMERA_DEALS = """
subscription CameraDeals
monitoring NewCamera
select X
from self//Product X
where URL extends "http://www.shop"
  and new Product contains "camera"
report when count >= 3
"""

SITE_OPS = """
subscription SiteOps
monitoring AnyShopUpdate
select <UpdatedPage url=URL/>
where URL extends "http://www.shop"
  and modified self
report when daily
atmost 100
"""

NEWS_WATCH = """
subscription XylemeInTheNews
monitoring Mention
select <Mention url=URL/>
where URL extends "http://news."
  and self contains "xyleme"
report when immediate
refresh "http://news.site0.example/index.html" daily
"""

FOLLOWER = """
subscription CameraFollower
virtual CameraDeals.NewCamera
report when count >= 3
"""


def build_system(clock, database):
    classifier = SemanticClassifier()
    classifier.add_rule("culture", ["museum", "painting"])
    classifier.add_rule("commerce", ["catalog", "Product"])
    return SubscriptionSystem(
        clock=clock, classifier=classifier, database=database
    )


def build_web(clock):
    generator = SiteGenerator(seed=21)
    crawler = SimulatedCrawler(
        clock=clock, change_model=ChangeModel(seed=22), seed=23
    )
    for i in range(SHOPS):
        crawler.add_xml_page(
            f"http://www.shop{i}.example/catalog/products.xml",
            generator.catalog(products=10),
            change_probability=0.7,
        )
    for i in range(MUSEUMS):
        crawler.add_xml_page(
            f"http://museum{i}.example/collection.xml",
            generator.museum(paintings=6, city="Amsterdam"),
            change_probability=0.4,
        )
    for i in range(NEWS_PAGES):
        body = generator.html_page(paragraphs=4)
        if i == 0:
            body = body.replace(
                "</body>", "<p>xyleme warehouse launches</p></body>"
            )
        crawler.add_html_page(
            f"http://news.site{i}.example/index.html",
            body,
            change_probability=0.5,
        )
    return crawler


def main() -> None:
    wal_path = os.path.join(tempfile.mkdtemp(), "subscriptions.wal")
    clock = SimulatedClock(start=990_000_000.0)
    system = build_system(clock, Database(path=wal_path))
    crawler = build_web(clock)

    for source, email in [
        (CAMERA_DEALS, "alice@example.org"),
        (SITE_OPS, "ops@example.org"),
        (NEWS_WATCH, "press@xyleme.example"),
        (FOLLOWER, "bob@example.org"),
    ]:
        system.subscribe(source, owner_email=email)
    crawler.apply_refresh_hints(system.manager.refresh_hints())

    for day in range(14):
        for fetch in crawler.due_fetches():
            system.feed(fetch)
        system.advance_days(1)

    print("after 14 simulated days:")
    print(f"  pages in warehouse   : {len(system.repository)}")
    print(f"  documents fetched    : {system.documents_fed}")
    print(f"  alerts processed     : {system.processor.stats.alerts_processed}")
    print(
        f"  notifications        : "
        f"{system.processor.stats.notifications_sent}"
    )
    print(f"  reports generated    : {system.reporter.stats.reports_generated}")
    print(f"  emails sent          : {system.email_sink.total_sent}")

    print("\nsimulating a crash and recovering from the WAL...")
    system.manager.database.close()
    recovered_system = build_system(
        SimulatedClock(clock.now()), Database.recover(wal_path)
    )
    restored = recovered_system.manager.recover()
    print(f"  subscriptions restored: {restored}")

    result = recovered_system.feed_xml(
        "http://www.shop0.example/catalog/products.xml",
        "<!DOCTYPE catalog SYSTEM \"http://dtd.example.org/catalog.dtd\">"
        "<catalog><Product><name>fresh camera</name></Product></catalog>",
    )
    print(
        "  first post-recovery fetch produced"
        f" {len(result.notifications)} notification(s)"
    )


if __name__ == "__main__":
    main()
