"""Continuous queries: the AmsterdamPaintings example (Section 5.2).

A ``continuous delta`` query is evaluated biweekly (twice a week) over the
``culture`` domain of the warehouse.  The first evaluation returns the full
answer; later evaluations deliver only the *delta* of the result — the
paper's ``<AmsterdamPaintings-delta>`` with ``<inserted ID=... parent=...
position=...>`` entries built on XIDs.

A second subscription shows a *notification-triggered* continuous query
(the XylemeCompetitors pattern): the query re-runs whenever a monitored
page changes.

Run:  python examples/amsterdam_continuous.py
"""

from repro import SubscriptionSystem
from repro.clock import SimulatedClock
from repro.repository import SemanticClassifier

RIJKS_URL = "http://rijksmuseum.example/collection.xml"

MUSEUM_V1 = """\
<museum>
  <name>Rijksmuseum</name>
  <address>Museumstraat 1, Amsterdam</address>
  <painting><title>The Night Watch</title><year>1642</year></painting>
  <painting><title>The Milkmaid</title><year>1658</year></painting>
</museum>"""

MUSEUM_V2 = MUSEUM_V1.replace(
    "</museum>",
    "  <painting><title>Self-portrait</title><year>1661</year></painting>\n"
    "</museum>",
)

AMSTERDAM = """
subscription AmsterdamWatch
continuous delta AmsterdamPaintings
select p/title
from culture/museum m, m/painting p
where m/address contains "Amsterdam"
try biweekly
report when immediate
"""

COMPETITORS = """
subscription XylemeCompetitors
monitoring ChangeInMyProducts
select <ChangeInMyProducts url=URL/>
where URL = "http://www.xyleme.example/products.xml"
  and modified self
continuous MyCompetitors
select p/title
from culture/museum m, m/painting p
where m/address contains "Amsterdam"
when XylemeCompetitors.ChangeInMyProducts
report when immediate
"""


def main() -> None:
    clock = SimulatedClock(start=990_000_000.0)
    classifier = SemanticClassifier()
    classifier.add_rule("culture", ["museum", "painting"])
    system = SubscriptionSystem(clock=clock, classifier=classifier)

    # Populate the warehouse before subscribing.
    system.feed_xml(RIJKS_URL, MUSEUM_V1)
    amsterdam_id = system.subscribe(AMSTERDAM, owner_email="curator@example.org")
    competitors_id = system.subscribe(
        COMPETITORS, owner_email="ceo@xyleme.example"
    )

    print("advancing 3.5 days (one biweekly period)...")
    system.advance_days(3.5)
    print("first evaluation -> full result:")
    print(system.publisher.fetch(amsterdam_id))

    print("\nthe museum hangs a new painting; advancing another period...")
    system.feed_xml(RIJKS_URL, MUSEUM_V2)
    system.advance_days(3.5)
    print("second evaluation -> delta only:")
    print(system.publisher.fetch(amsterdam_id))

    print("\nunchanged warehouse; advancing another period...")
    system.advance_days(3.5)
    print(
        "third evaluation -> no notification (delta empty); reports so far:"
        f" {system.publisher.count(amsterdam_id)}"
    )

    print("\n-- notification-triggered query --")
    system.feed_xml("http://www.xyleme.example/products.xml", "<p>v1</p>")
    clock.advance(3600)
    system.feed_xml("http://www.xyleme.example/products.xml", "<p>v2</p>")
    print("products.xml changed -> MyCompetitors re-evaluated:")
    print(system.publisher.fetch(competitors_id))


if __name__ == "__main__":
    main()
