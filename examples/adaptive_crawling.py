"""Adaptive crawling: the acquisition/refresh module in action.

Reproduces the behaviour Section 2.1 describes — refresh decisions "based
on criteria such as the importance of a document, its estimated change rate
or subscriptions involving this particular document" — over a synthetic web
where some catalogs churn hourly and others barely move.

The loop: fetch due pages -> feed the monitoring system -> record each
outcome with the change-rate estimator -> re-plan intervals nightly with a
fixed fetch budget.  Watch the planner move the budget onto the hot pages.

Run:  python examples/adaptive_crawling.py
"""

from repro import SubscriptionSystem
from repro.clock import SECONDS_PER_DAY, SimulatedClock
from repro.webworld import (
    ChangeModel,
    ChangeRateEstimator,
    RefreshPlanner,
    SimulatedCrawler,
    SiteGenerator,
)

HOT_SITES = 3
COLD_SITES = 9
DAILY_BUDGET = 24.0  # fetches/day for the whole web
DAYS = 21

SUBSCRIPTION = """
subscription FreshProducts
monitoring NewProduct
select X
from self//Product X
where URL extends "http://www.shop"
  and new X
report when count >= 10
refresh "http://www.shop-hot0.example/catalog.xml" daily
"""


def main() -> None:
    clock = SimulatedClock(start=990_000_000.0)
    system = SubscriptionSystem(clock=clock)
    generator = SiteGenerator(seed=41)
    crawler = SimulatedCrawler(
        clock=clock, change_model=ChangeModel(seed=42), seed=43,
        base_interval=SECONDS_PER_DAY,
    )
    estimator = ChangeRateEstimator(default_rate_per_day=1.0)
    planner = RefreshPlanner(estimator, daily_budget=DAILY_BUDGET)

    urls = []
    for i in range(HOT_SITES):
        url = f"http://www.shop-hot{i}.example/catalog.xml"
        crawler.add_xml_page(
            url, generator.catalog(products=8), change_probability=0.9
        )
        planner.add_page(url)
        urls.append(url)
    for i in range(COLD_SITES):
        url = f"http://www.shop-cold{i}.example/catalog.xml"
        crawler.add_xml_page(
            url, generator.catalog(products=8), change_probability=0.05
        )
        planner.add_page(url)
        urls.append(url)

    system.subscribe(SUBSCRIPTION, owner_email="buyer@example.org")
    planner.apply_refresh_hints(system.manager.refresh_hints())

    changed_fetches = 0
    total_fetches = 0
    for day in range(DAYS):
        for fetch in crawler.due_fetches():
            result = system.feed(fetch)
            estimator.record_fetch(
                fetch.url, clock.now(), result.outcome.changed
            )
            total_fetches += 1
            if result.outcome.changed:
                changed_fetches += 1
        crawler.apply_plan(planner.plan_intervals())
        system.advance_days(1)

    print(f"after {DAYS} simulated days with {DAILY_BUDGET:.0f} fetches/day:")
    print(
        f"  fetches: {total_fetches}, of which"
        f" {changed_fetches} found changes"
        f" ({changed_fetches / total_fetches:.0%} useful)"
    )
    print("\nper-page learned rates and planned intervals:")
    intervals = planner.plan_intervals()
    for url in urls:
        rate = estimator.rate_per_day(url)
        hours = intervals[url] / 3600
        kind = "HOT " if "hot" in url else "cold"
        print(
            f"  [{kind}] {url:<46} rate={rate:5.2f}/day"
            f"  interval={hours:6.1f} h"
        )
    print(
        f"\nnotifications: {system.processor.stats.notifications_sent},"
        f" reports: {system.reporter.stats.reports_generated}"
    )


if __name__ == "__main__":
    main()
