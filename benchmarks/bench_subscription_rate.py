"""T-sub — Subscription Manager load (Section 3).

Paper: "The Subscription Manager's task is not as intensive as that of
other modules, since it only depends on the number of people that decide
to subscribe to our system at the same time (a few hundred) ...  The
Subscription Manager runs on a single machine."

Reproduction: measure full subscription registrations per second (parse +
validate + cost control + event interning + matcher insert + alerter
registration + persistence row) and removals per second.  Expected shape:
hundreds of concurrent subscribers are far below one second of work.
"""

from __future__ import annotations

import time

import pytest

from _bench_utils import print_series
from repro.clock import SimulatedClock
from repro.pipeline import SubscriptionSystem

BATCH = 300  # "a few hundred" simultaneous subscribers

_results: dict = {}


def _source(index: int) -> str:
    return f"""
    subscription User{index}
    monitoring Hits
    select <Hit url=URL/>
    where URL extends "http://www.site-{index % 40:03d}.example/"
      and modified self
    monitoring Products
    select X
    from self//Product X
    where DTD = "http://dtd.example.org/catalog.dtd"
      and new Product contains "word{index % 97}"
    report when count >= 10
    """


def test_subscription_registration_rate(benchmark):
    def register_batch():
        system = SubscriptionSystem(clock=SimulatedClock(0.0))
        for index in range(BATCH):
            system.subscribe(_source(index), owner_email=f"u{index}@x")
        return system

    benchmark.pedantic(register_batch, rounds=3, iterations=1)
    start = time.perf_counter()
    system = register_batch()
    elapsed = time.perf_counter() - start
    _results["register_per_second"] = BATCH / elapsed
    _results["system"] = system


def test_subscription_removal_rate(benchmark):
    system = SubscriptionSystem(clock=SimulatedClock(0.0))
    ids = [
        system.subscribe(_source(index), owner_email=f"u{index}@x")
        for index in range(BATCH)
    ]

    start = time.perf_counter()
    for sub_id in ids:
        system.unsubscribe(sub_id)
    elapsed = time.perf_counter() - start
    _results["remove_per_second"] = BATCH / elapsed
    benchmark(lambda: None)


def test_subscription_rate_report(benchmark):
    benchmark(lambda: None)
    register = _results.get("register_per_second", 0.0)
    remove = _results.get("remove_per_second", 0.0)
    rows = [
        f"registrations : {register:10,.0f} subscriptions/s",
        f"removals      : {remove:10,.0f} subscriptions/s",
        f"'a few hundred at the same time' handled in"
        f" {BATCH / max(register, 1e-9):.2f} s",
    ]
    print_series(
        "T-sub: Subscription Manager throughput",
        f"batches of {BATCH} two-query subscriptions",
        rows,
    )
    # A few hundred simultaneous subscribers must be sub-second work.
    assert register > BATCH
