"""T-cluster — domain-clustered data distribution (Section 2.1).

Paper: "Data distribution is based on an automatic semantic classification
of all DTDs.  The system tries to cluster as many documents as possible
from the same domain on a single machine."

Reproduction: store a mixed corpus (several domains + unclassified pages)
into a 4-shard :class:`ClusteredRepository` and measure (a) domain
locality — the fraction of classified documents on their domain's home
shard — and (b) the shard balance.  Expected shape: locality = 100 % while
overall load stays spread.
"""

from __future__ import annotations

import pytest

from _bench_utils import print_series
from repro.clock import SimulatedClock
from repro.repository import ClusteredRepository, SemanticClassifier
from repro.webworld import SiteGenerator, to_xml

SHARDS = 4
PER_DOMAIN = 40
UNCLASSIFIED = 60

_results: dict = {}


def _build():
    classifier = SemanticClassifier()
    classifier.add_rule("culture", ["museum", "painting"])
    classifier.add_rule("commerce", ["catalog", "Product"])
    classifier.add_rule("team", ["members", "Member"])
    clustered = ClusteredRepository(
        shard_count=SHARDS,
        classifier=classifier,
        clock=SimulatedClock(0.0),
    )
    generator = SiteGenerator(seed=301)
    for i in range(PER_DOMAIN):
        clustered.store_xml(
            f"http://m{i}.example/c.xml", to_xml(generator.museum(4))
        )
        clustered.store_xml(
            f"http://s{i}.example/cat.xml", to_xml(generator.catalog(4))
        )
        clustered.store_xml(
            f"http://t{i}.example/team.xml", to_xml(generator.members(3))
        )
    for i in range(UNCLASSIFIED):
        clustered.store_xml(f"http://u{i}.example/x.xml", "<blob><x/></blob>")
    return clustered


def test_clustered_store(benchmark):
    clustered = benchmark.pedantic(_build, rounds=1, iterations=1)
    _results["locality"] = clustered.domain_locality()
    _results["sizes"] = clustered.shard_sizes()
    _results["culture_docs"] = len(clustered.documents_in_domain("culture"))


def test_clustering_report_and_shape(benchmark):
    benchmark(lambda: None)
    sizes = _results.get("sizes", [])
    rows = [
        f"domain locality       : {_results.get('locality', 0):.1%}",
        f"documents per shard   : {sizes}",
        f"culture domain served by its home shard:"
        f" {_results.get('culture_docs', 0)} documents",
    ]
    print_series(
        "T-cluster: domain-clustered repository distribution",
        f"{SHARDS} shards, 3 domains x {PER_DOMAIN} docs +"
        f" {UNCLASSIFIED} unclassified",
        rows,
    )
    if not sizes:
        return
    assert _results["locality"] == 1.0
    total = sum(sizes)
    assert max(sizes) < total  # load is spread, not piled on one shard
    assert _results["culture_docs"] == PER_DOMAIN
