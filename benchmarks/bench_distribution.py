"""T-dist — the two distribution axes of the MQP (Section 4.2).

Paper: "Typically, one can use distribution along two directions:
1. Processing speed: split the flow of documents ... 2. Memory: split the
subscriptions ... This results in smaller data structures for each
processor.  Based on these two kinds of distributions, we obtain a very
scalable system."

Reproduction (in-process shards): flow partitioning spreads documents
evenly so per-shard load is ~1/n of the total; subscription partitioning
splits the structure so per-shard cell counts are ~1/n.
"""

from __future__ import annotations

import pytest

from _bench_utils import print_series
from repro.core import (
    Alert,
    AtomicEventKey,
    FlowPartitionedProcessor,
    SubscriptionPartitionedProcessor,
)

SUBSCRIPTIONS = 3_000
DOCUMENTS = 1_000
SHARDS = 4

_results: dict = {}


def _specs():
    return [
        [
            AtomicEventKey("url_eq", f"http://site{i}/"),
            AtomicEventKey("dtd_eq", f"http://dtd{i % 97}/"),
        ]
        for i in range(SUBSCRIPTIONS)
    ]


def _alerts(processor, count):
    # Derive valid atomic codes from the shared registry so some alerts hit.
    events = list(processor.registry.complex_events())[:100]
    alerts = []
    for i in range(count):
        event = events[i % len(events)]
        alerts.append(
            Alert(f"http://doc{i}/", sorted(event.atomic_codes))
        )
    return alerts


def test_flow_partitioning_balance(benchmark):
    processor = FlowPartitionedProcessor(shard_count=SHARDS)
    for spec in _specs():
        processor.register(spec)
    alerts = _alerts(processor, DOCUMENTS)

    def run():
        for alert in alerts:
            processor.process_alert(alert)

    benchmark.pedantic(run, rounds=3, iterations=1)
    per_shard = [shard.stats.alerts_processed for shard in processor.shards]
    _results["flow_per_shard"] = per_shard


def test_subscription_partitioning_memory(benchmark):
    single = SubscriptionPartitionedProcessor(shard_count=1)
    sharded = SubscriptionPartitionedProcessor(shard_count=SHARDS)
    for spec in _specs():
        single.register(spec)
    for spec in _specs():
        sharded.register(spec)
    alerts = _alerts(sharded, DOCUMENTS)

    def run():
        for alert in alerts:
            sharded.process_alert(alert)

    benchmark.pedantic(run, rounds=3, iterations=1)
    _results["single_cells"] = single.shards[0].structure_stats()["cells"]
    _results["sharded_cells"] = [
        shard.structure_stats()["cells"] for shard in sharded.shards
    ]


def test_distribution_report_and_shape(benchmark):
    benchmark(lambda: None)
    flow = _results.get("flow_per_shard", [])
    sharded_cells = _results.get("sharded_cells", [])
    rows = [
        f"flow partitioning, docs per shard      : {flow}",
        f"single-processor structure cells       : "
        f"{_results.get('single_cells', 0):,}",
        f"subscription partitioning, cells/shard : {sharded_cells}",
    ]
    print_series(
        "T-dist: distribution axes",
        f"{SUBSCRIPTIONS:,} subscriptions, {DOCUMENTS:,} documents,"
        f" {SHARDS} shards",
        rows,
    )
    if flow:
        # Flow partitioning: every shard gets a meaningful share and no
        # shard is a hotspot (within 2x of the fair share).  Loads are
        # normalized by the total processed because the benchmark replays
        # the stream several rounds.
        fair = sum(flow) / SHARDS
        assert all(fair / 2 < load < fair * 2 for load in flow)
    if sharded_cells and _results.get("single_cells"):
        # Memory axis: each shard's structure is ~1/n of the monolith.
        fair_cells = _results["single_cells"] / SHARDS
        assert all(
            fair_cells * 0.5 < cells < fair_cells * 2.0
            for cells in sharded_cells
        )
