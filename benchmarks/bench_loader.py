"""T-load — the loader/alerter path keeps up with the crawler (Section 6.3).

Paper: "In our experiments, the Alerters could easily support the rate of
fetching documents on the web imposed by the crawlers and URL managers"
(one crawler ≈ 50 documents/second).

Reproduction: time the full per-fetch path — parse, signature, diff
against the previous version, change classification, alerter detection —
for catalog documents of realistic size, and compare the rate against the
paper's 50 docs/s crawler.
"""

from __future__ import annotations

import time

import pytest

from _bench_utils import print_series
from repro.clock import SimulatedClock
from repro.pipeline import SubscriptionSystem
from repro.webworld import ChangeModel, SiteGenerator, to_xml

DOCUMENTS = 150
PRODUCTS_PER_CATALOG = 20
CRAWLER_RATE = 50.0

_results: dict = {}


def _prepared_system():
    system = SubscriptionSystem(clock=SimulatedClock(0.0))
    system.subscribe(
        """
        subscription Load
        monitoring M
        select X
        from self//Product X
        where URL extends "http://www.shop"
          and new Product contains "camera"
        report when count >= 1000
        """,
        owner_email="u@x",
    )
    return system


def _page_versions():
    generator = SiteGenerator(seed=201)
    model = ChangeModel(seed=202)
    base = generator.catalog(products=PRODUCTS_PER_CATALOG)
    versions = [to_xml(base)]
    document = base
    for _ in range(DOCUMENTS - 1):
        document = model.mutate(document)
        versions.append(to_xml(document))
    return versions


def test_first_load_rate(benchmark):
    """Cold path: parse + store + index + alert (no diff)."""
    versions = _page_versions()

    def run():
        system = _prepared_system()
        for index, content in enumerate(versions):
            system.feed_xml(f"http://www.shop{index}.example/c.xml", content)
        return system

    benchmark.pedantic(run, rounds=2, iterations=1)
    start = time.perf_counter()
    run()
    elapsed = time.perf_counter() - start
    _results["cold_docs_per_second"] = DOCUMENTS / elapsed


def test_refetch_rate_with_diff(benchmark):
    """Hot path: every fetch diffs against the stored previous version."""
    versions = _page_versions()

    def run():
        system = _prepared_system()
        for index, content in enumerate(versions):
            system.feed_xml("http://www.shop0.example/c.xml", content)
            system.clock.advance(60)
        return system

    benchmark.pedantic(run, rounds=2, iterations=1)
    start = time.perf_counter()
    run()
    elapsed = time.perf_counter() - start
    _results["diff_docs_per_second"] = DOCUMENTS / elapsed


def test_loader_report_and_claims(benchmark):
    benchmark(lambda: None)
    cold = _results.get("cold_docs_per_second", 0.0)
    hot = _results.get("diff_docs_per_second", 0.0)
    rows = [
        f"first-load path : {cold:8,.0f} docs/s"
        f" ({cold / CRAWLER_RATE:5.1f} crawlers)",
        f"refetch + diff  : {hot:8,.0f} docs/s"
        f" ({hot / CRAWLER_RATE:5.1f} crawlers)",
    ]
    print_series(
        "T-load: loader/alerter path vs crawler rate",
        f"{DOCUMENTS} catalogs of {PRODUCTS_PER_CATALOG} products;"
        f" paper crawler = {CRAWLER_RATE:.0f} docs/s",
        rows,
    )
    # The paper's claim: the alerter path keeps up with one crawler.
    assert hot > CRAWLER_RATE
