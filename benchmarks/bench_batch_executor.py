"""T-batch — batch executor throughput (staged pipeline, PR 2).

Xyleme's ingestion is claimed to sustain "millions of documents per day"
by decomposing the Figure 3 stages into independent processes.  The
reproduction's seam for that is the pluggable
:class:`~repro.pipeline.executor.BatchExecutor`; this bench records the
wall-clock docs/sec of each executor at batch sizes {1, 16, 64} over the
same evolving-catalog stream, on one flow-partitioned topology (4 shards)
so all three executors are exercised meaningfully.

Expected shape under the CPython GIL: the threaded executor buys overlap,
not raw speedup — the acceptance bar is "no regression" (>= 1.0x serial at
batch 64, within noise), and the numbers here start the perf trajectory
the planned process-pool executor will be measured against.

Results land in ``BENCH_batch_executor.json`` (see ``_bench_utils``).
"""

from __future__ import annotations

import time

import pytest

from _bench_utils import QUICK, dump_bench_json, print_series
from repro.clock import SimulatedClock
from repro.pipeline import Fetch, SubscriptionSystem

SHARDS = 4
BATCH_SIZES = (1, 16, 64)
EXECUTORS = ("serial", "threaded", "sharded")
DOCS = 192 if QUICK else 576
SITES = 24
REPEATS = 3

SOURCE = """
subscription Bench
monitoring M
select <Hit url=URL/>
from self//Product X
where URL extends "http://www.shop"
  and new Product contains "camera"
report when count >= 5
"""

_results: dict = {}


def make_stream():
    fetches = []
    for index in range(DOCS):
        site = index % SITES
        round_no = index // SITES
        word = "camera" if (site + round_no) % 2 == 0 else "tripod"
        products = "".join(
            f"<Product>{word} model {round_no}-{i}</Product>"
            for i in range(6)
        )
        fetches.append(
            Fetch(
                f"http://www.shop{site}.example/catalog.xml",
                f"<catalog>{products}</catalog>",
            )
        )
    return fetches


def build_system(executor: str) -> SubscriptionSystem:
    system = SubscriptionSystem(
        clock=SimulatedClock(1_000_000.0), shards=SHARDS, executor=executor
    )
    system.subscribe(SOURCE, owner_email="bench@example.org")
    return system


def measure(executor: str, batch_size: int, stream) -> float:
    """Best-of-N wall-clock docs/sec for one (executor, batch) point."""
    best = float("inf")
    for _ in range(REPEATS):
        system = build_system(executor)
        start = time.perf_counter()
        system.run_stream(iter(stream), batch_size=batch_size)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        system.executor.close()
    return DOCS / best


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("executor", EXECUTORS)
def test_executor_throughput(benchmark, executor, batch_size):
    stream = make_stream()

    def run():
        system = build_system(executor)
        system.run_stream(iter(stream), batch_size=batch_size)
        system.executor.close()
        return system

    system = benchmark(run)
    assert system.documents_fed == DOCS
    _results[(executor, batch_size)] = measure(executor, batch_size, stream)


def test_batch_executor_report(benchmark):
    benchmark(lambda: None)
    missing = [
        (executor, batch)
        for executor in EXECUTORS
        for batch in BATCH_SIZES
        if (executor, batch) not in _results
    ]
    if missing:
        pytest.skip(f"points not measured in this run: {missing}")
    rows = []
    for executor in EXECUTORS:
        row = f"{executor:>8}  " + "  ".join(
            f"b={batch:<3} {_results[(executor, batch)]:9,.0f} docs/s"
            for batch in BATCH_SIZES
        )
        rows.append(row)
    serial64 = _results[("serial", 64)]
    rows.append(
        "vs serial @ b=64 : "
        + "  ".join(
            f"{executor}={_results[(executor, 64)] / serial64:.2f}x"
            for executor in EXECUTORS
        )
    )
    print_series(
        "T-batch: executor throughput (full pipeline)",
        f"{DOCS} documents, {SITES} sites, {SHARDS} flow shards,"
        f" best of {REPEATS}",
        rows,
    )
    path = dump_bench_json(
        {
            "params": {
                "docs": DOCS,
                "sites": SITES,
                "shards": SHARDS,
                "repeats": REPEATS,
                "batch_sizes": list(BATCH_SIZES),
            },
            "docs_per_second": {
                executor: {
                    str(batch): _results[(executor, batch)]
                    for batch in BATCH_SIZES
                }
                for executor in EXECUTORS
            },
            "speedup_vs_serial_at_64": {
                executor: _results[(executor, 64)] / serial64
                for executor in EXECUTORS
            },
        },
        "batch_executor",
    )
    print(f"results dumped to {path}")
    # The GIL bounds the threaded executor; the bar is "no meaningful
    # regression" at the largest batch (generous tolerance for CI noise).
    assert _results[("threaded", 64)] >= 0.8 * serial64
    assert _results[("sharded", 64)] >= 0.8 * serial64
