"""T-fsa — the automaton formulation's state explosion (Section 4.1).

Paper: "In principle, we could detect this using a finite state automaton
in linear time ... Unfortunately, because of the size of the problem, the
number of states of the automaton would be prohibitive."

Reproduction: materialize the full subset-construction DFA for growing
numbers of complex events over a small shared alphabet and compare its
state count against the AES structure's cell count for the *same* events.
Expected shape: DFA states grow super-linearly (combinatorially) in
Card(C) while AES cells grow linearly; the DFA blows past a state budget
at a Card(C) where AES is still tiny.
"""

from __future__ import annotations

import pytest

from _bench_utils import get_workload, print_series
from repro.core import AESMatcher, SubsetAutomatonMatcher
from repro.core.automaton import StateExplosionError

CARD_A = 40
CHAIN_COUNTS = (4, 8, 16, 32)
STATE_LIMIT = 500_000

_results: dict = {}


def _events(count, seed=131):
    workload = get_workload(
        card_a=CARD_A, card_c=count, c_min=2, c_max=3, s=10, seed=seed
    )
    return workload.complex_events()


@pytest.mark.parametrize("chains", CHAIN_COUNTS)
def test_dfa_state_count(benchmark, chains):
    events = _events(chains)
    automaton = SubsetAutomatonMatcher(state_limit=STATE_LIMIT)
    aes = AESMatcher()
    for code, atomic in events:
        automaton.add(code, atomic)
        aes.add(code, atomic)

    def build():
        fresh = SubsetAutomatonMatcher(state_limit=STATE_LIMIT)
        for code, atomic in events:
            fresh.add(code, atomic)
        try:
            return fresh.materialize(alphabet=range(CARD_A))
        except StateExplosionError:
            return -1

    states = benchmark.pedantic(build, rounds=1, iterations=1)
    _results[chains] = {
        "dfa_states": states,
        "aes_cells": aes.structure_stats()["cells"],
    }


def test_fsa_report_and_shape(benchmark):
    benchmark(lambda: None)
    rows = []
    for chains in CHAIN_COUNTS:
        data = _results.get(chains)
        if data is None:
            continue
        states = data["dfa_states"]
        state_text = (
            f"{states:>9,}" if states >= 0 else f"> {STATE_LIMIT:,} (blew up)"
        )
        rows.append(
            f"Card(C)={chains:>3}  DFA states={state_text}"
            f"  AES cells={data['aes_cells']:>5,}"
        )
    print_series(
        "T-fsa: automaton state explosion vs AES structure size",
        f"Card(A)={CARD_A}, c in [2,3]",
        rows,
    )
    if len(_results) < len(CHAIN_COUNTS):
        return
    # AES grows linearly with the number of chains.
    assert (
        _results[CHAIN_COUNTS[-1]]["aes_cells"]
        <= _results[CHAIN_COUNTS[0]]["aes_cells"] * (
            CHAIN_COUNTS[-1] // CHAIN_COUNTS[0]
        ) * 2
    )
    # The DFA grows super-linearly: doubling the chains much more than
    # doubles the states (or overflows the budget outright).
    first = _results[CHAIN_COUNTS[0]]["dfa_states"]
    last = _results[CHAIN_COUNTS[-1]]["dfa_states"]
    if last < 0:
        return  # blew the budget: the paper's point, proven
    chains_ratio = CHAIN_COUNTS[-1] / CHAIN_COUNTS[0]
    assert last > first * chains_ratio * 2
