"""Figure 6 — time to process a document as a function of log k.

Paper setup: "we ran our benchmark with for instance s = 20,
Card(A) = 100000 and c̄ = 3.  We controlled the variation of k by varying
Card(C) from 10000 to 1 million ... Figure 6 shows that the experimental
dependency is O(s · log k)."

Reproduction: same knobs; k = c̄ · Card(C) / Card(A) runs from 0.3 to 30.
Expected shape: time per document grows far slower than k itself —
multiplying k by 100 multiplies the time by a small factor (log-like), and
time is increasing in k.
"""

from __future__ import annotations

import math

import pytest

from _bench_utils import (
    get_matcher,
    get_workload,
    print_series,
    scaled_card_c,
    time_per_document_us,
)

CARD_A = 100_000
S = 20
CARD_C_VALUES = (10_000, 30_000, 100_000, 300_000, 1_000_000)

_results: dict = {}


def _params(card_c):
    return dict(card_a=CARD_A, card_c=scaled_card_c(card_c), c_min=2,
                c_max=4, s=S, seed=11)


@pytest.mark.parametrize("card_c", CARD_C_VALUES)
def test_fig6_time_per_doc(benchmark, card_c, bench_doc_count):
    matcher = get_matcher(**_params(card_c))
    workload = get_workload(**_params(card_c))
    documents = workload.document_event_sets(bench_doc_count)

    def run():
        for event_set in documents:
            matcher.match(event_set)

    benchmark(run)
    per_doc_us = time_per_document_us(matcher, documents)
    k = 3.0 * scaled_card_c(card_c) / CARD_A
    _results[card_c] = (k, per_doc_us)


def test_fig6_report_and_shape(benchmark):
    benchmark(lambda: None)
    rows = [
        f"Card(C)={scaled_card_c(card_c):>9,}  k={k:7.2f}  "
        f"log10(k)={math.log10(k):5.2f}  time/doc={per_doc:8.1f} us"
        for card_c, (k, per_doc) in sorted(_results.items())
    ]
    print_series(
        "Figure 6: time per document vs log k",
        f"Card(A)={CARD_A:,}, s={S}, c in [2,4]",
        rows,
    )
    measured = [
        _results[card_c] for card_c in CARD_C_VALUES if card_c in _results
    ]
    ks = [k for k, _ in measured]
    times = [t for _, t in measured]
    if len(set(ks)) < 4:
        return  # quick mode collapsed the sweep; shape checks need range
    # Growth far slower than linear in k: a k-multiplier of 100 must cost
    # much less than 100x in time.
    k_ratio = ks[-1] / ks[0]
    time_ratio = times[-1] / times[0]
    assert time_ratio < k_ratio / 2, (
        f"time grew {time_ratio:.1f}x while k grew {k_ratio:.0f}x; the paper"
        " reports O(s log k)"
    )
    # And it does grow with k (k has a real cost).
    assert times[-1] > times[0]
    # Log-like: time vs log(k) is closer to linear than time vs k.  Compare
    # correlation-style residuals of a fit against log k vs against k.
    log_fit_error = _linear_fit_error([math.log(k) for k in ks], times)
    linear_fit_error = _linear_fit_error(ks, times)
    assert log_fit_error <= linear_fit_error * 1.5


def _linear_fit_error(xs, ys) -> float:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denominator = sum((x - mean_x) ** 2 for x in xs) or 1e-12
    slope = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    ) / denominator
    intercept = mean_y - slope * mean_x
    return sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
