"""Figure 5 — time to process a document as a function of s = Card(S).

Paper setup: "we fixed all parameters and let s vary ... the processing
time is linear in s.  Figure 5 shows the time to process one document
[in microseconds] as a function of s.  The different lines are plotted with
different values of Card(A) and Card(C), ranging from 10000 to 1 million.
One can note that even for s = 100 the time to process one document is only
about 1 millisecond."

Reproduction: Card(A) = 10^6 (the paper's upper bound; with A >> s·c the
subtable exploration stays sparse and the curve is linear, which is the
regime Figure 5 shows), c ∈ [2,4] (c̄ = 3), s ∈ {10,25,50,75,100}, three
curves Card(C) ∈ {10^4, 10^5, 10^6}.  Expected shape: each curve is roughly
linear in s, curves ordered by Card(C), and s=100 at Card(C)=10^6 lands at
the sub-millisecond scale (the paper reports ~1 ms on 2001 hardware).
"""

from __future__ import annotations

import pytest

from _bench_utils import (
    get_matcher,
    get_workload,
    print_series,
    scaled_card_c,
    time_per_document_us,
)

CARD_A = 1_000_000
S_VALUES = (10, 25, 50, 75, 100)
CARD_C_CURVES = (10_000, 100_000, 1_000_000)

_results: dict = {}


def _loglog_slope(xs, ys) -> float:
    """Least-squares slope of log(y) vs log(x)."""
    import math

    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    n = len(xs)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    numerator = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(log_x, log_y)
    )
    denominator = sum((x - mean_x) ** 2 for x in log_x)
    return numerator / denominator


def _params(card_c):
    return dict(card_a=CARD_A, card_c=scaled_card_c(card_c), c_min=2,
                c_max=4, seed=5)


@pytest.mark.parametrize("card_c", CARD_C_CURVES)
@pytest.mark.parametrize("s", S_VALUES)
def test_fig5_time_per_doc(benchmark, s, card_c, bench_doc_count):
    matcher = get_matcher(**_params(card_c))
    workload = get_workload(**dict(_params(card_c), s=s))
    documents = workload.document_event_sets(bench_doc_count)

    def run():
        for event_set in documents:
            matcher.match(event_set)

    benchmark(run)
    per_doc_us = time_per_document_us(matcher, documents)
    _results[(card_c, s)] = per_doc_us


def test_fig5_report_and_shape(benchmark):
    """Prints the Figure 5 series and asserts the paper's shape claims.

    Takes the ``benchmark`` fixture (on a no-op) so the report also runs
    under ``--benchmark-only``.
    """
    benchmark(lambda: None)
    rows = []
    for card_c in CARD_C_CURVES:
        effective = scaled_card_c(card_c)
        series = [
            (s, _results[(card_c, s)])
            for s in S_VALUES
            if (card_c, s) in _results
        ]
        for s, per_doc in series:
            rows.append(
                f"Card(C)={effective:>9,}  s={s:>3}  "
                f"time/doc={per_doc:9.1f} us"
            )
    print_series(
        "Figure 5: time per document vs Card(S)",
        f"Card(A)={CARD_A:,}, c in [2,4]",
        rows,
    )

    for card_c in CARD_C_CURVES:
        series = [
            _results[(card_c, s)] for s in S_VALUES if (card_c, s) in _results
        ]
        if len(series) < len(S_VALUES):
            continue
        # Roughly-linear-in-s shape: the log-log slope of time vs s should
        # sit near 1 (clearly below quadratic, clearly above constant).
        slope = _loglog_slope(S_VALUES, series)
        assert 0.6 < slope < 1.8, (
            f"Card(C)={card_c}: log-log slope {slope:.2f}; the paper reports"
            " linear growth in s"
        )
        # The endpoints are ordered (larger s costs more overall); strict
        # pairwise monotonicity is left to the eye — individual small
        # points jitter under scheduling noise.
        assert series[-1] > series[0]
    # Paper's absolute anchor (shape-level): s=100 stays near the
    # millisecond scale even at the largest Card(C) (CPython slack: 10x).
    largest = scaled_card_c(CARD_C_CURVES[-1])
    anchor = _results.get((CARD_C_CURVES[-1], 100))
    if anchor is not None:
        assert anchor < 10_000, (
            f"s=100, Card(C)={largest:,} took {anchor:.0f} us/doc; the paper"
            " reports ~1 ms"
        )
