"""T-url — URL alerter pattern detection (Section 6.2).

Paper: "We next focus on the detection of URL patterns that is by far the
most critical in terms of performance ... The dominating cost is the
look-up in the million-records hash table.  To obtain a linear lookup cost,
we tried using a dictionary structure.  This improved the speed by about 30
percent.  But in terms of memory size, the overhead was too high."

Reproduction: 10^5 registered ``URL extends`` patterns (10^6 at full scale
would dominate the suite's runtime without changing the shape).  Expected
shapes: the trie is faster per lookup than the hash table; the trie's node
count (memory proxy) is an order of magnitude larger than the hash table's
entry count.
"""

from __future__ import annotations

import random
import time

import pytest

from _bench_utils import QUICK, print_series
from repro.alerters import PrefixHashTable, PrefixTrie

PATTERN_COUNT = 50_000 if QUICK else 200_000
LOOKUPS = 2_000

_structures: dict = {}
_results: dict = {}


def _patterns_and_urls():
    rng = random.Random(61)
    hosts = [
        f"www.site-{i:06d}.example.{rng.choice(['com', 'org', 'fr'])}"
        for i in range(PATTERN_COUNT)
    ]
    patterns = [f"http://{host}/" for host in hosts]
    # Half the probe URLs extend a registered pattern, half miss.
    urls = []
    for i in range(LOOKUPS):
        if i % 2 == 0:
            host = hosts[rng.randrange(len(hosts))]
            urls.append(f"http://{host}/catalog/item-{i}.xml")
        else:
            urls.append(f"http://www.unregistered-{i}.example.net/page.html")
    return patterns, urls


def _get(structure_name):
    if structure_name not in _structures:
        patterns, urls = _patterns_and_urls()
        structure = (
            PrefixHashTable() if structure_name == "hash" else PrefixTrie()
        )
        for code, pattern in enumerate(patterns):
            structure.add(pattern, code)
        _structures[structure_name] = (structure, urls)
    return _structures[structure_name]


@pytest.mark.parametrize("structure_name", ["hash", "trie"])
def test_prefix_lookup_speed(benchmark, structure_name):
    structure, urls = _get(structure_name)

    def run():
        total = 0
        for url in urls:
            total += len(structure.matches(url))
        return total

    benchmark(run)
    start = time.perf_counter()
    run()
    elapsed = time.perf_counter() - start
    _results[structure_name] = elapsed / len(urls) * 1e6


def test_hash_full_prefix_scan_speed(benchmark):
    """The paper's literal strategy: hash every character prefix."""
    structure, urls = _get("hash")

    def run():
        total = 0
        for url in urls:
            total += len(structure.matches_scanning_all_prefixes(url))
        return total

    benchmark(run)
    start = time.perf_counter()
    run()
    elapsed = time.perf_counter() - start
    _results["hash_all_prefixes"] = elapsed / len(urls) * 1e6


def test_url_alerter_report_and_shape(benchmark):
    benchmark(lambda: None)
    hash_structure, _ = _get("hash")
    trie_structure, _ = _get("trie")
    trie_nodes = trie_structure.node_count()
    rows = [
        f"hash table        : {_results.get('hash', 0):8.2f} us/url "
        f"({len(hash_structure):,} entries)",
        f"hash (all prefixes): {_results.get('hash_all_prefixes', 0):7.2f}"
        " us/url",
        f"trie              : {_results.get('trie', 0):8.2f} us/url "
        f"({trie_nodes:,} nodes)",
        f"trie/hash memory-unit ratio: {trie_nodes / len(hash_structure):.1f}x",
    ]
    print_series(
        "T-url: URL extends detection",
        f"{PATTERN_COUNT:,} registered prefixes, {LOOKUPS:,} lookups",
        rows,
    )
    # Paper shape 1: the trie is faster than hashing every prefix (the
    # paper measured ~30%; we only require a real speedup).
    assert _results["trie"] < _results["hash_all_prefixes"]
    # Paper shape 2: the trie costs far more memory (node count explodes
    # relative to hash entries).
    assert trie_nodes > len(hash_structure) * 3
