"""T-recover — cost of the crash-recovery layer (PR 5).

One question, crawl-driven end-to-end: what does enabling the runtime
journal cost when nothing crashes?  Every delivered notification pays
one fsynced WAL append, and every ``checkpoint_every`` ingested batches
the full runtime (reporter buffers, repository versions, crawl cursor,
RNGs) is snapshotted and the log compacted — at the default
``checkpoint_every=64`` the acceptance bar is **< 8% throughput
overhead** versus the identical run with no journal attached
(``journaled / plain >= 0.92``, paired-median so container load drift
cancels).

Results land in ``BENCH_recovery.json`` (see ``_bench_utils``).
"""

from __future__ import annotations

import os
import statistics
import tempfile
import time

from _bench_utils import QUICK, dump_bench_json, print_series
from repro.clock import SimulatedClock
from repro.pipeline import SubscriptionSystem
from repro.webworld import ChangeModel, SimulatedCrawler, SiteGenerator

SITES = 8 if QUICK else 16
DAYS = 4 if QUICK else 8
CHECKPOINT_EVERY = 64
SEED = 7

SOURCE = """
subscription Bench
monitoring M
select <Hit url=URL/>
from self//Product X
where URL extends "http://www.shop"
  and new Product contains "camera"
report when count >= 5
"""

_results: dict = {}


def build_world():
    clock = SimulatedClock(990_000_000.0)
    system = SubscriptionSystem(clock=clock)
    generator = SiteGenerator(seed=SEED)
    crawler = SimulatedCrawler(
        clock=clock,
        change_model=ChangeModel(seed=SEED + 1),
        seed=SEED + 2,
        metrics=system.metrics,
    )
    for i in range(SITES):
        # Heavy pages (as in T-proc): the journal's per-delivery fsync is
        # a fixed cost, so it must be priced against realistic parse work,
        # not toy documents.
        crawler.add_xml_page(
            f"http://www.shop{i}.example/catalog.xml",
            generator.catalog(products=40),
            change_probability=0.7,
        )
    system.subscribe(SOURCE, owner_email="bench@example.org")
    return system, crawler


def run_world(system, crawler):
    for _ in range(DAYS * 24):
        system.run_stream(crawler.due_fetches())
        system.advance_time(3600)


def timed_run(journal_dir=None):
    """One full crawl; returns ``(system, manager, seconds)``."""
    system, crawler = build_world()
    manager = None
    if journal_dir is not None:
        manager = system.enable_recovery(
            os.path.join(journal_dir, "bench.journal"),
            crawler=crawler,
            checkpoint_every=CHECKPOINT_EVERY,
        )
    start = time.perf_counter()
    run_world(system, crawler)
    elapsed = time.perf_counter() - start
    if manager is not None:
        manager.close()
    return system, manager, elapsed


def paired_overhead(pairs: int = 9) -> float:
    """Journaled-vs-plain throughput ratio, median over back-to-back
    pairs (cancels container load drift)."""
    ratios = []
    for _ in range(pairs):
        with tempfile.TemporaryDirectory() as tmp:
            _, _, plain = timed_run()
            _, _, journaled = timed_run(tmp)
        ratios.append(plain / journaled)
    return statistics.median(ratios)


def test_recovery_journal_throughput(benchmark):
    with tempfile.TemporaryDirectory() as tmp:
        def run():
            system, manager, _ = timed_run(tmp)
            return system, manager

        system, manager = benchmark(run)
    assert system.documents_fed > 0
    # The journal genuinely worked: deliveries were journaled and a
    # restorable checkpoint exists (at checkpoint_every=64 the crawl is
    # too short for a mid-run checkpoint — that cadence is pinned in
    # tests/test_recovery.py; here only its *cost* matters).
    assert manager.seen
    assert manager.checkpoints >= 1
    assert manager.deduped == 0  # a fresh run never dedups
    _results["journaled"] = {
        "docs_per_second": system.documents_fed / benchmark.stats.stats.min,
        "documents_fed": system.documents_fed,
        "deliveries_journaled": len(manager.seen),
        "checkpoints": manager.checkpoints,
    }


def test_recovery_plain_throughput(benchmark):
    def run():
        system, _, _ = timed_run()
        return system

    system = benchmark(run)
    assert system.documents_fed > 0
    _results["plain"] = {
        "docs_per_second": system.documents_fed / benchmark.stats.stats.min,
        "documents_fed": system.documents_fed,
    }


def test_recovery_overhead_report(benchmark):
    benchmark(lambda: None)
    import pytest

    missing = [k for k in ("plain", "journaled") if k not in _results]
    if missing:
        pytest.skip(f"points not measured in this run: {missing}")
    # Same workload either way — the journal must not change ingestion.
    assert (
        _results["plain"]["documents_fed"]
        == _results["journaled"]["documents_fed"]
    )
    overhead = paired_overhead()
    rows = [
        f"{label:>10}  {entry['docs_per_second']:9,.0f} docs/s"
        f"  fed={entry['documents_fed']}"
        for label, entry in _results.items()
    ]
    rows.append(
        f"journaled throughput ratio (paired median): {overhead:.3f}x plain"
        f" at checkpoint_every={CHECKPOINT_EVERY}"
    )
    print_series(
        "T-recover: runtime-journal cost (end-to-end crawl)",
        f"{SITES} sites, {DAYS} days drained hourly, best round",
        rows,
    )
    path = dump_bench_json(
        {
            "params": {
                "sites": SITES,
                "days": DAYS,
                "checkpoint_every": CHECKPOINT_EVERY,
                "seed": SEED,
            },
            "series": _results,
            "journaled_throughput_ratio": overhead,
        },
        "recovery",
    )
    print(f"results dumped to {path}")
    # Acceptance: journaling + checkpoints cost < 8% at the default cadence.
    assert overhead >= 0.92
