"""Text claim T-mem — memory of the MQP data structure.

Paper: "The data structures we use require about 500MB of memory for
Card(A) = 10^6, Card(C) = 10^6 and c = 10."

Reproduction: build the AES structure at the paper's parameters and report
(a) tracemalloc-measured bytes, (b) bytes per complex event, (c) the
structural counts (tables / cells / marks).  In quick mode the build is
10^5 events and the per-event figure is extrapolated.

Note c = 10 is the paper's *worst case*; we report both c = 3 (their
typical value) and c = 10 at full scale.
"""

from __future__ import annotations

import tracemalloc

import pytest

from _bench_utils import QUICK, print_series, scaled_card_c
from repro.core import AESMatcher
from repro.webworld import SyntheticWorkload, WorkloadParams

CARD_A = 1_000_000
CARD_C = 1_000_000

_results: dict = {}


def _measure_build(card_c: int, c: int):
    params = WorkloadParams(
        card_a=CARD_A, card_c=card_c, c_min=c, c_max=c, s=20, seed=41
    )
    workload = SyntheticWorkload(params)
    events = workload.complex_events()  # draw outside the traced region
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    matcher = AESMatcher()
    for code, atomic_codes in events:
        matcher.add(code, atomic_codes)
    after, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    stats = matcher.structure_stats()
    return {
        "bytes": after - before,
        "per_event": (after - before) / card_c,
        "stats": stats,
    }


@pytest.mark.parametrize("c", [3, 10])
def test_memory_of_structure(benchmark, c):
    card_c = scaled_card_c(CARD_C)

    def build_once():
        return _measure_build(card_c, c)

    # One (traced) build is the measurement; benchmark the untraced build
    # to time it as well.
    measurement = build_once()
    _results[c] = (card_c, measurement)

    params = WorkloadParams(
        card_a=CARD_A, card_c=card_c, c_min=c, c_max=c, s=20, seed=41
    )
    events = SyntheticWorkload(params).complex_events()

    def build_untraced():
        matcher = AESMatcher()
        for code, atomic_codes in events:
            matcher.add(code, atomic_codes)
        return matcher

    benchmark.pedantic(build_untraced, rounds=1, iterations=1)


def test_memory_report_and_claims(benchmark):
    benchmark(lambda: None)
    rows = []
    for c, (card_c, measurement) in sorted(_results.items()):
        megabytes = measurement["bytes"] / 1e6
        extrapolated = measurement["per_event"] * CARD_C / 1e6
        stats = measurement["stats"]
        rows.append(
            f"c={c:>2}  Card(C)={card_c:>9,}  measured={megabytes:8.1f} MB"
            f"  ({measurement['per_event']:.0f} B/event;"
            f" {extrapolated:8.1f} MB at 10^6 events)"
            f"  tables={stats['tables']:,} cells={stats['cells']:,}"
        )
    print_series(
        "T-mem: AES structure memory",
        f"Card(A)={CARD_A:,} (paper: ~500 MB at Card(C)=10^6, c=10)",
        rows,
    )
    # Shape claim: within one order of magnitude of the paper's 500 MB when
    # extrapolated to Card(C) = 10^6 at c = 10.
    _, measurement = _results[10]
    extrapolated_mb = measurement["per_event"] * CARD_C / 1e6
    assert 50 < extrapolated_mb < 5_000
    # c = 10 chains cost more than c = 3 chains.
    assert (
        _results[10][1]["per_event"] > _results[3][1]["per_event"]
    )
