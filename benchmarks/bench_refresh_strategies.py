"""Ablation — refresh strategy of the acquisition module (Section 2.1).

The paper's acquisition/refresh module decides when to re-read documents
"based on criteria such as the importance of a document, its estimated
change rate or subscriptions involving this particular document".  This
bench quantifies why: with a fixed fetch budget over a web whose pages
change at very different rates, an adaptive planner (change-rate estimation
+ weighted budget allocation, ``repro.webworld.refresh``) detects more page
versions than uniform refreshing.

Model: each page changes as a Poisson process; a fetch *detects* a change
if at least one change happened since the previous fetch (intermediate
versions collapse — exactly the paper's "we have to detect changes at the
time we are fetching the pages").  Metric: versions detected under an
equal budget.
"""

from __future__ import annotations

import random

import pytest

from _bench_utils import print_series
from repro.clock import SECONDS_PER_DAY
from repro.webworld import ChangeRateEstimator, RefreshPlanner

PAGES = 60
DAYS = 40
DAILY_BUDGET = 120.0  # fetches per day across all pages

_results: dict = {}


def _true_rates(rng):
    """Heterogeneous change rates: a few hot pages, a long cold tail."""
    rates = {}
    for i in range(PAGES):
        if i < 6:
            rates[f"http://p{i}/"] = rng.uniform(4.0, 8.0)     # hot
        elif i < 20:
            rates[f"http://p{i}/"] = rng.uniform(0.5, 1.5)     # warm
        else:
            rates[f"http://p{i}/"] = rng.uniform(0.02, 0.15)   # cold
    return rates


def _simulate(strategy: str, seed: int = 17):
    """Run DAYS of hourly simulation; returns (detected, total_changes)."""
    rng = random.Random(seed)
    rates = _true_rates(rng)
    urls = sorted(rates)
    estimator = ChangeRateEstimator(default_rate_per_day=1.0)
    planner = RefreshPlanner(estimator, daily_budget=DAILY_BUDGET)
    for url in urls:
        planner.add_page(url)

    uniform_interval = SECONDS_PER_DAY * PAGES / DAILY_BUDGET
    intervals = {url: uniform_interval for url in urls}
    next_fetch = {url: 0.0 for url in urls}
    pending_changes = {url: 0 for url in urls}
    detected = 0
    total_changes = 0
    step = SECONDS_PER_DAY / 24.0

    now = 0.0
    for hour in range(DAYS * 24):
        now += step
        for url in urls:
            # Poisson arrivals within the hour.
            expected = rates[url] * step / SECONDS_PER_DAY
            arrivals = _poisson(rng, expected)
            pending_changes[url] += arrivals
            total_changes += arrivals
        for url in urls:
            if now < next_fetch[url]:
                continue
            changed = pending_changes[url] > 0
            if changed:
                detected += 1
                pending_changes[url] = 0
            estimator.record_fetch(url, now, changed)
            next_fetch[url] = now + intervals[url]
        if strategy == "adaptive" and hour % 24 == 23:
            intervals = planner.plan_intervals()
    return detected, total_changes


def _poisson(rng, expected):
    # Knuth's algorithm; expected is small per step.
    import math

    threshold = math.exp(-expected)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


@pytest.mark.parametrize("strategy", ["uniform", "adaptive"])
def test_refresh_strategy(benchmark, strategy):
    detected, total = benchmark.pedantic(
        lambda: _simulate(strategy), rounds=1, iterations=1
    )
    _results[strategy] = (detected, total)


def test_refresh_report_and_shape(benchmark):
    benchmark(lambda: None)
    rows = []
    for strategy in ("uniform", "adaptive"):
        data = _results.get(strategy)
        if data is None:
            continue
        detected, total = data
        rows.append(
            f"{strategy:<9}: detected {detected:5,} of {total:5,} versions"
            f" ({detected / total:6.1%})"
        )
    print_series(
        "Ablation: refresh strategy under a fixed fetch budget",
        f"{PAGES} pages, {DAYS} days, {DAILY_BUDGET:.0f} fetches/day",
        rows,
    )
    if "uniform" in _results and "adaptive" in _results:
        uniform_detected = _results["uniform"][0]
        adaptive_detected = _results["adaptive"][0]
        # The adaptive planner detects meaningfully more versions.
        assert adaptive_detected > uniform_detected * 1.1
