"""Text claims T-thr — system throughput.

Paper claims reproduced here:

* "Measures show that the algorithm can process several thousand sets of
  atomic events per second on a standard PC."
* "one Xyleme crawler is able to fetch about 4 million pages per day, that
  is approximately 50 per second.  Thus the Monitoring Query Processor ...
  can support the load of about 100 crawlers."
* "On a single PC, the subscription system can process over 2.4 million
  notifications per day when connected to the rest of the Xyleme system."

Setup: the paper's target regime — Card(C) = 10^6 subscriptions (quick
mode: 10^5), Card(A) = 10^6, s = 20.  Document event sets are biased so a
realistic fraction of documents produce notifications.
"""

from __future__ import annotations

import time

import pytest

from _bench_utils import (
    get_matcher,
    get_workload,
    print_series,
    scaled_card_c,
)
from repro.webworld import biased_document_sets

CARD_A = 1_000_000
CARD_C = 1_000_000
S = 20
CRAWLER_DOCS_PER_SECOND = 50.0  # the paper's crawler rate

_results: dict = {}


def _params():
    return dict(card_a=CARD_A, card_c=scaled_card_c(CARD_C), c_min=2,
                c_max=4, s=S, seed=31)


def test_matching_throughput(benchmark, bench_doc_count):
    matcher = get_matcher(**_params())
    workload = get_workload(**_params())
    documents = workload.document_event_sets(bench_doc_count)

    def run():
        for event_set in documents:
            matcher.match(event_set)

    benchmark(run)
    start = time.perf_counter()
    for event_set in documents:
        matcher.match(event_set)
    elapsed = time.perf_counter() - start
    _results["docs_per_second"] = len(documents) / elapsed


def test_notification_throughput(benchmark, bench_doc_count):
    matcher = get_matcher(**_params())
    workload = get_workload(**_params())
    documents = biased_document_sets(
        workload, bench_doc_count, hit_fraction=0.3, seed=7
    )

    def run():
        total = 0
        for event_set in documents:
            total += len(matcher.match(event_set))
        return total

    notifications_per_batch = benchmark(run)
    start = time.perf_counter()
    total = 0
    for event_set in documents:
        total += len(matcher.match(event_set))
    elapsed = time.perf_counter() - start
    _results["biased_docs_per_second"] = len(documents) / elapsed
    _results["notifications_per_second"] = total / elapsed
    _results["hit_notifications"] = total


def test_throughput_report_and_claims(benchmark):
    benchmark(lambda: None)
    docs_per_second = _results.get("docs_per_second", 0.0)
    docs_per_day = docs_per_second * 86_400
    crawlers_supported = docs_per_second / CRAWLER_DOCS_PER_SECOND
    notif_per_second = _results.get("notifications_per_second", 0.0)
    notif_per_day = notif_per_second * 86_400
    rows = [
        f"uniform stream : {docs_per_second:10,.0f} docs/s "
        f"({docs_per_day:14,.0f} docs/day)",
        f"biased stream  : {_results.get('biased_docs_per_second', 0):10,.0f}"
        " docs/s",
        f"notifications  : {notif_per_second:10,.0f} notif/s "
        f"({notif_per_day:14,.0f} notif/day)",
        f"crawlers supported at 50 docs/s each: {crawlers_supported:,.0f}",
    ]
    print_series(
        "T-thr: MQP throughput",
        f"Card(A)={CARD_A:,}, Card(C)={scaled_card_c(CARD_C):,}, s={S}",
        rows,
    )
    # Paper: "several thousand sets of atomic events per second".
    assert docs_per_second > 2_000
    # Paper: supports ~100 crawlers; we ask for at least 10 (one order of
    # magnitude of slack for CPython vs 2001 C++ — in practice it exceeds
    # 100 comfortably on modern hardware).
    assert crawlers_supported > 10
    # Paper: > 2.4 million notifications per day end-to-end.
    assert notif_per_day > 2_400_000
