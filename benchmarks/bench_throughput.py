"""Text claims T-thr — system throughput.

Paper claims reproduced here:

* "Measures show that the algorithm can process several thousand sets of
  atomic events per second on a standard PC."
* "one Xyleme crawler is able to fetch about 4 million pages per day, that
  is approximately 50 per second.  Thus the Monitoring Query Processor ...
  can support the load of about 100 crawlers."
* "On a single PC, the subscription system can process over 2.4 million
  notifications per day when connected to the rest of the Xyleme system."

Setup: the paper's target regime — Card(C) = 10^6 subscriptions (quick
mode: 10^5), Card(A) = 10^6, s = 20.  Document event sets are biased so a
realistic fraction of documents produce notifications.
"""

from __future__ import annotations

import time

import pytest

from _bench_utils import (
    dump_metrics_snapshot,
    get_matcher,
    get_workload,
    print_series,
    scaled_card_c,
)
from repro.webworld import biased_document_sets

CARD_A = 1_000_000
CARD_C = 1_000_000
S = 20
CRAWLER_DOCS_PER_SECOND = 50.0  # the paper's crawler rate

_results: dict = {}


def _params():
    return dict(card_a=CARD_A, card_c=scaled_card_c(CARD_C), c_min=2,
                c_max=4, s=S, seed=31)


def test_matching_throughput(benchmark, bench_doc_count):
    matcher = get_matcher(**_params())
    workload = get_workload(**_params())
    documents = workload.document_event_sets(bench_doc_count)

    def run():
        for event_set in documents:
            matcher.match(event_set)

    benchmark(run)
    start = time.perf_counter()
    for event_set in documents:
        matcher.match(event_set)
    elapsed = time.perf_counter() - start
    _results["docs_per_second"] = len(documents) / elapsed


def test_notification_throughput(benchmark, bench_doc_count):
    matcher = get_matcher(**_params())
    workload = get_workload(**_params())
    documents = biased_document_sets(
        workload, bench_doc_count, hit_fraction=0.3, seed=7
    )

    def run():
        total = 0
        for event_set in documents:
            total += len(matcher.match(event_set))
        return total

    notifications_per_batch = benchmark(run)
    start = time.perf_counter()
    total = 0
    for event_set in documents:
        total += len(matcher.match(event_set))
    elapsed = time.perf_counter() - start
    _results["biased_docs_per_second"] = len(documents) / elapsed
    _results["notifications_per_second"] = total / elapsed
    _results["hit_notifications"] = total


def test_throughput_report_and_claims(benchmark):
    benchmark(lambda: None)
    docs_per_second = _results.get("docs_per_second", 0.0)
    docs_per_day = docs_per_second * 86_400
    crawlers_supported = docs_per_second / CRAWLER_DOCS_PER_SECOND
    notif_per_second = _results.get("notifications_per_second", 0.0)
    notif_per_day = notif_per_second * 86_400
    rows = [
        f"uniform stream : {docs_per_second:10,.0f} docs/s "
        f"({docs_per_day:14,.0f} docs/day)",
        f"biased stream  : {_results.get('biased_docs_per_second', 0):10,.0f}"
        " docs/s",
        f"notifications  : {notif_per_second:10,.0f} notif/s "
        f"({notif_per_day:14,.0f} notif/day)",
        f"crawlers supported at 50 docs/s each: {crawlers_supported:,.0f}",
    ]
    print_series(
        "T-thr: MQP throughput",
        f"Card(A)={CARD_A:,}, Card(C)={scaled_card_c(CARD_C):,}, s={S}",
        rows,
    )
    # Paper: "several thousand sets of atomic events per second".
    assert docs_per_second > 2_000
    # Paper: supports ~100 crawlers; we ask for at least 10 (one order of
    # magnitude of slack for CPython vs 2001 C++ — in practice it exceeds
    # 100 comfortably on modern hardware).
    assert crawlers_supported > 10
    # Paper: > 2.4 million notifications per day end-to-end.
    assert notif_per_day > 2_400_000


def test_metrics_snapshot_produced(benchmark, tmp_path):
    """Smoke: a full-system run yields a per-stage metrics snapshot.

    Feeds a 100-document webworld stream through an assembled
    :class:`SubscriptionSystem` and dumps ``metrics_snapshot()`` next to
    the bench output (``METRICS_throughput.json``), so throughput
    trajectories gain per-stage breakdowns.  CI runs exactly this test as
    its bench smoke.
    """
    from repro.clock import SimulatedClock
    from repro.pipeline import SubscriptionSystem
    from repro.webworld import SiteGenerator

    clock = SimulatedClock(990_000_000.0)
    system = SubscriptionSystem(clock=clock, shards=2, shard_mode="flow")
    system.subscribe(
        """
        subscription Thr
        monitoring M
        select <Hit url=URL/>
        where URL extends "http://www.shop"
          and modified self
        report when count >= 50
        """,
        owner_email="bench@example.org",
    )
    generator = SiteGenerator(seed=5)
    urls = [
        f"http://www.shop{i}.example/catalog/products.xml" for i in range(50)
    ]
    pages = {url: generator.catalog(products=4) for url in urls}
    updates = {url: generator.catalog(products=5) for url in urls}

    def run():
        for url in urls:  # first sight: new documents
            system.feed_xml(url, pages[url])
            clock.advance(1.0)
        for url in urls:  # second sight: updated content
            system.feed_xml(url, updates[url])
            clock.advance(1.0)

    benchmark.pedantic(run, rounds=1, iterations=1)
    system.advance_days(1)

    snapshot = system.metrics_snapshot()
    assert snapshot["documents_fed"] == 100
    stages = snapshot["stages"]
    xml = stages["repository.store_xml"]
    html = stages.get("repository.store_html", 0)
    assert xml + html == snapshot["documents_fed"]
    assert stages["alerters.build_alert"] == snapshot["documents_fed"]
    assert stages["mqp.process_alert"] > 0
    assert stages["triggers.tick"] > 0 and stages["reporter.tick"] > 0
    assert sum(snapshot["shard_load"].values()) == stages["mqp.process_alert"]
    path = dump_metrics_snapshot(
        snapshot, "throughput", directory=str(tmp_path)
    )
    import json
    import os

    assert os.path.exists(path)
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle)["documents_fed"] == 100


def test_instrumentation_overhead(benchmark, bench_doc_count):
    """The metrics layer must not tax the hot path.

    Compares ``process_alert`` throughput with the no-op registry versus a
    live wall-clock registry over the same matcher and documents.  The
    acceptance target is <= 5% mean overhead; the assertion uses a wide
    margin (50%) to stay robust against scheduler noise on shared CI boxes
    while still catching pathological regressions, and the measured ratio
    is printed for the trajectory.
    """
    from repro.core.processor import Alert, MonitoringQueryProcessor
    from repro.observability import NULL_REGISTRY, MetricsRegistry

    matcher = get_matcher(**_params())
    workload = get_workload(**_params())
    documents = workload.document_event_sets(bench_doc_count)
    alerts = [
        Alert(f"http://doc{i}/", event_set)
        for i, event_set in enumerate(documents)
    ]

    def build(metrics):
        processor = MonitoringQueryProcessor(metrics=metrics)
        processor.matcher = matcher  # reuse the big prebuilt structure
        return processor

    def feed(processor):
        for alert in alerts:
            processor.process_alert(alert)

    null_processor = build(NULL_REGISTRY)
    live_processor = build(MetricsRegistry())
    # Warm both paths, then take best-of-5 each to filter scheduling noise.
    feed(null_processor)
    feed(live_processor)
    best_null = best_live = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        feed(null_processor)
        best_null = min(best_null, time.perf_counter() - start)
        start = time.perf_counter()
        feed(live_processor)
        best_live = min(best_live, time.perf_counter() - start)
    benchmark(lambda: None)
    overhead = best_live / best_null - 1.0
    print_series(
        "T-obs: instrumentation overhead on process_alert",
        f"docs={len(alerts)}, Card(C)={scaled_card_c(CARD_C):,}",
        [
            f"no-op registry : {best_null * 1e6 / len(alerts):8.1f} us/doc",
            f"live registry  : {best_live * 1e6 / len(alerts):8.1f} us/doc",
            f"overhead       : {overhead * 100:8.2f} %",
        ],
    )
    assert overhead < 0.5
