"""T-xml — XML alerter cost (Section 6.3).

Paper: "With respect to time, we may have to perform one lookup for each
word of the document at each level of the document, which leads in the
worst case to Size × Depth ... For XML documents found on the web, it turns
out that the depth of the document is rather small, so on average, this is
an acceptable cost."

Reproduction: detection time over synthetic documents sweeping (a) size at
fixed depth and (b) depth at fixed size.  Expected shapes: roughly linear
in size; grows with depth; Size × Depth bounds the product.
"""

from __future__ import annotations

import time

import pytest

from _bench_utils import print_series
from repro.alerters import XMLAlerter
from repro.alerters.context import FetchedDocument
from repro.core import AtomicEventKey
from repro.repository import DocumentMeta
from repro.webworld import SiteGenerator

SIZES = (200, 800, 3200)
DEPTHS = (3, 8, 16)
FIXED_DEPTH = 6
FIXED_SIZE = 1000
WATCHED_WORDS = 50

_results: dict = {}


def _alerter():
    alerter = XMLAlerter()
    generator = SiteGenerator(seed=71)
    # Register contains conditions over a spread of (tag, word) pairs so
    # the word tables are realistically populated.
    from repro.webworld.vocabulary import WORDS

    code = 1
    for word in WORDS[:WATCHED_WORDS]:
        for tag in ("section", "item", "entry"):
            alerter.register(
                code, AtomicEventKey("tag_present", (tag, word, False))
            )
            code += 1
        alerter.register(code, AtomicEventKey("self_contains", word))
        code += 1
    return alerter


def _fetched(document):
    return FetchedDocument(
        url="http://x/doc.xml",
        meta=DocumentMeta(doc_id=1, url="http://x/doc.xml"),
        status="unchanged",  # isolate the word-table walk from change events
        document=document,
    )


def _measure(alerter, document, repeats=20):
    fetched = _fetched(document)
    start = time.perf_counter()
    for _ in range(repeats):
        alerter.detect(fetched)
    return (time.perf_counter() - start) / repeats * 1e6


@pytest.mark.parametrize("size", SIZES)
def test_detection_vs_size(benchmark, size):
    alerter = _alerter()
    document = SiteGenerator(seed=72).generic_document(
        size=size, depth=FIXED_DEPTH
    )
    fetched = _fetched(document)
    benchmark(lambda: alerter.detect(fetched))
    _results[("size", size)] = _measure(alerter, document)


@pytest.mark.parametrize("depth", DEPTHS)
def test_detection_vs_depth(benchmark, depth):
    alerter = _alerter()
    document = SiteGenerator(seed=73).generic_document(
        size=FIXED_SIZE, depth=depth
    )
    fetched = _fetched(document)
    benchmark(lambda: alerter.detect(fetched))
    _results[("depth", depth)] = _measure(alerter, document)


def test_xml_alerter_report_and_shape(benchmark):
    benchmark(lambda: None)
    rows = [
        f"size={size:>5} depth={FIXED_DEPTH:>2}: "
        f"{_results.get(('size', size), float('nan')):9.1f} us/doc"
        for size in SIZES
    ]
    rows += [
        f"size={FIXED_SIZE:>5} depth={depth:>2}: "
        f"{_results.get(('depth', depth), float('nan')):9.1f} us/doc"
        for depth in DEPTHS
    ]
    print_series(
        "T-xml: XML alerter detection cost (Size x Depth model)",
        f"{WATCHED_WORDS} watched words over 3 tags + self",
        rows,
    )
    size_series = [_results.get(("size", s)) for s in SIZES]
    if all(v is not None for v in size_series):
        # Roughly linear in size: 16x size within [4x, 64x] time.
        ratio = size_series[-1] / size_series[0]
        assert 4 < ratio < 64, f"size scaling ratio {ratio:.1f}"
    depth_series = [_results.get(("depth", d)) for d in DEPTHS]
    if all(v is not None for v in depth_series):
        # Depth increases cost sublinearly (only interesting words climb).
        assert depth_series[-1] >= depth_series[0] * 0.8
        assert depth_series[-1] < depth_series[0] * 16
