"""Ablation — the weak/strong event split (Section 5.1).

Paper: "it is likely that each document we read will raise one atomic event
involved in at least one subscription, i.e., one in new, unchanged,
updated.  So, if we are not careful we would have to ... send a set of
atomic events to the Monitoring Query Processor for each document.  To
avoid this, we distinguish between weak events ... and strong events."

Reproduction: run a document stream through the alerter chain with the
gating as implemented, and compare against the hypothetical no-gating
behaviour (an alert whenever *any* event, weak included, is raised).
Expected shape: gating suppresses the overwhelming majority of alerts on a
stream where most pages are irrelevant to the subscriptions.
"""

from __future__ import annotations

import pytest

from _bench_utils import print_series
from repro.alerters import AlerterChain
from repro.alerters.context import FetchedDocument
from repro.core import AtomicEventKey
from repro.diff.changes import DOC_UPDATED
from repro.repository import DocumentMeta
from repro.xmlstore import parse

WATCHED_SITES = 20
TOTAL_DOCS = 2_000
#: Fraction of the stream inside the watched prefixes.
RELEVANT_FRACTION = 0.02

_results: dict = {}


def _chain():
    chain = AlerterChain()
    code = 1
    for i in range(WATCHED_SITES):
        chain.register(
            code, AtomicEventKey("url_extends", f"http://watched{i}.example/")
        )
        code += 1
    # One weak event registered by some subscription ("modified self").
    chain.register(code, AtomicEventKey("doc_updated"))
    return chain


def _stream():
    relevant_every = int(1 / RELEVANT_FRACTION)
    document = parse("<page>content</page>")
    for i in range(TOTAL_DOCS):
        if i % relevant_every == 0:
            url = f"http://watched{i % WATCHED_SITES}.example/p{i}.xml"
        else:
            url = f"http://elsewhere{i}.example/p{i}.xml"
        yield FetchedDocument(
            url=url,
            meta=DocumentMeta(doc_id=i, url=url),
            status=DOC_UPDATED,  # every refetched page raises "updated"
            document=document,
        )


def test_alert_rate_with_gating(benchmark):
    chain = _chain()

    def run():
        alerts = 0
        for fetched in _stream():
            if chain.build_alert(fetched) is not None:
                alerts += 1
        return alerts

    alerts = benchmark.pedantic(run, rounds=3, iterations=1)
    _results["gated"] = run()


def test_alert_rate_without_gating(benchmark):
    """Hypothetical: any detected event (weak included) sends an alert."""
    chain = _chain()

    def run():
        alerts = 0
        for fetched in _stream():
            codes = set()
            for alerter in chain.alerters:
                detected, _ = alerter.detect(fetched)
                codes |= detected
            if codes:
                alerts += 1
        return alerts

    benchmark.pedantic(run, rounds=3, iterations=1)
    _results["ungated"] = run()


def test_weak_strong_report_and_shape(benchmark):
    benchmark(lambda: None)
    gated = _results.get("gated", 0)
    ungated = _results.get("ungated", 0)
    rows = [
        f"with weak/strong gating   : {gated:6,} alerts"
        f" ({gated / TOTAL_DOCS:7.2%} of stream)",
        f"without gating            : {ungated:6,} alerts"
        f" ({ungated / TOTAL_DOCS:7.2%} of stream)",
        f"alert-traffic reduction   : "
        f"{(1 - gated / max(ungated, 1)):7.2%}",
    ]
    print_series(
        "Ablation: weak/strong gating (Section 5.1)",
        f"{TOTAL_DOCS:,} fetched pages, {RELEVANT_FRACTION:.0%} inside"
        " watched prefixes, all pages updated",
        rows,
    )
    if ungated:
        # Without gating every updated page alerts; with gating only the
        # watched ones do.
        assert ungated == TOTAL_DOCS
        assert gated <= TOTAL_DOCS * RELEVANT_FRACTION * 1.5
