"""Ablation — does atomic-event code ordering matter? (DESIGN.md §5)

The AES structure stores complex events as *sorted* code tuples; the
Subscription Manager is free to choose which condition gets which code.
Under a skewed (Zipf) popularity distribution, assigning codes by
popularity rank changes which events head the hash-tree chains:

* popular-first (low codes = popular events): popular events concentrate in
  the entry table, sharing prefixes ("thousands of complex events will
  involve the url of Amazon's");
* popular-last (high codes = popular events): chains are headed by rare
  events, so most documents leave the root table immediately.

This benchmark measures both assignments plus a random permutation on the
same Zipf workload.  The structural effect is reported (cells, match time);
the correctness is identical by construction.
"""

from __future__ import annotations

import random

import pytest

from _bench_utils import get_workload, print_series, time_per_document_us
from repro.core import AESMatcher

CARD_A = 50_000
CARD_C = 100_000
S = 30
ZIPF = 1.1

_results: dict = {}


def _workload():
    return get_workload(
        card_a=CARD_A,
        card_c=CARD_C,
        c_min=2,
        c_max=4,
        s=S,
        seed=83,
        zipf_exponent=ZIPF,
    )


def _remap(order_name):
    """code -> code permutation implementing the ordering policy.

    The Zipf draw makes *low* original codes popular, so identity is
    popular-first and reversal is popular-last.
    """
    if order_name == "popular_first":
        return lambda code: code
    if order_name == "popular_last":
        return lambda code: CARD_A - 1 - code
    rng = random.Random(89)
    permutation = list(range(CARD_A))
    rng.shuffle(permutation)
    return lambda code: permutation[code]


_shared_documents: list = []


def _documents():
    """One shared document draw for every ordering policy (the policies
    must be compared on identical streams)."""
    if not _shared_documents:
        _shared_documents.extend(_workload().document_event_sets(300))
    return _shared_documents


def _build(order_name):
    remap = _remap(order_name)
    workload = _workload()
    matcher = AESMatcher()
    for code, atomic_codes in workload.complex_events():
        matcher.add(code, sorted(remap(a) for a in atomic_codes))
    documents = [
        sorted(remap(a) for a in event_set) for event_set in _documents()
    ]
    return matcher, documents


@pytest.mark.parametrize(
    "order_name", ["popular_first", "popular_last", "random"]
)
def test_ordering_policy(benchmark, order_name):
    matcher, documents = _build(order_name)

    def run():
        for event_set in documents:
            matcher.match(event_set)

    benchmark(run)
    _results[order_name] = {
        "us_per_doc": time_per_document_us(matcher, documents),
        "cells": matcher.structure_stats()["cells"],
        "matches": sum(len(matcher.match(d)) for d in documents),
    }


def test_ordering_report(benchmark):
    benchmark(lambda: None)
    rows = [
        f"{name:<14}: {data['us_per_doc']:8.1f} us/doc  "
        f"cells={data['cells']:>9,}  matches={data['matches']}"
        for name, data in sorted(_results.items())
    ]
    print_series(
        "Ablation: atomic-event code ordering under Zipf skew",
        f"Card(A)={CARD_A:,}, Card(C)={CARD_C:,}, s={S}, zipf={ZIPF}",
        rows,
    )
    if len(_results) == 3:
        # All orderings find the same matches (sanity).
        match_counts = {data["matches"] for data in _results.values()}
        assert len(match_counts) == 1
