"""Fixtures for the benchmark suite; helpers live in ``_bench_utils``."""

from __future__ import annotations

import pytest

from _bench_utils import QUICK


@pytest.fixture(scope="session")
def bench_doc_count() -> int:
    """Documents measured per point (larger = steadier numbers)."""
    return 200 if QUICK else 400
