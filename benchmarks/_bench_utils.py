"""Shared helpers for the benchmark suite (imported by each bench module).

Matchers are expensive to build at Card(C) = 10^6, so built workloads are
cached for the whole benchmark session.

Scale control: set ``REPRO_BENCH_SCALE=quick`` to cap Card(C) at 10^5
(useful while iterating); the default is the paper's full scale (10^6).

Observability: benchmarks that assemble a full :class:`SubscriptionSystem`
can dump its ``metrics_snapshot()`` next to the bench output with
:func:`dump_metrics_snapshot`, so BENCH_*.json trajectories gain per-stage
breakdowns.  ``REPRO_BENCH_METRICS_DIR`` overrides the output directory
(default: the current working directory).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

from repro.core import AESMatcher
from repro.webworld import SyntheticWorkload, WorkloadParams

QUICK = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "quick"

#: Cap applied to Card(C) in quick mode.
QUICK_CARD_C_CAP = 100_000


def scaled_card_c(card_c: int) -> int:
    return min(card_c, QUICK_CARD_C_CAP) if QUICK else card_c


_matcher_cache: Dict[Tuple, object] = {}
_workload_cache: Dict[Tuple, SyntheticWorkload] = {}


def get_workload(**kwargs) -> SyntheticWorkload:
    params = WorkloadParams(**kwargs)
    key = ("workload", params)
    if key not in _workload_cache:
        _workload_cache[key] = SyntheticWorkload(params)
    return _workload_cache[key]


def get_matcher(matcher_factory=AESMatcher, **kwargs):
    params = WorkloadParams(**kwargs)
    key = ("matcher", matcher_factory.__name__, params)
    if key not in _matcher_cache:
        workload = get_workload(**kwargs)
        _matcher_cache[key] = workload.build(matcher_factory)
    return _matcher_cache[key]


def drop_matcher(matcher_factory, **kwargs) -> None:
    """Evict a cached matcher (memory benchmarks build their own)."""
    params = WorkloadParams(**kwargs)
    _matcher_cache.pop(("matcher", matcher_factory.__name__, params), None)


def time_per_document_us(
    matcher, document_sets: List[List[int]], repeats: int = 3
) -> float:
    """Average matching time per document in microseconds (best of N runs,
    which filters out scheduling noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for event_set in document_sets:
            matcher.match(event_set)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best / len(document_sets) * 1e6


def metrics_output_path(name: str, directory: Optional[str] = None) -> str:
    """Where :func:`dump_metrics_snapshot` writes ``METRICS_<name>.json``."""
    if directory is None:
        directory = os.environ.get("REPRO_BENCH_METRICS_DIR", ".")
    return os.path.join(directory, f"METRICS_{name}.json")


def dump_metrics_snapshot(
    snapshot: Dict, name: str, directory: Optional[str] = None
) -> str:
    """Write one pipeline metrics snapshot next to the bench output.

    ``snapshot`` is ``system.metrics_snapshot()``; the file lands at
    :func:`metrics_output_path` so BENCH_*.json series gain a per-stage
    breakdown with the same naming convention.  Returns the path written.
    """
    path = metrics_output_path(name, directory)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def bench_output_path(name: str, directory: Optional[str] = None) -> str:
    """Where :func:`dump_bench_json` writes ``BENCH_<name>.json``."""
    if directory is None:
        directory = os.environ.get("REPRO_BENCH_METRICS_DIR", ".")
    return os.path.join(directory, f"BENCH_{name}.json")


def dump_bench_json(
    payload: Dict, name: str, directory: Optional[str] = None
) -> str:
    """Write one benchmark's machine-readable results as
    ``BENCH_<name>.json`` (same directory convention as
    :func:`dump_metrics_snapshot`), so the perf trajectory across PRs can
    be diffed.  Returns the path written.
    """
    path = bench_output_path(name, directory)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def print_series(title: str, header: str, rows: List[str]) -> None:
    """Paper-style series printout (shown with ``pytest -s``)."""
    print()
    print(f"== {title} ==")
    print(header)
    for row in rows:
        print(row)
