"""End-to-end system throughput: crawler -> loader -> alerters -> MQP ->
reporter, the full Figure 3 architecture.

No single paper number corresponds to this path alone (the paper quotes the
crawler at ~4M pages/day and the MQP at thousands of event sets/second);
this bench establishes the reproduction's full-pipeline rate, which
EXPERIMENTS.md reports alongside the component numbers.  The full pipeline
includes XML parsing, diffing and indexing per fetch, so it is orders of
magnitude slower per document than bare MQP matching — that is expected
and matches the paper's architecture, where loaders and indexers are the
scaled-out components.
"""

from __future__ import annotations

import time

import pytest

from _bench_utils import print_series
from repro.clock import SimulatedClock
from repro.pipeline import SubscriptionSystem
from repro.webworld import ChangeModel, SimulatedCrawler, SiteGenerator

SITES = 40
DAYS = 5

_results: dict = {}


def _build_world():
    clock = SimulatedClock(1_000_000.0)
    system = SubscriptionSystem(clock=clock)
    generator = SiteGenerator(seed=97)
    crawler = SimulatedCrawler(
        clock=clock, change_model=ChangeModel(seed=98), seed=99
    )
    for i in range(SITES):
        crawler.add_xml_page(
            f"http://www.shop{i}.example/catalog/products.xml",
            generator.catalog(products=8),
            change_probability=0.7,
        )
    system.subscribe(
        """
        subscription Cameras
        monitoring NewCam
        select X
        from self//Product X
        where URL extends "http://www.shop"
          and new Product contains "camera"
        report when count >= 5
        """,
        owner_email="user@example.org",
    )
    system.subscribe(
        """
        subscription AnyUpdate
        monitoring Upd
        select <UpdatedPage url=URL/>
        where URL extends "http://www.shop"
          and modified self
        report when count >= 50
        """,
        owner_email="ops@example.org",
    )
    return clock, system, crawler


def test_full_pipeline_throughput(benchmark):
    def run_world():
        clock, system, crawler = _build_world()
        fetches = 0
        for _ in range(DAYS):
            for fetch in crawler.due_fetches():
                system.feed(fetch)
                fetches += 1
            clock.advance(86_400)
            system.trigger_engine.tick()
            system.reporter.tick()
        return system, fetches

    benchmark.pedantic(run_world, rounds=2, iterations=1)
    start = time.perf_counter()
    system, fetches = run_world()
    elapsed = time.perf_counter() - start
    _results["fetches"] = fetches
    _results["wall_docs_per_second"] = fetches / elapsed
    _results["notifications"] = system.processor.stats.notifications_sent
    _results["reports"] = system.reporter.stats.reports_generated
    _results["emails"] = system.email_sink.total_sent


def test_end_to_end_report(benchmark):
    benchmark(lambda: None)
    docs_per_second = _results.get("wall_docs_per_second", 0)
    rows = [
        f"documents through full stack : {_results.get('fetches', 0):,}",
        f"wall-clock rate              : {docs_per_second:,.0f} docs/s"
        f" ({docs_per_second * 86_400:,.0f} docs/day)",
        f"notifications produced       : {_results.get('notifications', 0):,}",
        f"reports generated            : {_results.get('reports', 0):,}",
        f"emails sent                  : {_results.get('emails', 0):,}",
    ]
    print_series(
        "End-to-end: full subscription system",
        f"{SITES} evolving catalog sites over {DAYS} simulated days",
        rows,
    )
    assert _results.get("fetches", 0) >= SITES * DAYS
    assert _results.get("notifications", 0) > 0
    assert _results.get("reports", 0) > 0
