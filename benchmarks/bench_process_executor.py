"""T-proc — process-pool executor throughput (executor/ingest redesign).

The process executor fans the pure parse/detect sweeps over worker
*processes* — true parallelism, no GIL — which is the reproduction's
stand-in for Xyleme running Figure 3 stages as independent OS processes.
This bench compares ``process:workers=4`` against ``serial`` on the same
evolving-catalog stream at batch {16, 64}, checks the equivalence
contract on the way (identical serialized notification output, queue
depth bounded), and records the ratio.

Interpreting the ratio is core-count-dependent: process pools cannot beat
serial on a single-core host (the workers time-slice one CPU and pay
pickling on top).  On >= 2 cores the acceptance bar is the issue's
**>= 1.5x serial at batch 64 with 4 workers**; on a single core the bar
is "no catastrophic regression" (>= 0.5x serial) and the honest ratio is
recorded either way — ``BENCH_process_executor.json`` carries a ``cores``
field so trajectories from different hosts are not compared blindly.

Results land in ``BENCH_process_executor.json`` (see ``_bench_utils``).
"""

from __future__ import annotations

import os
import time

import pytest

from _bench_utils import QUICK, dump_bench_json, print_series
from repro.clock import SimulatedClock
from repro.pipeline import Fetch, SubscriptionSystem

WORKERS = 4
BATCH_SIZES = (16, 64)
DOCS = 192 if QUICK else 576
SITES = 24
PRODUCTS = 40  # heavier XML per page than T-batch: parse must dominate
REPEATS = 3
CORES = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
    os.cpu_count() or 1
)

SOURCE = """
subscription Bench
monitoring M
select <Hit url=URL/>
from self//Product X
where URL extends "http://www.shop"
  and new Product contains "camera"
report when count >= 5
"""

_results: dict = {}


def make_stream():
    fetches = []
    for index in range(DOCS):
        site = index % SITES
        round_no = index // SITES
        word = "camera" if (site + round_no) % 2 == 0 else "tripod"
        products = "".join(
            f"<Product sku='{site}-{round_no}-{i}'>{word} model"
            f" {round_no}-{i} <spec>f/2.8 zoom {i}mm</spec></Product>"
            for i in range(PRODUCTS)
        )
        fetches.append(
            Fetch(
                f"http://www.shop{site}.example/catalog.xml",
                f"<catalog>{products}</catalog>",
            )
        )
    return fetches


def build_system(executor: str) -> SubscriptionSystem:
    system = SubscriptionSystem(
        clock=SimulatedClock(1_000_000.0), executor=executor
    )
    system.subscribe(SOURCE, owner_email="bench@example.org")
    return system


def notification_trace(results) -> list:
    return sorted(
        (n.complex_code, n.document_url, n.timestamp)
        for result in results
        for n in result.notifications
    )


def measure(executor: str, batch_size: int, stream) -> float:
    """Best-of-N wall-clock docs/sec for one (executor, batch) point."""
    best = float("inf")
    for _ in range(REPEATS):
        system = build_system(executor)
        start = time.perf_counter()
        system.run_stream(iter(stream), batch_size=batch_size)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        system.executor.close()
    return DOCS / best


def test_process_output_matches_serial(benchmark):
    """Equivalence on the bench stream itself: byte-identical output."""
    stream = make_stream()
    serial = build_system("serial")
    expected = notification_trace(serial.run_stream(iter(stream)))

    def run():
        system = build_system(f"process:workers={WORKERS}")
        trace = notification_trace(system.run_stream(iter(stream)))
        system.executor.close()
        return system, trace

    system, trace = benchmark.pedantic(run, rounds=1, iterations=1)
    assert trace == expected
    assert system.documents_fed == serial.documents_fed
    # The stream ran through the bounded queue: depth never exceeded the
    # bound and is back to zero once drained.
    assert system.metrics_snapshot()["gauges"]["executor.queue_depth"] == 0


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("executor", ("serial", f"process:workers={WORKERS}"))
def test_executor_throughput(benchmark, executor, batch_size):
    stream = make_stream()

    def run():
        system = build_system(executor)
        system.run_stream(iter(stream), batch_size=batch_size)
        system.executor.close()
        return system

    system = benchmark.pedantic(run, rounds=1, iterations=1)
    assert system.documents_fed == DOCS
    name = "process" if executor.startswith("process") else "serial"
    _results[(name, batch_size)] = measure(executor, batch_size, stream)


def test_process_executor_report(benchmark):
    benchmark(lambda: None)
    missing = [
        (name, batch)
        for name in ("serial", "process")
        for batch in BATCH_SIZES
        if (name, batch) not in _results
    ]
    if missing:
        pytest.skip(f"points not measured in this run: {missing}")
    rows = []
    for name in ("serial", "process"):
        rows.append(
            f"{name:>8}  " + "  ".join(
                f"b={batch:<3} {_results[(name, batch)]:9,.0f} docs/s"
                for batch in BATCH_SIZES
            )
        )
    speedups = {
        batch: _results[("process", batch)] / _results[("serial", batch)]
        for batch in BATCH_SIZES
    }
    rows.append(
        f"process vs serial : "
        + "  ".join(f"b={b}: {s:.2f}x" for b, s in speedups.items())
        + f"  ({CORES} core(s), {WORKERS} workers)"
    )
    print_series(
        "T-proc: process-pool executor vs serial (full pipeline)",
        f"{DOCS} documents, {SITES} sites, {PRODUCTS} products/page,"
        f" best of {REPEATS}",
        rows,
    )
    path = dump_bench_json(
        {
            "params": {
                "docs": DOCS,
                "sites": SITES,
                "products_per_page": PRODUCTS,
                "workers": WORKERS,
                "repeats": REPEATS,
                "batch_sizes": list(BATCH_SIZES),
            },
            "cores": CORES,
            "docs_per_second": {
                name: {
                    str(batch): _results[(name, batch)]
                    for batch in BATCH_SIZES
                }
                for name in ("serial", "process")
            },
            "speedup_vs_serial": {
                str(batch): speedups[batch] for batch in BATCH_SIZES
            },
        },
        "process_executor",
    )
    print(f"results dumped to {path}")
    if CORES >= 2:
        # The issue's acceptance bar, reachable only with real parallelism.
        assert speedups[64] >= 1.5, (
            f"process pool {speedups[64]:.2f}x serial at batch 64"
            f" on {CORES} cores (bar: 1.5x)"
        )
    else:
        # Single-core host: workers time-slice one CPU; just require the
        # pool overhead not to be catastrophic.
        assert speedups[64] >= 0.5, (
            f"process pool {speedups[64]:.2f}x serial at batch 64 on a"
            f" single core (bar: 0.5x)"
        )
