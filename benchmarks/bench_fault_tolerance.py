"""T-fault — cost of the fault-tolerance layer (PR 3).

Two questions, one crawl-driven end-to-end stream each:

* **Zero-fault overhead** — the resilience machinery (fault injector at
  rate 0, retry policy, circuit breakers, dead-letter queue, metrics)
  must be near-free when nothing fails: the bar is >= 0.95x the plain
  PR 2 crawler on the same stream.
* **Recovery throughput** — with 10% / 20% of fetch attempts failing
  transiently, every document must still arrive (empty dead-letter
  queue) and wall-clock throughput records what absorbing the faults
  costs (retries add scheduling work, never re-parsing: content evolves
  once per nominal attempt).

Results land in ``BENCH_fault_tolerance.json`` (see ``_bench_utils``).
"""

from __future__ import annotations

import statistics
import time

import pytest

from _bench_utils import QUICK, dump_bench_json, print_series
from repro.clock import SimulatedClock
from repro.faults import (
    CircuitBreaker,
    DeadLetterQueue,
    FaultInjector,
    FaultPlan,
)
from repro.pipeline import SubscriptionSystem
from repro.webworld import ChangeModel, SimulatedCrawler, SiteGenerator

SITES = 8 if QUICK else 16
DAYS = 4 if QUICK else 8
FAULT_RATES = (0.1, 0.2)
SEED = 7

SOURCE = """
subscription Bench
monitoring M
select <Hit url=URL/>
from self//Product X
where URL extends "http://www.shop"
  and new Product contains "camera"
report when count >= 5
"""

_results: dict = {}


def build_world(resilient: bool, fault_rate: float = 0.0):
    clock = SimulatedClock(990_000_000.0)
    system = SubscriptionSystem(clock=clock)
    kwargs = {}
    if resilient:
        dead_letters = DeadLetterQueue(metrics=system.metrics)
        system.dead_letters = dead_letters
        kwargs = dict(
            fault_injector=FaultInjector(
                FaultPlan.transient_only(fault_rate, seed=SEED),
                metrics=system.metrics,
            ),
            dead_letters=dead_letters,
            metrics=system.metrics,
            breaker_factory=lambda: CircuitBreaker(failure_threshold=50),
        )
    generator = SiteGenerator(seed=SEED)
    crawler = SimulatedCrawler(
        clock=clock,
        change_model=ChangeModel(seed=SEED + 1),
        seed=SEED + 2,
        **kwargs,
    )
    for i in range(SITES):
        crawler.add_xml_page(
            f"http://www.shop{i}.example/catalog.xml",
            generator.catalog(products=6),
            change_probability=0.7,
        )
    system.subscribe(SOURCE, owner_email="bench@example.org")
    return system, crawler


def run_world(system, crawler):
    """Hourly drain (so backoff retries land) plus a half-day tail."""
    for _ in range(DAYS * 24 + 12):
        system.run_stream(crawler.due_fetches())
        system.advance_time(3600)


def paired_overhead(pairs: int = 9) -> float:
    """Resilient-vs-plain throughput ratio at zero faults.

    Runs the two configurations back to back inside each pair and takes
    the median per-pair ratio, which cancels container load drift that a
    best-of comparison across separately-timed tests cannot.
    """
    ratios = []
    for _ in range(pairs):
        times = {}
        for label, resilient in (("plain", False), ("resilient", True)):
            system, crawler = build_world(resilient)
            start = time.perf_counter()
            run_world(system, crawler)
            times[label] = time.perf_counter() - start
        ratios.append(times["plain"] / times["resilient"])
    return statistics.median(ratios)


@pytest.mark.parametrize(
    "label,resilient,fault_rate",
    [
        ("plain", False, 0.0),
        ("resilient_0", True, 0.0),
        ("resilient_10", True, 0.1),
        ("resilient_20", True, 0.2),
    ],
)
def test_fault_tolerance_throughput(benchmark, label, resilient, fault_rate):
    def run():
        system, crawler = build_world(resilient, fault_rate)
        run_world(system, crawler)
        return system, crawler

    system, crawler = benchmark(run)
    assert system.documents_fed > 0
    if resilient:
        # Transient-only faults under a fixed seed must all be absorbed.
        assert len(system.dead_letters) == 0
        assert crawler.dead_lettered == 0
        if fault_rate > 0:
            assert crawler.faults_seen > 0
    # Best round across all of pytest-benchmark's repetitions — far less
    # noisy than any single hand-timed pass.
    _results[label] = {
        "docs_per_second": system.documents_fed / benchmark.stats.stats.min,
        "documents_fed": system.documents_fed,
        "faults_seen": crawler.faults_seen,
        "retries_scheduled": crawler.retries_scheduled,
    }


def test_fault_tolerance_report(benchmark):
    benchmark(lambda: None)
    needed = ("plain", "resilient_0", "resilient_10", "resilient_20")
    missing = [label for label in needed if label not in _results]
    if missing:
        pytest.skip(f"points not measured in this run: {missing}")
    plain = _results["plain"]["docs_per_second"]
    overhead = paired_overhead()
    rows = [
        f"{label:>13}  {entry['docs_per_second']:9,.0f} docs/s"
        f"  fed={entry['documents_fed']:<4}"
        f" faults={entry['faults_seen']:<4}"
        f" retries={entry['retries_scheduled']}"
        for label, entry in _results.items()
    ]
    rows.append(f"zero-fault throughput ratio (paired median): {overhead:.3f}x plain")
    print_series(
        "T-fault: fault-tolerance layer cost (end-to-end crawl)",
        f"{SITES} sites, {DAYS} days drained hourly, best round",
        rows,
    )
    path = dump_bench_json(
        {
            "params": {
                "sites": SITES,
                "days": DAYS,
                "fault_rates": list(FAULT_RATES),
                "seed": SEED,
            },
            "series": _results,
            "zero_fault_throughput_ratio": overhead,
        },
        "fault_tolerance",
    )
    print(f"results dumped to {path}")
    # Acceptance: the machinery costs < 5% when nothing fails.
    assert overhead >= 0.95
    # ...and a faulty crawl still delivers its documents at a sane rate.
    assert _results["resilient_20"]["docs_per_second"] >= 0.5 * plain
    assert _results["resilient_20"]["faults_seen"] > 0
