"""T-base — AES against the alternative algorithms (Section 4.1).

The paper: "before selecting this particular algorithm, we considered
alternatives ... A critical factor is the number of complex events
interested in a specific atomic condition [k].  An interesting candidate
algorithm we considered turned out to be exponential in that factor."  The
full automaton is dismissed as having a prohibitive number of states.

Reproduction: AES vs (a) the naive per-subscription scan — O(Card(C)·c̄)
per document — and (b) the counting/inverted-index strategy — O(s·k) per
document.  Expected shapes:

* naive degrades linearly with Card(C): AES wins by orders of magnitude at
  Card(C) ≥ 10^5;
* counting degrades linearly with k while AES grows ~log k, so the gap
  widens as Card(C)/Card(A) grows.
"""

from __future__ import annotations

import pytest

from _bench_utils import (
    get_matcher,
    get_workload,
    print_series,
    time_per_document_us,
)
from repro.core import AESMatcher, CountingMatcher, NaiveMatcher

CARD_A = 100_000
S = 20
CARD_C_VALUES = (1_000, 10_000, 100_000)
ENGINES = {
    "aes": AESMatcher,
    "counting": CountingMatcher,
    "naive": NaiveMatcher,
}

_results: dict = {}


def _params(card_c):
    return dict(card_a=CARD_A, card_c=card_c, c_min=2, c_max=4, s=S, seed=47)


@pytest.mark.parametrize("card_c", CARD_C_VALUES)
@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_engine_time_per_doc(benchmark, engine, card_c):
    matcher = get_matcher(ENGINES[engine], **_params(card_c))
    workload = get_workload(**_params(card_c))
    # The naive engine is slow; keep the per-point document count small.
    documents = workload.document_event_sets(30 if engine == "naive" else 200)

    def run():
        for event_set in documents:
            matcher.match(event_set)

    benchmark(run)
    _results[(engine, card_c)] = time_per_document_us(matcher, documents)


def test_baselines_report_and_shape(benchmark):
    benchmark(lambda: None)
    rows = []
    for card_c in CARD_C_VALUES:
        row = f"Card(C)={card_c:>9,}  "
        row += "  ".join(
            f"{engine}={_results.get((engine, card_c), float('nan')):10.1f}us"
            for engine in sorted(ENGINES)
        )
        rows.append(row)
    print_series(
        "T-base: time per document by algorithm",
        f"Card(A)={CARD_A:,}, s={S}, c in [2,4]",
        rows,
    )
    if any(
        (engine, card_c) not in _results
        for engine in ENGINES
        for card_c in CARD_C_VALUES
    ):
        return
    largest = CARD_C_VALUES[-1]
    # AES beats the naive scan by orders of magnitude at 10^5 subscriptions.
    assert _results[("naive", largest)] > _results[("aes", largest)] * 50
    # Naive cost grows with Card(C) (roughly linearly).
    assert (
        _results[("naive", largest)]
        > _results[("naive", CARD_C_VALUES[0])] * 10
    )
    # Counting is closer but still loses to AES as k grows
    # (k = 3 * Card(C) / Card(A) = 3 at the largest point).
    assert _results[("counting", largest)] > _results[("aes", largest)]
