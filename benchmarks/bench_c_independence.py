"""Text claim T-c — processing time is independent of c (for A >> s·c).

Paper: "Then, we turned to the dependence on c.  We considered only the
realistic case where A >> s·c.  Our tests showed that the complexity is
independent of c for c ranging from 2 to 10."

Reproduction: Card(A) = 10^6, Card(C) = 10^5, s = 20, c fixed per run at
{2, 4, 6, 8, 10}.  Expected shape: the slowest c is within a small factor
of the fastest.
"""

from __future__ import annotations

import pytest

from _bench_utils import (
    get_matcher,
    get_workload,
    print_series,
    time_per_document_us,
)

CARD_A = 1_000_000
CARD_C = 100_000
S = 20
C_VALUES = (2, 4, 6, 8, 10)

_results: dict = {}


def _params(c):
    return dict(card_a=CARD_A, card_c=CARD_C, c_min=c, c_max=c, s=S, seed=23)


@pytest.mark.parametrize("c", C_VALUES)
def test_c_independence(benchmark, c, bench_doc_count):
    matcher = get_matcher(**_params(c))
    workload = get_workload(**_params(c))
    documents = workload.document_event_sets(bench_doc_count)

    def run():
        for event_set in documents:
            matcher.match(event_set)

    benchmark(run)
    _results[c] = time_per_document_us(matcher, documents)


def test_c_independence_report_and_shape(benchmark):
    benchmark(lambda: None)
    rows = [
        f"c={c:>2}  time/doc={_results[c]:8.2f} us"
        for c in C_VALUES
        if c in _results
    ]
    print_series(
        "T-c: time per document vs c (conjunction size)",
        f"Card(A)={CARD_A:,}, Card(C)={CARD_C:,}, s={S}",
        rows,
    )
    measured = [_results[c] for c in C_VALUES if c in _results]
    if len(measured) < len(C_VALUES):
        return
    spread = max(measured) / min(measured)
    assert spread < 3.0, (
        f"time varies by {spread:.1f}x across c in 2..10; the paper reports"
        " independence of c"
    )
