"""T-rep — Reporter throughput (Section 3).

Paper: "In our implementation, the Reporter supports hundreds of thousands
of emails per day on a single PC.  This limitation is due to the UNIX
send-mail daemon implementation."  And: the subscription system processes
"over 2.4 million notifications per day ... and hundreds of thousands of
emails".

Reproduction: flood the Reporter with notification batches across many
subscriptions with immediate report conditions and project the measured
rates to a day.  The sendmail bottleneck is modelled by the email sink's
``daily_capacity``; we also measure the raw (unthrottled) rate.
"""

from __future__ import annotations

import time

import pytest

from _bench_utils import print_series
from repro.clock import SimulatedClock
from repro.language.ast import (
    CountCondition,
    ImmediateCondition,
    ReportCondition,
)
from repro.reporting import EmailSink, Reporter, ReportRegistration
from repro.xmlstore.nodes import ElementNode

SUBSCRIPTIONS = 200
NOTIFICATIONS = 5_000

_results: dict = {}


def _make_reporter(immediate=True):
    clock = SimulatedClock(0.0)
    sink = EmailSink(clock=clock, daily_capacity=10**9, keep_messages=10)
    reporter = Reporter(clock=clock, email_sink=sink)
    for sub_id in range(1, SUBSCRIPTIONS + 1):
        terms = (
            (ImmediateCondition(),)
            if immediate
            else (CountCondition(threshold=20),)
        )
        reporter.register(
            ReportRegistration(
                subscription_id=sub_id,
                when=ReportCondition(terms=terms),
                recipients=(f"user{sub_id}@example.org",),
            )
        )
    return reporter


def _flood(reporter, count):
    element_count = 0
    for i in range(count):
        sub_id = (i % SUBSCRIPTIONS) + 1
        element = ElementNode("Notification", {"n": str(i)})
        reporter.deliver(sub_id, "Q", [element])
        element_count += 1
    return element_count


def test_immediate_report_throughput(benchmark):
    def run():
        reporter = _make_reporter(immediate=True)
        _flood(reporter, NOTIFICATIONS)
        return reporter

    reporter = benchmark.pedantic(run, rounds=3, iterations=1)
    start = time.perf_counter()
    reporter = _make_reporter(immediate=True)
    _flood(reporter, NOTIFICATIONS)
    elapsed = time.perf_counter() - start
    _results["immediate_notif_per_s"] = NOTIFICATIONS / elapsed
    _results["immediate_emails"] = reporter.email_sink.total_sent
    _results["immediate_emails_per_s"] = (
        reporter.email_sink.total_sent / elapsed
    )


def test_batched_report_throughput(benchmark):
    def run():
        reporter = _make_reporter(immediate=False)
        _flood(reporter, NOTIFICATIONS)
        return reporter

    benchmark.pedantic(run, rounds=3, iterations=1)
    start = time.perf_counter()
    reporter = _make_reporter(immediate=False)
    _flood(reporter, NOTIFICATIONS)
    elapsed = time.perf_counter() - start
    _results["batched_notif_per_s"] = NOTIFICATIONS / elapsed


def test_reporter_report_and_claims(benchmark):
    benchmark(lambda: None)
    immediate_day = _results.get("immediate_notif_per_s", 0) * 86_400
    email_day = _results.get("immediate_emails_per_s", 0) * 86_400
    batched_day = _results.get("batched_notif_per_s", 0) * 86_400
    rows = [
        f"immediate reports : "
        f"{_results.get('immediate_notif_per_s', 0):10,.0f} notif/s "
        f"({immediate_day:15,.0f}/day)",
        f"emails            : "
        f"{_results.get('immediate_emails_per_s', 0):10,.0f} emails/s "
        f"({email_day:15,.0f}/day)",
        f"count-20 batching : "
        f"{_results.get('batched_notif_per_s', 0):10,.0f} notif/s "
        f"({batched_day:15,.0f}/day)",
    ]
    print_series(
        "T-rep: Reporter throughput",
        f"{SUBSCRIPTIONS} subscriptions, {NOTIFICATIONS} notifications",
        rows,
    )
    # Paper: > 2.4M notifications/day through the subscription system.
    assert batched_day > 2_400_000
    # Paper: hundreds of thousands of emails per day.
    assert email_day > 200_000
