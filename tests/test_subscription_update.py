"""In-place subscription updates (Section 4.1: "added, removed and
updated while the system is running")."""

import pytest

from repro.errors import ResourceLimitError, SubscriptionError

OLD = """
subscription Evolving
monitoring M
select <Hit url=URL/>
where URL extends "http://old-site.example/"
report when immediate
"""

NEW = """
subscription Evolving
monitoring M
select <Hit url=URL/>
where URL extends "http://new-site.example/"
report when immediate
"""


class TestUpdate:
    def test_update_switches_matching(self, system, clock):
        sub_id = system.subscribe(OLD, owner_email="u@x")
        assert len(
            system.feed_xml("http://old-site.example/a.xml", "<r/>")
            .notifications
        ) == 1
        system.manager.update_subscription(sub_id, NEW)
        assert (
            system.feed_xml("http://old-site.example/b.xml", "<r/>")
            .notifications
            == []
        )
        assert len(
            system.feed_xml("http://new-site.example/a.xml", "<r/>")
            .notifications
        ) == 1

    def test_update_keeps_id_and_recipients(self, system):
        sub_id = system.subscribe(
            OLD, owner_email="u@x", recipients=("a@x", "b@x")
        )
        system.manager.update_subscription(sub_id, NEW)
        compiled = system.manager.subscription(sub_id)
        assert compiled.subscription_id == sub_id
        assert compiled.recipients == ("a@x", "b@x")

    def test_update_unknown_id_raises(self, system):
        with pytest.raises(SubscriptionError):
            system.manager.update_subscription(99, NEW)

    def test_update_to_conflicting_name_rejected(self, system):
        system.subscribe(OLD, owner_email="u@x")
        other = system.subscribe(
            OLD.replace("Evolving", "Other"), owner_email="u@x"
        )
        with pytest.raises(SubscriptionError):
            system.manager.update_subscription(other, OLD)

    def test_rename_via_update_allowed(self, system):
        sub_id = system.subscribe(OLD, owner_email="u@x")
        system.manager.update_subscription(
            sub_id, NEW.replace("Evolving", "Renamed")
        )
        assert system.manager.subscription_id("Renamed") == sub_id
        assert system.manager.subscription_id("Evolving") is None

    def test_update_subject_to_cost_control(self, system):
        sub_id = system.subscribe(OLD, owner_email="u@x")
        expensive = NEW.replace(
            'URL extends "http://new-site.example/"',
            'self contains "the"',
        )
        with pytest.raises(ResourceLimitError):
            system.manager.update_subscription(sub_id, expensive)

    def test_inhibited_subscription_stays_inhibited(self, system):
        sub_id = system.subscribe(OLD, owner_email="u@x")
        system.manager.inhibit(sub_id)
        system.manager.update_subscription(sub_id, NEW)
        system.feed_xml("http://new-site.example/a.xml", "<r/>")
        assert system.reporter.stats.reports_generated == 0

    def test_update_persisted_for_recovery(self, system):
        sub_id = system.subscribe(OLD, owner_email="u@x")
        system.manager.update_subscription(sub_id, NEW)
        row = system.manager.database.table("subscriptions").get(sub_id)
        assert "new-site" in row["source"]


class TestImportanceFromConditions:
    def test_url_eq_condition_adds_importance(self, system):
        system.feed_xml("http://mentioned.example/p.xml", "<r/>")
        before = system.repository.meta_for_url(
            "http://mentioned.example/p.xml"
        ).importance
        system.subscribe(
            """
            subscription Mention
            monitoring M
            select <Hit url=URL/>
            where URL = "http://mentioned.example/p.xml"
            report when immediate
            """,
            owner_email="u@x",
        )
        after = system.repository.meta_for_url(
            "http://mentioned.example/p.xml"
        ).importance
        assert after > before
