"""Batch feeding: feed_batch / run_stream / the pluggable executors.

The contract under test is the equivalence promise of
``repro.pipeline.executor``: for the same stream every executor produces
the same notifications, the same rejection accounting and the same
counters as feeding the documents one at a time.
"""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.errors import PipelineError, XMLSyntaxError
from repro.pipeline import (
    Fetch,
    SerialExecutor,
    ShardFanoutExecutor,
    SubscriptionSystem,
    ThreadedExecutor,
    chunked,
    make_executor,
)

SOURCE = """
subscription Batch
monitoring M
select <Hit url=URL/>
from self//Product X
where URL extends "http://www.shop"
  and new Product contains "camera"
report when immediate
"""


def build_system(**kwargs) -> SubscriptionSystem:
    system = SubscriptionSystem(clock=SimulatedClock(1_000_000.0), **kwargs)
    system.subscribe(SOURCE, owner_email="u@x")
    return system


def make_stream(rounds: int = 3, sites: int = 6, malformed: bool = False):
    """A deterministic multi-round crawl over a little shop web."""
    fetches = []
    for r in range(rounds):
        for i in range(sites):
            product = "camera" if (r + i) % 2 == 0 else "tripod"
            fetches.append(
                Fetch(
                    f"http://www.shop{i}.example/catalog.xml",
                    f"<catalog><Product>{product} v{r}</Product></catalog>",
                )
            )
        if malformed:
            fetches.append(
                Fetch(f"http://www.shop.example/bad{r}.xml", "<r><boom>")
            )
    return fetches


def notification_keys(results):
    return [
        (n.complex_code, n.document_url, n.timestamp)
        for result in results
        for n in result.notifications
    ]


def comparable_histograms(snapshot):
    """Latency/stage histograms without the executor-labelled series (whose
    labels legitimately differ between executors)."""
    return {
        key: payload
        for key, payload in snapshot["histograms"].items()
        if not key.startswith("executor.")
    }


def assert_equivalent(baseline, other, *, compare_histograms=True):
    base_snap = baseline.metrics_snapshot()
    other_snap = other.metrics_snapshot()
    assert other_snap["counters"] == base_snap["counters"]
    assert other_snap["documents_fed"] == base_snap["documents_fed"]
    assert other_snap["documents_rejected"] == base_snap[
        "documents_rejected"
    ]
    assert other_snap["rejections"] == base_snap["rejections"]
    assert (
        other_snap["notifications_emitted"]
        == base_snap["notifications_emitted"]
    )
    if compare_histograms:
        assert comparable_histograms(other_snap) == comparable_histograms(
            base_snap
        )


class TestChunked:
    def test_even_and_ragged_batches(self):
        fetches = make_stream(rounds=1, sites=5)
        batches = list(chunked(iter(fetches), 2))
        assert [len(b) for b in batches] == [2, 2, 1]
        assert [f.url for b in batches for f in b] == [
            f.url for f in fetches
        ]

    def test_is_lazy(self):
        def endless():
            i = 0
            while True:
                yield Fetch(f"http://x/{i}.xml", "<r/>")
                i += 1

        stream = chunked(endless(), 3)
        assert len(next(stream)) == 3
        assert len(next(stream)) == 3

    def test_rejects_nonpositive_size(self):
        with pytest.raises(PipelineError):
            list(chunked([], 0))


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestMakeExecutor:
    """The deprecated shim still resolves everything it used to.

    (The warning itself is pinned in test_ingest_api.py.)
    """

    def test_names_resolve(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("threaded"), ThreadedExecutor)
        assert isinstance(make_executor("sharded"), ShardFanoutExecutor)

    def test_instance_passes_through(self):
        executor = ThreadedExecutor(max_workers=2)
        assert make_executor(executor) is executor

    def test_unknown_name_raises(self):
        with pytest.raises(PipelineError):
            make_executor("quantum")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "threaded")
        assert isinstance(make_executor(None), ThreadedExecutor)
        monkeypatch.delenv("REPRO_EXECUTOR")
        assert isinstance(make_executor(None), SerialExecutor)

    def test_system_rejects_bad_batch_size(self):
        with pytest.raises(PipelineError):
            SubscriptionSystem(clock=SimulatedClock(0.0), batch_size=0)


class TestSerialBatchEquivalence:
    """feed_batch with the serial executor == sequential feed calls."""

    def test_matches_sequential_feeds(self):
        stream = make_stream()
        sequential = build_system()
        for fetch in stream:
            sequential.feed(fetch)
        batched = build_system(executor="serial")
        results = batched.feed_batch(stream)
        assert len(results) == len(stream)
        assert [r.outcome.status for r in results] == [
            "new" if i < 6 else "updated" for i in range(len(stream))
        ]
        sequential_results = []  # re-run to collect FeedResults for keys
        replay = build_system()
        for fetch in stream:
            sequential_results.append(replay.feed(fetch))
        assert notification_keys(results) == notification_keys(
            sequential_results
        )
        assert_equivalent(sequential, batched)

    def test_reports_match_after_advancing(self):
        stream = make_stream()
        sequential = build_system()
        for fetch in stream:
            sequential.feed(fetch)
        batched = build_system(executor="serial")
        batched.feed_batch(stream)
        sequential.advance_days(1)
        batched.advance_days(1)
        assert (
            batched.email_sink.total_sent == sequential.email_sink.total_sent
        )
        assert [e.body for e in batched.email_sink.sent] == [
            e.body for e in sequential.email_sink.sent
        ]

    def test_batch_metrics_recorded(self):
        system = build_system(executor="serial")
        system.feed_batch(make_stream(rounds=1, sites=4))
        system.feed_batch(make_stream(rounds=1, sites=4))
        snapshot = system.metrics_snapshot()
        sizes = snapshot["histograms"]["executor.batch_size{executor=serial}"]
        assert sizes["count"] == 2
        assert sizes["sum"] == 8.0
        assert snapshot["gauges"]["executor.queue_depth"] == 0.0
        run_batch = snapshot["histograms"][
            "executor.run_batch.latency_seconds{executor=serial}"
        ]
        assert run_batch["count"] == 2
        assert (
            snapshot["stages"]["executor.stage"] > 0
        )  # per-stage batch latency series exists

    def test_single_feed_path_has_no_executor_series(self):
        system = build_system()
        system.feed_xml("http://www.shop0.example/catalog.xml", "<r/>")
        snapshot = system.metrics_snapshot()
        assert not any(
            key.startswith("executor.")
            for section in ("counters", "gauges", "histograms")
            for key in snapshot[section]
        )

    def test_strict_mode_raises_and_halts(self):
        system = build_system(executor="serial")
        with pytest.raises(XMLSyntaxError):
            system.feed_batch(
                [
                    Fetch("http://www.shop0.example/a.xml", "<r/>"),
                    Fetch("http://www.shop0.example/bad.xml", "<r><boom>"),
                    Fetch("http://www.shop0.example/late.xml", "<r/>"),
                ],
                skip_malformed=False,
            )
        assert system.documents_fed == 1
        assert not system.repository.has_url(
            "http://www.shop0.example/late.xml"
        )

    def test_skip_malformed_counts_rejections(self):
        stream = make_stream(malformed=True)
        system = build_system(executor="serial")
        results = system.feed_batch(stream)
        assert len(results) == len(stream) - 3
        assert system.documents_rejected == 3
        snapshot = system.metrics_snapshot()
        assert snapshot["rejections"] == {"XMLSyntaxError": 3}

    def test_run_stream_batches_match_one_big_batch(self):
        stream = make_stream()
        one_batch = build_system(executor="serial")
        one_batch.feed_batch(stream)
        small_batches = build_system(executor="serial")
        small_batches.run_stream(iter(stream), batch_size=4)
        assert_equivalent(one_batch, small_batches)


class TestThreadedExecutorEquivalence:
    def test_matches_serial(self):
        stream = make_stream(malformed=True)
        serial = build_system(executor="serial")
        serial_results = serial.run_stream(iter(stream), batch_size=8)
        threaded = build_system(executor=ThreadedExecutor(max_workers=4))
        threaded_results = threaded.run_stream(iter(stream), batch_size=8)
        assert notification_keys(threaded_results) == notification_keys(
            serial_results
        )
        assert_equivalent(serial, threaded)
        threaded.executor.close()

    def test_strict_mode_matches_serial(self):
        stream = [
            Fetch("http://www.shop0.example/a.xml", "<r/>"),
            Fetch("http://www.shop0.example/bad.xml", "<r><boom>"),
            Fetch("http://www.shop0.example/late.xml", "<r/>"),
        ]
        system = build_system(executor="threaded")
        with pytest.raises(XMLSyntaxError):
            system.feed_batch(stream, skip_malformed=False)
        assert system.documents_fed == 1
        assert not system.repository.has_url(
            "http://www.shop0.example/late.xml"
        )
        system.executor.close()


class TestShardFanoutEquivalence:
    def test_matches_serial_on_sharded_system(self):
        stream = make_stream(rounds=4, sites=8, malformed=True)
        serial = build_system(executor="serial", shards=3)
        serial_results = serial.run_stream(iter(stream), batch_size=16)
        fanout = build_system(executor="sharded", shards=3)
        fanout_results = fanout.run_stream(iter(stream), batch_size=16)
        assert notification_keys(fanout_results) == notification_keys(
            serial_results
        )
        assert_equivalent(serial, fanout)
        assert (
            fanout.metrics_snapshot()["shard_load"]
            == serial.metrics_snapshot()["shard_load"]
        )

    def test_degrades_to_serial_on_single_shard(self):
        stream = make_stream()
        serial = build_system(executor="serial")
        serial.feed_batch(stream)
        fanout = build_system(executor="sharded")
        fanout.feed_batch(stream)
        assert_equivalent(serial, fanout)
