"""Disjunctions of atomic conditions — the paper's future-work extension
("one might also consider ... complex events that would include
disjunctions of atomic conditions", Conclusion)."""

import pytest

from repro.errors import WeakConditionError
from repro.language import parse_subscription, validate_subscription

SOURCE = """
subscription Either
monitoring Hit
select <Hit url=URL/>
where URL extends "http://site-a.example/" and modified self
   or URL extends "http://site-b.example/"
report when immediate
"""


class TestParsing:
    def test_disjuncts_split(self):
        subscription = parse_subscription(SOURCE)
        query = subscription.monitoring[0]
        assert len(query.conditions) == 2       # first conjunction
        assert len(query.extra_disjuncts) == 1
        assert len(query.extra_disjuncts[0]) == 1
        assert len(query.all_disjuncts()) == 2

    def test_single_conjunction_has_no_extras(self):
        subscription = parse_subscription(
            "subscription S\nmonitoring\nselect X\nfrom self//a X\n"
            'where URL = "http://u/"\nreport when immediate'
        )
        assert subscription.monitoring[0].extra_disjuncts == ()

    def test_each_disjunct_must_have_a_strong_condition(self):
        weak_second = """
        subscription Bad
        monitoring
        select X
        from self//a X
        where URL extends "http://site.example/" or modified self
        report when immediate
        """
        with pytest.raises(WeakConditionError):
            validate_subscription(parse_subscription(weak_second))


class TestEndToEnd:
    def test_either_site_triggers(self, system):
        system.subscribe(SOURCE, owner_email="u@x")
        a = system.feed_xml("http://site-a.example/page.xml", "<r/>")
        b = system.feed_xml("http://site-b.example/page.xml", "<r/>")
        # site-a requires "modified self" too: a brand-new page does not
        # satisfy the first disjunct; site-b matches outright.
        assert a.notifications == []
        assert len(b.notifications) == 1

        # Refetch site-a with a change: now the first disjunct holds.
        system.clock.advance(60)
        changed = system.feed_xml(
            "http://site-a.example/page.xml", "<r><x/></r>"
        )
        assert len(changed.notifications) == 1

    def test_document_matching_both_disjuncts_notifies_once(self, system):
        both = """
        subscription Both
        monitoring Hit
        select <Hit url=URL/>
        where URL extends "http://dual.example/"
           or filename = "page.xml"
        report when count >= 99
        """
        sub_id = system.subscribe(both, owner_email="u@x")
        result = system.feed_xml("http://dual.example/page.xml", "<r/>")
        # Two complex events matched ...
        assert len(result.notifications) == 2
        # ... but the report buffer received exactly one notification.
        assert system.reporter.pending_count(sub_id) == 1

    def test_unsubscribe_releases_every_disjunct(self, system):
        sub_id = system.subscribe(SOURCE, owner_email="u@x")
        system.unsubscribe(sub_id)
        assert len(system.processor.matcher) == 0
        result = system.feed_xml("http://site-b.example/p.xml", "<r/>")
        assert result.alert is None
