import pytest

from repro.diff import XidSpace, compute_delta
from repro.errors import DiffError
from repro.xmlstore import parse, serialize


def diff(old_source, new_source):
    old = parse(old_source)
    new = parse(new_source)
    space = XidSpace()
    space.assign_fresh(old.root)
    delta = compute_delta(old, new, space)
    return old, new, delta


class TestNoChange:
    def test_identical_documents_empty_delta(self):
        _, _, delta = diff("<r><a>1</a></r>", "<r><a>1</a></r>")
        assert not delta
        assert len(delta) == 0

    def test_xids_propagated_on_identity(self):
        old, new, _ = diff("<r><a>1</a></r>", "<r><a>1</a></r>")
        assert new.root.xid == old.root.xid
        assert new.root.children[0].xid == old.root.children[0].xid


class TestInsertions:
    def test_appended_element(self):
        _, _, delta = diff("<r><a/></r>", "<r><a/><b/></r>")
        assert len(delta.inserts) == 1
        assert not delta.deletes and not delta.text_updates
        assert delta.inserts[0].position == 1

    def test_inserted_in_middle(self):
        _, new, delta = diff("<r><a/><c/></r>", "<r><a/><b/><c/></r>")
        (insert,) = delta.inserts
        assert insert.position == 1
        assert insert.subtree.tag == "b"

    def test_inserted_subtree_gets_fresh_xids(self):
        old, new, delta = diff("<r/>", "<r><a><b/></a></r>")
        (insert,) = delta.inserts
        xids = [n.xid for n in insert.subtree.preorder()]
        assert all(x is not None for x in xids)
        assert min(xids) > old.root.xid

    def test_new_member_example(self):
        # The paper's members.xml example.
        _, _, delta = diff(
            "<members><Member><name>jouglet</name></Member></members>",
            "<members><Member><name>jouglet</name></Member>"
            "<Member><name>preda</name></Member></members>",
        )
        (insert,) = delta.inserts
        assert insert.subtree.tag == "Member"


class TestDeletions:
    def test_removed_element(self):
        _, _, delta = diff("<r><a/><b/></r>", "<r><a/></r>")
        (delete,) = delta.deletes
        assert delete.subtree.tag == "b"
        assert delete.position == 1

    def test_deletions_recorded_right_to_left(self):
        _, _, delta = diff("<r><a/><b/><c/><d/></r>", "<r><b/></r>")
        positions = [d.position for d in delta.deletes]
        assert positions == sorted(positions, reverse=True)


class TestUpdates:
    def test_text_update(self):
        _, _, delta = diff("<r><a>old</a></r>", "<r><a>new</a></r>")
        (update,) = delta.text_updates
        assert update.old_text == "old"
        assert update.new_text == "new"

    def test_text_update_keeps_element_xid(self):
        old, new, _ = diff("<r><a>old</a></r>", "<r><a>new</a></r>")
        assert new.root.children[0].xid == old.root.children[0].xid

    def test_attribute_update(self):
        _, _, delta = diff('<r><a k="1"/></r>', '<r><a k="2"/></r>')
        (update,) = delta.attribute_updates
        assert update.changes == {"k": ("1", "2")}

    def test_attribute_added_and_removed(self):
        _, _, delta = diff('<r a="1"/>', '<r b="2"/>')
        (update,) = delta.attribute_updates
        assert update.changes == {"a": ("1", None), "b": (None, "2")}

    def test_nested_update_inside_matched_parent(self):
        _, _, delta = diff(
            "<catalog><Product><price>10</price></Product></catalog>",
            "<catalog><Product><price>12</price></Product></catalog>",
        )
        assert len(delta.text_updates) == 1
        assert not delta.inserts and not delta.deletes


class TestMixedEdits:
    def test_insert_update_delete_together(self):
        _, _, delta = diff(
            "<r><a>1</a><b>2</b><c>3</c></r>",
            "<r><a>1</a><b>two</b><d>4</d></r>",
        )
        assert len(delta.text_updates) == 1
        assert len(delta.deletes) == 1
        assert len(delta.inserts) == 1

    def test_anchor_matching_survives_shift(self):
        # Identical subtrees should anchor even when positions shift.
        old, new, delta = diff(
            "<r><x><k>stable</k></x><y/></r>",
            "<r><pre/><x><k>stable</k></x><y/></r>",
        )
        assert len(delta.inserts) == 1
        assert delta.inserts[0].subtree.tag == "pre"
        # The stable subtree kept its XIDs.
        old_x = old.root.children[0]
        new_x = new.root.children[1]
        assert new_x.xid == old_x.xid


class TestRootChange:
    def test_root_tag_change_raises(self):
        old = parse("<a/>")
        new = parse("<b/>")
        space = XidSpace()
        space.assign_fresh(old.root)
        with pytest.raises(DiffError):
            compute_delta(old, new, space)


class TestDeltaXML:
    def test_to_xml_shape(self):
        _, _, delta = diff("<r><a/></r>", "<r><a/><b/></r>")
        xml = delta.to_xml()
        assert xml.startswith("<delta>")
        assert "<inserted" in xml and 'position="1"' in xml

    def test_delta_xml_parses_back(self):
        _, _, delta = diff("<r><a>1</a></r>", "<r><a>2</a><b/></r>")
        parsed = parse(delta.to_xml())
        kinds = [child.tag for child in parsed.root.children]
        assert "inserted" in kinds and "updated" in kinds
