import pytest

from repro.errors import SubscriptionSyntaxError
from repro.language.lexer import (
    CMP,
    NUMBER,
    PUNCT,
    STRING,
    TEMPLATE,
    WORD,
    tokenize,
)


def kinds(source):
    return [token.kind for token in tokenize(source)]


def values(source):
    return [token.value for token in tokenize(source)]


class TestWords:
    def test_simple_words(self):
        assert values("subscription MyXyleme") == [
            "subscription", "MyXyleme",
        ]

    def test_word_with_slashes(self):
        # Binding paths like self//Member lex as one word.
        assert values("from self//Member X") == ["from", "self//Member", "X"]

    def test_dotted_names_split(self):
        assert kinds("Sub.Query") == [WORD, PUNCT, WORD]


class TestLiterals:
    def test_double_and_single_quoted_strings(self):
        assert values('"abc" \'def\'') == ["abc", "def"]

    def test_unterminated_string(self):
        with pytest.raises(SubscriptionSyntaxError):
            tokenize('"oops')

    def test_numbers(self):
        assert kinds("100 2.5") == [NUMBER, NUMBER]

    def test_number_then_dot_word(self):
        # "100.count" must not swallow the dot into the number.
        assert kinds("100.count") == [NUMBER, PUNCT, WORD]


class TestComparators:
    def test_all_comparators(self):
        assert kinds("= != < <= > >=") == [CMP] * 6

    def test_two_character_comparators_win(self):
        assert values("<=") == ["<="]


class TestComments:
    def test_percent_comment_to_eol(self):
        assert values("report % a comment here\nwhen") == ["report", "when"]

    def test_comment_at_end_of_input(self):
        assert values("when % trailing") == ["when"]


class TestTemplates:
    def test_self_closing_template(self):
        tokens = tokenize("select <UpdatedPage url=URL/> where")
        assert tokens[1].kind == TEMPLATE
        assert tokens[1].value == "<UpdatedPage url=URL/>"
        assert tokens[2].value == "where"

    def test_nested_template(self):
        tokens = tokenize("select <a><b>x</b></a> where")
        assert tokens[1].value == "<a><b>x</b></a>"

    def test_template_with_quoted_angle_bracket(self):
        tokens = tokenize('select <a note="x > y"/> where')
        assert tokens[1].value == '<a note="x > y"/>'

    def test_template_only_after_select(self):
        # "<" elsewhere is a comparator, not a template opener.
        assert kinds("count < 10") == [WORD, CMP, NUMBER]

    def test_unterminated_template(self):
        with pytest.raises(SubscriptionSyntaxError):
            tokenize("select <a><b>")


class TestPositions:
    def test_line_tracking(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens] == [1, 2, 3]

    def test_source_spans_allow_slicing(self):
        source = "select x from y"
        tokens = tokenize(source)
        assert source[tokens[0].start : tokens[-1].end] == source
