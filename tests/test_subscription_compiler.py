import pytest

from repro.alerters import AlerterChain
from repro.clock import SECONDS_PER_DAY, SimulatedClock
from repro.core import MonitoringQueryProcessor
from repro.language import parse_subscription
from repro.reporting import Reporter
from repro.subscription.compiler import (
    DEFAULT_REPORT,
    SubscriptionCompiler,
)
from repro.language.ast import ImmediateCondition


@pytest.fixture
def parts():
    clock = SimulatedClock(1000.0)
    processor = MonitoringQueryProcessor(clock=clock)
    chain = AlerterChain()
    reporter = Reporter(clock=clock)
    compiler = SubscriptionCompiler(
        processor=processor,
        alerter_chain=chain,
        trigger_engine=None,
        reporter=reporter,
    )
    return processor, chain, reporter, compiler


SOURCE = """
subscription S
monitoring Q
select <Hit url=URL/>
where URL extends "http://watched.example/"
  and modified self
refresh "http://watched.example/index.xml" weekly
report when immediate
"""


class TestCompile:
    def test_complex_event_registered(self, parts):
        processor, _, _, compiler = parts
        compiled = compiler.compile(1, parse_subscription(SOURCE), SOURCE)
        assert len(compiled.complex_codes) == 1
        assert len(processor.matcher) == 1

    def test_binding_created_per_query(self, parts):
        _, _, _, compiler = parts
        compiled = compiler.compile(1, parse_subscription(SOURCE), SOURCE)
        (binding,) = compiled.bindings.values()
        assert binding.query_name == "Q"
        assert binding.subscription_name == "S"

    def test_unnamed_queries_get_sequential_names(self, parts):
        _, _, _, compiler = parts
        source = (
            "subscription S\n"
            "monitoring\nselect X\nfrom self//a X\nwhere URL = \"http://u/\"\n"
            "monitoring\nselect X\nfrom self//b X\nwhere URL = \"http://v/\"\n"
            "report when immediate"
        )
        compiled = compiler.compile(1, parse_subscription(source), source)
        names = sorted(b.query_name for b in compiled.bindings.values())
        assert names == ["Q1", "Q2"]

    def test_report_registered(self, parts):
        _, _, reporter, compiler = parts
        compiler.compile(1, parse_subscription(SOURCE), SOURCE)
        assert reporter.registered(1)

    def test_default_report_when_section_missing(self, parts):
        _, _, reporter, compiler = parts
        source = (
            "subscription S\nmonitoring\nselect X\nfrom self//a X\n"
            'where URL = "http://u/"'
        )
        compiler.compile(2, parse_subscription(source), source)
        assert reporter.registered(2)
        assert isinstance(DEFAULT_REPORT.when.terms[0], ImmediateCondition)

    def test_refresh_hints_collected(self, parts):
        _, _, _, compiler = parts
        compiled = compiler.compile(1, parse_subscription(SOURCE), SOURCE)
        assert compiled.refresh_hints == {
            "http://watched.example/index.xml": 7 * SECONDS_PER_DAY
        }

    def test_refresh_adds_importance_when_repository_present(self, parts):
        from repro.repository import Repository

        processor, chain, reporter, _ = parts
        repository = Repository()
        repository.store_xml("http://watched.example/index.xml", "<r/>")
        compiler = SubscriptionCompiler(
            processor=processor,
            alerter_chain=chain,
            trigger_engine=None,
            reporter=reporter,
            repository=repository,
        )
        compiler.compile(1, parse_subscription(SOURCE), SOURCE)
        meta = repository.meta_for_url("http://watched.example/index.xml")
        assert meta.importance > 1.0


class TestRelease:
    def test_release_empties_matcher_and_reporter(self, parts):
        processor, _, reporter, compiler = parts
        compiled = compiler.compile(1, parse_subscription(SOURCE), SOURCE)
        compiler.release(compiled)
        assert len(processor.matcher) == 0
        assert not reporter.registered(1)
        assert processor.registry.atomic_count() == 0

    def test_release_keeps_shared_alerter_registrations(self, parts):
        processor, chain, _, compiler = parts
        first = compiler.compile(1, parse_subscription(SOURCE), SOURCE)
        second_source = SOURCE.replace("subscription S", "subscription T")
        second = compiler.compile(
            2, parse_subscription(second_source), second_source
        )
        compiler.release(first)
        # The shared URL-prefix event must still be detected for T.
        from repro.alerters.context import FetchedDocument
        from repro.repository import DocumentMeta
        from repro.xmlstore import parse as parse_xml

        fetched = FetchedDocument(
            url="http://watched.example/p.xml",
            meta=DocumentMeta(doc_id=1, url="http://watched.example/p.xml"),
            status="updated",
            document=parse_xml("<r/>"),
        )
        alert = chain.build_alert(fetched)
        assert alert is not None
        assert processor.process_alert(alert)
