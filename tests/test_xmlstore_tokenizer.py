import pytest

from repro.errors import XMLSyntaxError
from repro.xmlstore import tokenizer
from repro.xmlstore.tokenizer import Token, tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


class TestStartEndTags:
    def test_simple_element(self):
        tokens = list(tokenize("<a></a>"))
        assert tokens[0].kind == tokenizer.START_TAG
        assert tokens[0].value == ("a", {}, False)
        assert tokens[1].kind == tokenizer.END_TAG
        assert tokens[1].value == "a"

    def test_self_closing(self):
        (token,) = tokenize("<a/>")
        assert token.value == ("a", {}, True)

    def test_attributes_double_and_single_quotes(self):
        (token,) = tokenize("<a x=\"1\" y='two'/>")
        assert token.value[1] == {"x": "1", "y": "two"}

    def test_attribute_entities_decoded(self):
        (token,) = tokenize('<a x="a&amp;b"/>')
        assert token.value[1]["x"] == "a&b"

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize('<a x="1" x="2"/>'))

    def test_missing_equals_rejected(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize('<a x "1"/>'))

    def test_namespace_colon_in_tag(self):
        (token,) = tokenize("<ns:item/>")
        assert token.value[0] == "ns:item"

    def test_whitespace_inside_end_tag(self):
        tokens = list(tokenize("<a></a >"))
        assert tokens[1].value == "a"


class TestText:
    def test_text_between_tags(self):
        tokens = list(tokenize("<a>hello</a>"))
        assert tokens[1].kind == tokenizer.TEXT
        assert tokens[1].value == "hello"

    def test_predefined_entities(self):
        tokens = list(tokenize("<a>&lt;&gt;&amp;&apos;&quot;</a>"))
        assert tokens[1].value == "<>&'\""

    def test_numeric_entities(self):
        tokens = list(tokenize("<a>&#65;&#x42;</a>"))
        assert tokens[1].value == "AB"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a>&nope;</a>"))

    def test_unterminated_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a>&amp</a>"))


class TestMarkupSkipping:
    def test_comments_skipped(self):
        assert kinds("<a><!-- note --></a>") == ["start", "end"]

    def test_unterminated_comment_rejected(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a><!-- oops"))

    def test_processing_instruction_skipped(self):
        assert kinds('<?xml version="1.0"?><a/>') == ["start"]

    def test_cdata_becomes_text(self):
        tokens = list(tokenize("<a><![CDATA[<raw>&]]></a>"))
        assert tokens[1].kind == tokenizer.TEXT
        assert tokens[1].value == "<raw>&"


class TestDoctype:
    def test_doctype_with_system_url(self):
        tokens = list(tokenize('<!DOCTYPE cat SYSTEM "http://d/x.dtd"><cat/>'))
        assert tokens[0].kind == tokenizer.DOCTYPE
        assert tokens[0].value == ("cat", "http://d/x.dtd")

    def test_doctype_without_system(self):
        tokens = list(tokenize("<!DOCTYPE cat><cat/>"))
        assert tokens[0].value == ("cat", None)

    def test_doctype_public(self):
        tokens = list(
            tokenize('<!DOCTYPE c PUBLIC "pub-id" "http://d/c.dtd"><c/>')
        )
        assert tokens[0].value == ("c", "http://d/c.dtd")

    def test_doctype_internal_subset_skipped(self):
        tokens = list(tokenize("<!DOCTYPE c [ <!ELEMENT c EMPTY> ]><c/>"))
        assert tokens[0].value == ("c", None)


class TestErrorPositions:
    def test_error_carries_line_and_column(self):
        source = "<a>\n  <b x=></b></a>"
        with pytest.raises(XMLSyntaxError) as exc_info:
            list(tokenize(source))
        assert exc_info.value.line == 2

    def test_token_positions_tracked(self):
        tokens = list(tokenize("<a>\n<b/></a>"))
        b_token = tokens[1] if tokens[1].kind == "start" else tokens[2]
        assert isinstance(b_token, Token)
