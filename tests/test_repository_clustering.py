import pytest

from repro.clock import SimulatedClock
from repro.errors import DocumentNotFound, RepositoryError
from repro.repository import ClusteredRepository, SemanticClassifier
from repro.xmlstore import serialize


@pytest.fixture
def clustered(classifier, clock):
    return ClusteredRepository(
        shard_count=3, classifier=classifier, clock=clock
    )


def museum(name):
    return f"<museum><name>{name}</name><painting/></museum>"


def catalog(name):
    return f"<catalog><vendor>{name}</vendor><Product/></catalog>"


class TestPlacement:
    def test_same_domain_lands_on_one_shard(self, clustered):
        for i in range(9):
            clustered.store_xml(f"http://m{i}.example/c.xml", museum(str(i)))
        home = clustered.shard_for_domain("culture")
        assert len(clustered.shards[home]) == 9
        assert clustered.domain_locality() == 1.0

    def test_different_domains_spread(self, clustered):
        for i in range(4):
            clustered.store_xml(f"http://m{i}.example/c.xml", museum(str(i)))
        for i in range(4):
            clustered.store_xml(
                f"http://s{i}.example/cat.xml", catalog(str(i))
            )
        assert clustered.shard_for_domain("culture") != (
            clustered.shard_for_domain("commerce")
        )

    def test_unclassified_documents_hash_spread(self, clustered):
        for i in range(30):
            clustered.store_xml(f"http://u{i}.example/x.xml", "<blob/>")
        sizes = clustered.shard_sizes()
        assert sum(sizes) == 30
        assert max(sizes) < 30

    def test_refetch_stays_on_same_shard(self, clustered, clock):
        clustered.store_xml("http://m.example/c.xml", museum("a"))
        clock.advance(10)
        outcome = clustered.store_xml("http://m.example/c.xml", museum("b"))
        assert outcome.status == "updated"
        assert len(clustered) == 1

    def test_invalid_shard_count(self):
        with pytest.raises(RepositoryError):
            ClusteredRepository(shard_count=0)


class TestReads:
    def test_lookup_by_url(self, clustered):
        clustered.store_xml("http://m.example/c.xml", museum("rijks"))
        assert clustered.has_url("http://m.example/c.xml")
        meta = clustered.meta_for_url("http://m.example/c.xml")
        assert meta.domain == "culture"
        document = clustered.document_for_url("http://m.example/c.xml")
        assert "rijks" in serialize(document)

    def test_domain_documents_served_by_home_shard(self, clustered):
        for i in range(5):
            clustered.store_xml(f"http://m{i}.example/c.xml", museum(str(i)))
        documents = clustered.documents_in_domain("culture")
        assert len(documents) == 5

    def test_unknown_domain_empty(self, clustered):
        assert clustered.documents_in_domain("nothing") == []

    def test_missing_url_raises(self, clustered):
        with pytest.raises(DocumentNotFound):
            clustered.meta_for_url("http://missing/")

    def test_all_meta_spans_shards(self, clustered):
        clustered.store_xml("http://m.example/c.xml", museum("a"))
        clustered.store_html("http://h.example/p.html", "<html/>")
        assert len(list(clustered.all_meta())) == 2


class TestRemoval:
    def test_remove(self, clustered):
        clustered.store_xml("http://m.example/c.xml", museum("a"))
        clustered.remove("http://m.example/c.xml")
        assert not clustered.has_url("http://m.example/c.xml")
        assert len(clustered) == 0

    def test_remove_unknown_raises(self, clustered):
        with pytest.raises(DocumentNotFound):
            clustered.remove("http://missing/")


class TestBalancing:
    def test_new_domains_prefer_least_loaded_shard(self, clock):
        classifier = SemanticClassifier()
        for domain in ("d1", "d2", "d3", "d4"):
            classifier.add_rule(domain, [f"root{domain}"])
        clustered = ClusteredRepository(
            shard_count=2, classifier=classifier, clock=clock
        )
        # Fill d1 heavily on its home shard, then check d2 goes elsewhere.
        for i in range(6):
            clustered.store_xml(
                f"http://a{i}.example/x.xml", "<rootd1><x/></rootd1>"
            )
        clustered.store_xml("http://b.example/x.xml", "<rootd2><x/></rootd2>")
        assert clustered.shard_for_domain("d2") != (
            clustered.shard_for_domain("d1")
        )
