from repro.clock import SECONDS_PER_DAY, SECONDS_PER_WEEK
from repro.language.ast import (
    CountCondition,
    ImmediateCondition,
    PeriodicCondition,
    ReportCondition,
)
from repro.reporting import BufferState, condition_holds, has_periodic_term
from repro.reporting.conditions import shortest_period


def condition(*terms):
    return ReportCondition(terms=tuple(terms))


class TestImmediate:
    def test_fires_on_any_notification(self):
        state = BufferState(now=0.0)
        state.record_arrivals(None, 1, 0.0)
        assert condition_holds(condition(ImmediateCondition()), state, 0.0)

    def test_does_not_fire_on_empty_buffer(self):
        state = BufferState(now=0.0)
        assert not condition_holds(
            condition(ImmediateCondition()), state, 0.0
        )


class TestCounts:
    def test_total_count_threshold(self):
        state = BufferState(now=0.0)
        term = CountCondition(threshold=3)
        state.record_arrivals(None, 2, 0.0)
        assert not condition_holds(condition(term), state, 0.0)
        state.record_arrivals(None, 1, 0.0)
        assert condition_holds(condition(term), state, 0.0)

    def test_named_query_count(self):
        state = BufferState(now=0.0)
        term = CountCondition(threshold=2, query_name="UpdatedPage")
        state.record_arrivals("Other", 5, 0.0)
        assert not condition_holds(condition(term), state, 0.0)
        state.record_arrivals("UpdatedPage", 2, 0.0)
        assert condition_holds(condition(term), state, 0.0)


class TestPeriodic:
    def test_fires_after_period(self):
        state = BufferState(now=0.0)
        term = PeriodicCondition(frequency="daily")
        assert not condition_holds(condition(term), state, 1000.0)
        assert condition_holds(condition(term), state, SECONDS_PER_DAY)

    def test_period_measured_from_last_report(self):
        state = BufferState(now=0.0)
        term = PeriodicCondition(frequency="daily")
        state.reset_after_report(now=SECONDS_PER_DAY)
        assert not condition_holds(
            condition(term), state, SECONDS_PER_DAY + 100
        )
        assert condition_holds(condition(term), state, 2 * SECONDS_PER_DAY)

    def test_biweekly_means_twice_a_week(self):
        term = PeriodicCondition(frequency="biweekly")
        state = BufferState(now=0.0)
        assert condition_holds(condition(term), state, SECONDS_PER_WEEK / 2)


class TestDisjunction:
    def test_any_term_fires(self):
        state = BufferState(now=0.0)
        terms = condition(
            CountCondition(threshold=100), ImmediateCondition()
        )
        state.record_arrivals(None, 1, 0.0)
        assert condition_holds(terms, state, 0.0)

    def test_no_term_fires(self):
        state = BufferState(now=0.0)
        terms = condition(
            CountCondition(threshold=100),
            PeriodicCondition(frequency="weekly"),
        )
        state.record_arrivals(None, 1, 0.0)
        assert not condition_holds(terms, state, 10.0)


class TestBufferState:
    def test_reset_clears_everything(self):
        state = BufferState(now=0.0)
        state.record_arrivals("Q", 5, 10.0)
        state.reset_after_report(now=20.0)
        assert state.total_count == 0
        assert state.counts_by_query == {}
        assert state.last_report_at == 20.0
        assert state.last_arrival_at is None


class TestIntrospection:
    def test_has_periodic_term(self):
        assert has_periodic_term(
            condition(PeriodicCondition(frequency="daily"))
        )
        assert not has_periodic_term(condition(ImmediateCondition()))

    def test_shortest_period(self):
        mixed = condition(
            PeriodicCondition(frequency="weekly"),
            PeriodicCondition(frequency="daily"),
        )
        assert shortest_period(mixed) == SECONDS_PER_DAY
        assert shortest_period(condition(ImmediateCondition())) is None
