"""The assembled system over a distributed MQP (Section 4.2 axes)."""

import pytest

from repro.clock import SimulatedClock
from repro.pipeline import SubscriptionSystem

SOURCE = """
subscription Sharded
monitoring M
select <Hit url=URL/>
where URL extends "http://watched.example/"
  and modified self
report when count >= 100
"""


@pytest.mark.parametrize("shard_mode", ["flow", "subscriptions"])
class TestShardedSystem:
    def build(self, shard_mode):
        return SubscriptionSystem(
            clock=SimulatedClock(1_000_000.0), shards=4,
            shard_mode=shard_mode,
        )

    def test_matches_like_single_processor(self, shard_mode):
        sharded = self.build(shard_mode)
        single = SubscriptionSystem(clock=SimulatedClock(1_000_000.0))
        for system in (sharded, single):
            system.subscribe(SOURCE, owner_email="u@x")
        urls = [f"http://watched.example/p{i}.xml" for i in range(12)]
        urls += [f"http://other.example/p{i}.xml" for i in range(12)]
        for system in (sharded, single):
            for url in urls:
                system.feed_xml(url, "<r/>")
            system.clock.advance(60)
            for url in urls:
                system.feed_xml(url, "<r><x/></r>")
        sharded_stats = sharded.processor.stats()
        assert (
            sharded_stats.notifications_sent
            == single.processor.stats.notifications_sent
            == 12
        )

    def test_subscription_lifecycle(self, shard_mode):
        system = self.build(shard_mode)
        sub_id = system.subscribe(SOURCE, owner_email="u@x")
        system.unsubscribe(sub_id)
        system.feed_xml("http://watched.example/a.xml", "<r/>")
        assert system.processor.stats().notifications_sent == 0

    def test_reports_flow_through(self, shard_mode):
        system = self.build(shard_mode)
        source = SOURCE.replace("count >= 100", "count >= 2")
        sub_id = system.subscribe(source, owner_email="u@x")
        for i in range(3):
            system.feed_xml(f"http://watched.example/p{i}.xml", "<r/>")
            system.clock.advance(30)
            system.feed_xml(f"http://watched.example/p{i}.xml", "<r><y/></r>")
        assert system.reporter.stats.reports_generated >= 1


class TestFlowShardingBalance:
    def test_documents_spread_across_shards(self):
        system = SubscriptionSystem(
            clock=SimulatedClock(1_000_000.0), shards=4, shard_mode="flow"
        )
        system.subscribe(SOURCE, owner_email="u@x")
        for i in range(80):
            system.feed_xml(f"http://watched.example/p{i}.xml", "<r/>")
        loads = [s.stats.alerts_processed for s in system.processor.shards]
        assert sum(loads) == 80
        assert max(loads) < 80  # not all on one shard


class TestSubscriptionShardingMemory:
    def test_structures_split(self):
        system = SubscriptionSystem(
            clock=SimulatedClock(1_000_000.0),
            shards=4,
            shard_mode="subscriptions",
        )
        for i in range(8):
            system.subscribe(
                SOURCE.replace("Sharded", f"Sub{i}").replace(
                    "watched", f"watched{i}"
                ),
                owner_email="u@x",
            )
        sizes = [len(s.matcher) for s in system.processor.shards]
        assert sum(sizes) == 8
        assert max(sizes) == 2
