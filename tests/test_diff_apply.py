import pytest

from repro.diff import XidSpace, apply_delta, compute_delta
from repro.diff.delta import Delta, InsertOp, UpdateTextOp
from repro.errors import DeltaApplyError
from repro.xmlstore import parse, serialize
from repro.xmlstore.nodes import ElementNode


def prepared(old_source, new_source):
    old = parse(old_source)
    new = parse(new_source)
    space = XidSpace()
    space.assign_fresh(old.root)
    delta = compute_delta(old, new, space)
    return old, new, delta


class TestReconstruction:
    @pytest.mark.parametrize(
        "old_source,new_source",
        [
            ("<r><a/></r>", "<r><a/><b/></r>"),
            ("<r><a/><b/></r>", "<r><b/></r>"),
            ("<r><a>x</a></r>", "<r><a>y</a></r>"),
            ('<r k="1"><a/></r>', '<r k="2"><c/><a/></r>'),
            (
                "<m><p><t>a</t></p><p><t>b</t></p></m>",
                "<m><p><t>a2</t></p><q/><p><t>b</t></p></m>",
            ),
        ],
    )
    def test_forward_application(self, old_source, new_source):
        old, new, delta = prepared(old_source, new_source)
        rebuilt = apply_delta(old, delta)
        assert serialize(rebuilt) == serialize(new)

    @pytest.mark.parametrize(
        "old_source,new_source",
        [
            ("<r><a/></r>", "<r><a/><b/></r>"),
            ("<r><a/><b/><c/></r>", "<r><c/></r>"),
            ("<r><a>x</a><b>y</b></r>", "<r><a>x2</a></r>"),
        ],
    )
    def test_inverse_application(self, old_source, new_source):
        old, new, delta = prepared(old_source, new_source)
        restored = apply_delta(new, delta.inverted())
        assert serialize(restored) == serialize(old)

    def test_apply_does_not_mutate_input(self):
        old, _, delta = prepared("<r><a/></r>", "<r><a/><b/></r>")
        before = serialize(old)
        apply_delta(old, delta)
        assert serialize(old) == before

    def test_double_inversion_is_identity(self):
        old, new, delta = prepared("<r><a>1</a></r>", "<r><a>2</a><b/></r>")
        rebuilt = apply_delta(old, delta.inverted().inverted())
        assert serialize(rebuilt) == serialize(new)


class TestValidation:
    def test_unknown_delete_xid(self):
        old, _, _ = prepared("<r><a/></r>", "<r><a/></r>")
        bogus = Delta()
        from repro.diff.delta import DeleteOp

        orphan = ElementNode("zz")
        orphan.xid = 999
        bogus.deletes.append(
            DeleteOp(xid=999, parent_xid=1, position=0, subtree=orphan)
        )
        with pytest.raises(DeltaApplyError):
            apply_delta(old, bogus)

    def test_unknown_insert_parent(self):
        old, _, _ = prepared("<r/>", "<r/>")
        subtree = ElementNode("n")
        subtree.xid = 50
        bogus = Delta(inserts=[InsertOp(parent_xid=777, position=0, subtree=subtree)])
        with pytest.raises(DeltaApplyError):
            apply_delta(old, bogus)

    def test_insert_position_out_of_range(self):
        old, _, _ = prepared("<r/>", "<r/>")
        subtree = ElementNode("n")
        subtree.xid = 50
        bogus = Delta(
            inserts=[
                InsertOp(parent_xid=old.root.xid, position=5, subtree=subtree)
            ]
        )
        with pytest.raises(DeltaApplyError):
            apply_delta(old, bogus)

    def test_text_update_wrong_base(self):
        old, _, _ = prepared("<r><a>x</a></r>", "<r><a>x</a></r>")
        text_xid = old.root.children[0].children[0].xid
        bogus = Delta(
            text_updates=[
                UpdateTextOp(xid=text_xid, old_text="WRONG", new_text="y")
            ]
        )
        with pytest.raises(DeltaApplyError):
            apply_delta(old, bogus)

    def test_duplicate_xid_insert_rejected(self):
        old, _, _ = prepared("<r><a/></r>", "<r><a/></r>")
        clone = ElementNode("dup")
        clone.xid = old.root.children[0].xid
        bogus = Delta(
            inserts=[InsertOp(parent_xid=old.root.xid, position=0, subtree=clone)]
        )
        with pytest.raises(DeltaApplyError):
            apply_delta(old, bogus)


class TestVersionChains:
    def test_three_version_chain(self):
        v1 = parse("<r><a>1</a></r>")
        space = XidSpace()
        space.assign_fresh(v1.root)
        v2 = parse("<r><a>2</a><b/></r>")
        d12 = compute_delta(v1, v2, space)
        v3 = parse("<r><a>2</a><b><c/></b></r>")
        d23 = compute_delta(v2, v3, space)
        rebuilt3 = apply_delta(apply_delta(v1, d12), d23)
        assert serialize(rebuilt3) == serialize(v3)
        restored1 = apply_delta(
            apply_delta(v3, d23.inverted()), d12.inverted()
        )
        assert serialize(restored1) == serialize(v1)
