from repro.diff import (
    XidSpace,
    annotate_changes,
    compute_delta,
    render_text_diff,
)
from repro.diff.annotate import DELETED, INSERTED, STATUS_ATTR
from repro.xmlstore import parse, serialize


def annotated(old_source, new_source):
    old = parse(old_source)
    new = parse(new_source)
    space = XidSpace()
    space.assign_fresh(old.root)
    delta = compute_delta(old, new, space)
    return annotate_changes(old, new, delta), old, new


class TestInsertions:
    def test_inserted_element_marked(self):
        merged, _, _ = annotated(
            "<catalog><a/></catalog>",
            "<catalog><a/><Product>camera</Product></catalog>",
        )
        product = merged.root.first("Product")
        assert product.attributes[STATUS_ATTR] == INSERTED

    def test_descendants_of_insert_not_double_marked(self):
        merged, _, _ = annotated(
            "<r/>", "<r><a><b>x</b></a></r>"
        )
        a = merged.root.first("a")
        b = merged.root.first("b")
        assert a.attributes.get(STATUS_ATTR) == INSERTED
        assert STATUS_ATTR not in b.attributes


class TestDeletions:
    def test_deleted_element_reinserted_as_ghost(self):
        merged, _, _ = annotated(
            "<r><gone>old</gone><kept/></r>", "<r><kept/></r>"
        )
        ghost = merged.root.first("gone")
        assert ghost is not None
        assert ghost.attributes[STATUS_ATTR] == DELETED
        assert ghost.text_content() == "old"

    def test_deleted_at_roughly_original_position(self):
        merged, _, _ = annotated(
            "<r><first/><gone/><last/></r>", "<r><first/><last/></r>"
        )
        tags = [child.tag for child in merged.root.element_children()]
        assert tags == ["first", "gone", "last"]


class TestUpdates:
    def test_text_update_shows_old_and_new(self):
        merged, _, _ = annotated(
            "<r><price>10</price></r>", "<r><price>12</price></r>"
        )
        update = merged.root.first("diff:update")
        assert update.first("diff:old").text_content() == "10"
        assert update.first("diff:new").text_content() == "12"

    def test_attribute_update_recorded(self):
        merged, _, _ = annotated('<r><a k="1"/></r>', '<r><a k="2"/></r>')
        a = merged.root.first("a")
        assert a.attributes["diff:attr-k"] == "1->2"

    def test_untouched_content_unmarked(self):
        merged, _, _ = annotated(
            "<r><same>text</same><p>old</p></r>",
            "<r><same>text</same><p>new</p></r>",
        )
        same = merged.root.first("same")
        assert STATUS_ATTR not in same.attributes
        assert serialize(same) == "<same>text</same>"


class TestRenderTextDiff:
    def test_plus_minus_lines(self):
        merged, _, _ = annotated(
            "<r><gone/><p>old</p></r>",
            "<r><p>new</p><fresh/></r>",
        )
        text = render_text_diff(merged)
        assert "- " in text and "+ " in text
        assert any(
            line.startswith("- ") and "gone" in line
            for line in text.splitlines()
        )
        assert any(
            line.startswith("+ ") and "fresh" in line
            for line in text.splitlines()
        )

    def test_update_renders_both_values(self):
        merged, _, _ = annotated(
            "<r><p>old</p></r>", "<r><p>new</p></r>"
        )
        lines = render_text_diff(merged).splitlines()
        assert any(line.startswith("- ") and "old" in line for line in lines)
        assert any(line.startswith("+ ") and "new" in line for line in lines)

    def test_unchanged_lines_neutral(self):
        merged, _, _ = annotated("<r><same/></r>", "<r><same/></r>")
        lines = render_text_diff(merged).splitlines()
        assert all(line.startswith("  ") for line in lines)


class TestInputsUntouched:
    def test_old_and_new_not_modified(self):
        old_source = "<r><a>1</a></r>"
        new_source = "<r><a>2</a><b/></r>"
        merged, old, new = annotated(old_source, new_source)
        assert serialize(old) == old_source
        assert serialize(new) == new_source
