"""Round-trip tests: parse(unparse(ast)) == ast (modulo raw query text)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.language import parse_subscription, unparse
from repro.language.ast import (
    AtomicCondition,
    ContinuousQuery,
    CountCondition,
    FromBinding,
    ImmediateCondition,
    MonitoringQuery,
    NotificationTrigger,
    PeriodicCondition,
    RefreshStatement,
    ReportCondition,
    ReportSpec,
    SelectSpec,
    Subscription,
    VirtualReference,
)

PAPER_SOURCE = """
subscription MyXyleme
monitoring UpdatedPage
select <UpdatedPage url=URL/>
where URL extends "http://inria.fr/Xy/"
  and updated self
monitoring NewMember
select X
from self//Member X
where URL = "http://inria.fr/Xy/members.xml"
  and new X
continuous delta ReferenceXyleme
select s/url from refs/site s where s contains "xyleme"
when biweekly
refresh "http://inria.fr/Xy/members.xml" weekly
report
when count >= 100 or weekly
atmost 500
archive monthly
"""


class TestRoundTrip:
    def test_paper_subscription_roundtrips(self):
        first = parse_subscription(PAPER_SOURCE)
        second = parse_subscription(unparse(first))
        assert second == first

    def test_unparse_is_stable(self):
        ast = parse_subscription(PAPER_SOURCE)
        once = unparse(ast)
        twice = unparse(parse_subscription(once))
        assert once == twice

    def test_disjunction_roundtrips(self):
        source = (
            "subscription D\nmonitoring\nselect X\nfrom self//a X\n"
            'where URL extends "http://long-a.example/" and modified self\n'
            '   or URL extends "http://long-b.example/"\n'
            "report when immediate"
        )
        ast = parse_subscription(source)
        assert parse_subscription(unparse(ast)) == ast

    def test_notification_trigger_roundtrips(self):
        source = (
            "subscription T\n"
            "monitoring M\nselect <Hit url=URL/>\n"
            'where URL = "http://u/" and modified self\n'
            "continuous CQ\nselect a/b from d/a a\nwhen T.M\n"
            "report when immediate"
        )
        ast = parse_subscription(source)
        assert parse_subscription(unparse(ast)) == ast


# -- property-based roundtrip over generated ASTs -----------------------------

#: Words the parser treats specially anywhere a name/tag may appear.
_RESERVED = {
    "subscription", "monitoring", "continuous", "report", "refresh",
    "virtual", "select", "from", "where", "and", "or", "when", "try",
    "atmost", "archive", "immediate", "count", "notifications", "self",
    "new", "updated", "modified", "unchanged", "deleted", "strict",
    "contains", "extends", "delta", "URL", "DTD", "DTDID", "DOCID",
    "domain", "filename", "LastAccessed", "LastUpdate", "hourly", "daily",
    "biweekly", "weekly", "monthly",
}

names = st.from_regex(r"[A-Z][a-zA-Z0-9]{0,8}", fullmatch=True).filter(
    lambda s: s not in _RESERVED
)
urls = st.from_regex(r"http://[a-z]{3,10}\.example/[a-z]{0,6}", fullmatch=True)
words = st.from_regex(r"[a-z]{2,10}", fullmatch=True)
tags = st.from_regex(r"[A-Za-z][a-zA-Z0-9]{0,8}", fullmatch=True).filter(
    lambda s: s not in _RESERVED
)
frequencies = st.sampled_from(["hourly", "daily", "biweekly", "weekly",
                               "monthly"])


@st.composite
def conditions(draw):
    choice = draw(st.integers(0, 6))
    if choice == 0:
        return AtomicCondition(kind="url_extends", string=draw(urls))
    if choice == 1:
        return AtomicCondition(kind="url_eq", string=draw(urls))
    if choice == 2:
        return AtomicCondition(kind="domain_eq", string=draw(words))
    if choice == 3:
        return AtomicCondition(kind="self_contains", string=draw(words))
    if choice == 4:
        # ``strict`` only qualifies a contains clause, so it requires a
        # word (the parser can never produce strict without one).
        word = draw(st.one_of(st.none(), words))
        return AtomicCondition(
            kind="element",
            target=draw(tags),
            change_kind=draw(
                st.sampled_from([None, "new", "updated", "deleted"])
            ),
            string=word,
            strict=draw(st.booleans()) if word is not None else False,
        )
    if choice == 5:
        return AtomicCondition(
            kind="last_update",
            comparator=draw(st.sampled_from(["<", "<=", ">", ">=", "="])),
            number=float(draw(st.integers(0, 2_000_000_000))),
        )
    return AtomicCondition(kind="dtdid_eq", number=float(draw(st.integers(1, 99))))


@st.composite
def monitoring_queries(draw):
    # Always include one strong condition so validation-compatible.
    conds = [draw(conditions())] + draw(
        st.lists(conditions(), max_size=2)
    )
    template = draw(st.booleans())
    if template:
        select = SelectSpec(template="<Hit url=URL/>")
        bindings = ()
    else:
        variable = draw(tags)
        select = SelectSpec(items=(variable,))
        bindings = (FromBinding(path=f"self//{draw(tags)}", variable=variable),)
    return MonitoringQuery(
        name=draw(st.one_of(st.none(), names)),
        select=select,
        from_bindings=bindings,
        conditions=tuple(conds),
    )


@st.composite
def report_specs(draw):
    term_choices = st.one_of(
        st.just(ImmediateCondition()),
        frequencies.map(lambda f: PeriodicCondition(frequency=f)),
        st.integers(1, 500).map(lambda n: CountCondition(threshold=n)),
    )
    terms = tuple(draw(st.lists(term_choices, min_size=1, max_size=3)))
    return ReportSpec(
        when=ReportCondition(terms=terms),
        atmost_count=draw(st.one_of(st.none(), st.integers(1, 100))),
        atmost_frequency=draw(st.one_of(st.none(), frequencies)),
        archive_frequency=draw(st.one_of(st.none(), frequencies)),
    )


@st.composite
def subscriptions(draw):
    return Subscription(
        name=draw(names),
        monitoring=tuple(draw(st.lists(monitoring_queries(), min_size=1,
                                       max_size=3))),
        continuous=(),
        report=draw(report_specs()),
        refreshes=tuple(
            draw(
                st.lists(
                    st.tuples(urls, frequencies).map(
                        lambda pair: RefreshStatement(
                            url=pair[0], frequency=pair[1]
                        )
                    ),
                    max_size=2,
                )
            )
        ),
        virtuals=tuple(
            draw(
                st.lists(
                    st.tuples(names, st.one_of(st.none(), names)).map(
                        lambda pair: VirtualReference(
                            subscription=pair[0], query=pair[1]
                        )
                    ),
                    max_size=1,
                )
            )
        ),
    )


@settings(max_examples=80, deadline=None)
@given(subscriptions())
def test_generated_subscriptions_roundtrip(subscription):
    source = unparse(subscription)
    reparsed = parse_subscription(source)
    assert reparsed == subscription
