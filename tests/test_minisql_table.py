import pytest

from repro.errors import MiniSQLError, SchemaError
from repro.minisql import Column, Eq, Gt, INTEGER, Like, TEXT, Table, schema


def make_table():
    return Table(
        schema(
            "users",
            Column("id", INTEGER, primary_key=True),
            Column("name", TEXT, nullable=False),
            Column("age", INTEGER),
        )
    )


@pytest.fixture
def users():
    table = make_table()
    table.insert({"id": 1, "name": "nguyen", "age": 30})
    table.insert({"id": 2, "name": "abiteboul", "age": 45})
    table.insert({"id": 3, "name": "cobena", "age": 28})
    return table


class TestInsert:
    def test_insert_returns_completed_row(self):
        table = make_table()
        row = table.insert({"id": 1, "name": "x"})
        assert row == {"id": 1, "name": "x", "age": None}

    def test_duplicate_primary_key_rejected(self, users):
        with pytest.raises(MiniSQLError):
            users.insert({"id": 1, "name": "dup"})

    def test_schema_violation_rejected(self, users):
        with pytest.raises(SchemaError):
            users.insert({"id": 9, "name": None})

    def test_len(self, users):
        assert len(users) == 3


class TestSelect:
    def test_select_all(self, users):
        assert len(users.select()) == 3

    def test_select_where(self, users):
        rows = users.select(Gt("age", 29))
        assert {row["name"] for row in rows} == {"nguyen", "abiteboul"}

    def test_select_projection(self, users):
        rows = users.select(Eq("id", 1), columns=["name"])
        assert rows == [{"name": "nguyen"}]

    def test_select_order_by_and_limit(self, users):
        rows = users.select(order_by="age", limit=2)
        assert [row["name"] for row in rows] == ["cobena", "nguyen"]

    def test_select_unknown_projection_column(self, users):
        with pytest.raises(SchemaError):
            users.select(columns=["nope"])

    def test_returned_rows_are_copies(self, users):
        row = users.select(Eq("id", 1))[0]
        row["name"] = "EVIL"
        assert users.get(1)["name"] == "nguyen"

    def test_like_predicate(self, users):
        rows = users.select(Like("name", "%b%"))
        assert {row["name"] for row in rows} == {"abiteboul", "cobena"}

    def test_count(self, users):
        assert users.count() == 3
        assert users.count(Gt("age", 100)) == 0


class TestGet:
    def test_point_lookup(self, users):
        assert users.get(2)["name"] == "abiteboul"

    def test_missing_key_returns_none(self, users):
        assert users.get(99) is None

    def test_get_without_primary_key_raises(self):
        table = Table(schema("t", Column("x", TEXT)))
        with pytest.raises(SchemaError):
            table.get("x")


class TestUpdate:
    def test_update_matching_rows(self, users):
        count = users.update(Gt("age", 29), {"age": 99})
        assert count == 2
        assert users.get(1)["age"] == 99

    def test_update_primary_key(self, users):
        users.update(Eq("id", 3), {"id": 30})
        assert users.get(3) is None
        assert users.get(30)["name"] == "cobena"

    def test_update_to_duplicate_key_rejected(self, users):
        with pytest.raises(MiniSQLError):
            users.update(Eq("id", 3), {"id": 1})

    def test_update_unknown_column_rejected(self, users):
        with pytest.raises(SchemaError):
            users.update(Eq("id", 1), {"nope": 1})


class TestDelete:
    def test_delete_returns_count(self, users):
        assert users.delete(Gt("age", 29)) == 2
        assert len(users) == 1

    def test_deleted_rows_gone_from_pk_index(self, users):
        users.delete(Eq("id", 1))
        assert users.get(1) is None


class TestSecondaryIndex:
    def test_index_used_for_equality(self, users):
        users.create_index("name")
        rows = users.select(Eq("name", "cobena"))
        assert rows[0]["id"] == 3

    def test_index_maintained_on_update_and_delete(self, users):
        users.create_index("name")
        users.update(Eq("id", 3), {"name": "renamed"})
        assert users.select(Eq("name", "renamed"))[0]["id"] == 3
        assert users.select(Eq("name", "cobena")) == []
        users.delete(Eq("name", "renamed"))
        assert users.select(Eq("name", "renamed")) == []

    def test_index_on_unknown_column_rejected(self, users):
        with pytest.raises(SchemaError):
            users.create_index("nope")

    def test_index_creation_is_idempotent(self, users):
        users.create_index("name")
        users.create_index("name")
        assert users.select(Eq("name", "nguyen"))[0]["id"] == 1


class TestObserver:
    def test_mutations_are_observed(self):
        table = make_table()
        events = []
        table.observer = lambda op, name, payload: events.append((op, name))
        table.insert({"id": 1, "name": "x"})
        table.update(Eq("id", 1), {"age": 5})
        table.delete(Eq("id", 1))
        assert [op for op, _ in events] == ["insert", "update", "delete"]
