import json
import os

import pytest

from repro.errors import MiniSQLError
from repro.minisql import (
    Column,
    Database,
    Eq,
    INTEGER,
    TEXT,
    schema,
)

USERS = schema(
    "users",
    Column("id", INTEGER, primary_key=True),
    Column("email", TEXT, nullable=False),
)


class TestInMemory:
    def test_create_and_use_table(self):
        db = Database()
        users = db.create_table(USERS)
        users.insert({"id": 1, "email": "a@x"})
        assert db.table("users").get(1)["email"] == "a@x"

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table(USERS)
        with pytest.raises(MiniSQLError):
            db.create_table(USERS)

    def test_unknown_table_rejected(self):
        with pytest.raises(MiniSQLError):
            Database().table("nope")

    def test_has_table_and_names(self):
        db = Database()
        db.create_table(USERS)
        assert db.has_table("users")
        assert db.table_names() == ["users"]


class TestDurability:
    def test_recover_replays_inserts(self, tmp_path):
        path = str(tmp_path / "db.wal")
        with Database(path=path) as db:
            users = db.create_table(USERS)
            users.insert({"id": 1, "email": "a@x"})
            users.insert({"id": 2, "email": "b@x"})
        recovered = Database.recover(path)
        assert recovered.table("users").get(2)["email"] == "b@x"
        recovered.close()

    def test_recover_replays_updates_and_deletes(self, tmp_path):
        path = str(tmp_path / "db.wal")
        with Database(path=path) as db:
            users = db.create_table(USERS)
            users.insert({"id": 1, "email": "a@x"})
            users.insert({"id": 2, "email": "b@x"})
            users.update(Eq("id", 1), {"email": "new@x"})
            users.delete(Eq("id", 2))
        recovered = Database.recover(path)
        assert recovered.table("users").get(1)["email"] == "new@x"
        assert recovered.table("users").get(2) is None
        recovered.close()

    def test_recovered_database_is_still_durable(self, tmp_path):
        path = str(tmp_path / "db.wal")
        with Database(path=path) as db:
            db.create_table(USERS).insert({"id": 1, "email": "a@x"})
        first = Database.recover(path)
        first.table("users").insert({"id": 2, "email": "b@x"})
        first.close()
        second = Database.recover(path)
        assert len(second.table("users")) == 2
        second.close()

    def test_checkpoint_truncates_wal(self, tmp_path):
        path = str(tmp_path / "db.wal")
        with Database(path=path) as db:
            users = db.create_table(USERS)
            for i in range(20):
                users.insert({"id": i, "email": f"{i}@x"})
            db.checkpoint()
            assert os.path.getsize(path) == 0
            users.insert({"id": 100, "email": "late@x"})
        recovered = Database.recover(path)
        assert len(recovered.table("users")) == 21
        assert recovered.table("users").get(100) is not None
        recovered.close()

    def test_secondary_indexes_survive_recovery(self, tmp_path):
        path = str(tmp_path / "db.wal")
        with Database(path=path) as db:
            db.create_table(USERS)
            db.create_index("users", "email")
            db.table("users").insert({"id": 1, "email": "a@x"})
        recovered = Database.recover(path)
        rows = recovered.table("users").select(Eq("email", "a@x"))
        assert rows[0]["id"] == 1
        recovered.close()

    def test_torn_final_wal_line_ignored(self, tmp_path):
        path = str(tmp_path / "db.wal")
        with Database(path=path) as db:
            db.create_table(USERS).insert({"id": 1, "email": "a@x"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "insert", "table": "users", "payl')
        recovered = Database.recover(path)
        assert len(recovered.table("users")) == 1
        recovered.close()

    def test_corrupt_middle_record_raises(self, tmp_path):
        path = str(tmp_path / "db.wal")
        with Database(path=path) as db:
            db.create_table(USERS).insert({"id": 1, "email": "a@x"})
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines.insert(1, "GARBAGE\n")
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(MiniSQLError):
            Database.recover(path)

    def test_recovery_of_empty_path(self, tmp_path):
        path = str(tmp_path / "fresh.wal")
        recovered = Database.recover(path)
        assert recovered.table_names() == []
        recovered.close()
