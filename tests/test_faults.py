"""Unit tests for the fault-tolerance primitives (``repro.faults``).

Covers the injector (seeded determinism, per-class rates, metrics), the
retry policy (exponential backoff, deterministic jitter), the circuit
breaker state machine, and the bounded dead-letter queue including its
JSON persistence used by the ``repro-monitor dlq`` CLI.
"""

from __future__ import annotations

import os

import pytest

from repro.clock import SimulatedClock
from repro.errors import (
    FetchConnectionReset,
    FetchError,
    FetchServerError,
    FetchTimeout,
    GarbageFetch,
    PipelineError,
    ReproError,
    TruncatedFetch,
)
from repro.faults import (
    CLOSED,
    CircuitBreaker,
    DeadLetterEntry,
    DeadLetterQueue,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    HALF_OPEN,
    OPEN,
    RetryPolicy,
    SOURCE_CRAWL,
    SOURCE_PIPELINE,
    TRANSIENT_KINDS,
)
from repro.observability import MetricsRegistry
from repro.pipeline import Fetch


class TestErrorTaxonomy:
    def test_fetch_errors_are_repro_errors(self):
        for cls in (
            FetchTimeout,
            FetchConnectionReset,
            TruncatedFetch,
            GarbageFetch,
        ):
            error = cls("boom", url="http://x.example/a.xml")
            assert isinstance(error, FetchError)
            assert isinstance(error, ReproError)
            assert error.url == "http://x.example/a.xml"

    def test_transient_flags(self):
        assert FetchTimeout("t").transient
        assert FetchConnectionReset("r").transient
        assert FetchServerError("s").transient
        assert TruncatedFetch("p").transient
        assert not GarbageFetch("g").transient

    def test_server_error_carries_status(self):
        error = FetchServerError("s", status=503)
        assert error.status == 503
        assert error.kind == "http_5xx"


class TestFaultPlan:
    def test_negative_rate_rejected(self):
        with pytest.raises(PipelineError):
            FaultPlan(timeout_rate=-0.1)

    def test_rates_summing_past_one_rejected(self):
        with pytest.raises(PipelineError):
            FaultPlan(timeout_rate=0.6, garbage_rate=0.5)

    def test_transient_only_excludes_garbage(self):
        plan = FaultPlan.transient_only(0.2, seed=3)
        assert plan.garbage_rate == 0.0
        assert plan.total_rate() == pytest.approx(0.2)
        for kind in TRANSIENT_KINDS:
            assert plan.rates()[kind] == pytest.approx(0.05)

    def test_uniform_covers_every_kind(self):
        plan = FaultPlan.uniform(0.5)
        assert plan.total_rate() == pytest.approx(0.5)
        assert all(rate > 0 for rate in plan.rates().values())

    def test_rates_follow_canonical_kind_order(self):
        assert tuple(FaultPlan().rates()) == FAULT_KINDS


class TestFaultInjector:
    def test_same_plan_same_fault_sequence(self):
        plan = FaultPlan.uniform(0.5, seed=11)
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        outcomes_a = [
            type(first.roll(f"http://s/{i}.xml")).__name__ for i in range(200)
        ]
        outcomes_b = [
            type(second.roll(f"http://s/{i}.xml")).__name__
            for i in range(200)
        ]
        assert outcomes_a == outcomes_b
        assert first.injected == second.injected

    def test_zero_rate_plan_never_faults(self):
        injector = FaultInjector(FaultPlan())
        assert all(
            injector.roll("http://s/a.xml") is None for _ in range(100)
        )
        assert injector.injected == {}
        assert injector.rolls == 100

    def test_injection_rate_is_approximately_honoured(self):
        injector = FaultInjector(FaultPlan.transient_only(0.2, seed=5))
        faults = sum(
            1
            for _ in range(2000)
            if injector.roll("http://s/a.xml") is not None
        )
        assert 300 <= faults <= 500  # 0.2 +/- generous tolerance

    def test_fault_metrics_labelled_by_kind(self):
        metrics = MetricsRegistry(SimulatedClock())
        injector = FaultInjector(
            FaultPlan(timeout_rate=1.0), metrics=metrics
        )
        for _ in range(3):
            assert isinstance(injector.roll("http://s/a.xml"), FetchTimeout)
        counters = metrics.snapshot()["counters"]
        assert counters["faults.injected{kind=timeout}"] == 3

    def test_truncated_payload_is_content_prefix(self):
        injector = FaultInjector(FaultPlan(truncated_rate=1.0))
        fault = injector.roll("http://s/a.xml", "<catalog>abcdef</catalog>")
        assert isinstance(fault, TruncatedFetch)
        assert "<catalog>abcdef</catalog>".startswith(fault.payload)
        assert len(fault.payload) < len("<catalog>abcdef</catalog>")

    def test_server_error_status_is_deterministic_per_url(self):
        injector = FaultInjector(FaultPlan(http_5xx_rate=1.0))
        first = injector.roll("http://s/a.xml")
        second = injector.roll("http://s/a.xml")
        assert 500 <= first.status <= 504
        assert first.status == second.status

    def test_wrap_filters_faulty_fetches(self):
        injector = FaultInjector(FaultPlan.uniform(0.5, seed=2))
        stream = [
            Fetch(f"http://s/{i}.xml", "<r/>") for i in range(40)
        ]
        passed = list(injector.wrap(stream))
        assert 0 < len(passed) < 40
        assert len(passed) + len(injector.dropped) == 40
        for fetch, error in injector.dropped:
            assert isinstance(error, FetchError)
            assert error.url == fetch.url


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(PipelineError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(PipelineError):
            RetryPolicy(base_delay=0)
        with pytest.raises(PipelineError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(PipelineError):
            RetryPolicy().backoff(0)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            base_delay=60.0, multiplier=2.0, max_delay=300.0, jitter=0.0
        )
        assert policy.backoff(1) == 60.0
        assert policy.backoff(2) == 120.0
        assert policy.backoff(3) == 240.0
        assert policy.backoff(4) == 300.0  # capped
        assert policy.backoff(9) == 300.0

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(base_delay=100.0, multiplier=1.0, jitter=0.1)
        delays = {
            policy.backoff(1, f"http://s/{i}.xml") for i in range(50)
        }
        assert len(delays) > 1  # jitter actually varies by URL
        for delay in delays:
            assert 90.0 <= delay <= 110.0
        assert policy.backoff(3, "http://s/a.xml") == policy.backoff(
            3, "http://s/a.xml"
        )


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=100.0)
        assert breaker.state == CLOSED
        breaker.record_failure(10.0)
        breaker.record_failure(11.0)
        assert breaker.state == CLOSED
        breaker.record_failure(12.0)
        assert breaker.state == OPEN
        assert not breaker.allow(50.0)
        assert breaker.retry_at(50.0) == 112.0

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success(1.0)
        breaker.record_failure(2.0)
        assert breaker.state == CLOSED

    def test_half_open_probe_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=100.0)
        breaker.record_failure(0.0)
        assert breaker.state == OPEN
        assert not breaker.allow(99.0)
        assert breaker.allow(100.0)  # the single probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(101.0)  # everything else held
        breaker.record_success(102.0)
        assert breaker.state == CLOSED
        assert breaker.allow(103.0)

    def test_failed_probe_reopens_with_fresh_timer(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=100.0)
        breaker.record_failure(0.0)
        assert breaker.allow(100.0)
        breaker.record_failure(100.0)
        assert breaker.state == OPEN
        assert not breaker.allow(199.0)
        assert breaker.allow(200.0)

    def test_state_change_callback_fires_on_each_edge(self):
        edges = []
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_timeout=10.0,
            on_state_change=lambda old, new: edges.append((old, new)),
        )
        breaker.record_failure(0.0)
        breaker.allow(10.0)
        breaker.record_success(11.0)
        assert edges == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]
        assert breaker.state_changes == 3

    def test_validation(self):
        with pytest.raises(PipelineError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(PipelineError):
            CircuitBreaker(reset_timeout=0.0)


class TestDeadLetterQueue:
    def entry(self, i=0, source=SOURCE_CRAWL):
        return DeadLetterEntry(
            url=f"http://s/{i}.xml",
            content=f"<r>{i}</r>",
            error="boom",
            error_class="FetchTimeout",
            source=source,
            attempts=3,
            quarantined_at=float(i),
        )

    def test_capacity_validated(self):
        with pytest.raises(PipelineError):
            DeadLetterQueue(capacity=0)

    def test_push_and_inspect(self):
        queue = DeadLetterQueue()
        queue.push(self.entry(1))
        queue.push(self.entry(2))
        assert len(queue) == 2
        assert [e.url for e in queue] == ["http://s/1.xml", "http://s/2.xml"]
        assert queue.total_quarantined == 2

    def test_bounded_drops_oldest(self):
        queue = DeadLetterQueue(capacity=2)
        for i in range(4):
            queue.push(self.entry(i))
        assert len(queue) == 2
        assert queue.dropped == 2
        assert [e.url for e in queue] == ["http://s/2.xml", "http://s/3.xml"]
        assert queue.total_quarantined == 4

    def test_drain_and_purge(self):
        queue = DeadLetterQueue()
        queue.push(self.entry())
        drained = queue.drain()
        assert len(drained) == 1 and len(queue) == 0
        queue.push(self.entry())
        assert queue.purge() == 1
        assert len(queue) == 0

    def test_entry_round_trips_to_fetch(self):
        entry = self.entry(7)
        fetch = entry.to_fetch()
        assert fetch.url == entry.url
        assert fetch.content == entry.content
        assert fetch.kind == entry.kind

    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "dlq.json")
        queue = DeadLetterQueue(capacity=3)
        queue.push(self.entry(1))
        queue.push(self.entry(2, source=SOURCE_PIPELINE))
        queue.save(path)
        loaded = DeadLetterQueue.load(path)
        assert loaded.capacity == 3
        assert [e.to_dict() for e in loaded] == [
            e.to_dict() for e in queue
        ]

    def test_save_is_atomic_under_a_mid_write_crash(self, tmp_path, monkeypatch):
        """A crash mid-save must leave the old file intact — never a
        truncated hybrid, never a stray temp file."""
        import json as json_module

        path = str(tmp_path / "dlq.json")
        queue = DeadLetterQueue(capacity=3)
        queue.push(self.entry(1))
        queue.save(path)
        before = open(path, encoding="utf-8").read()

        queue.push(self.entry(2, source=SOURCE_PIPELINE))

        def explode(*args, **kwargs):
            raise OSError("disk died mid-write")

        monkeypatch.setattr(json_module, "dump", explode)
        with pytest.raises(OSError):
            queue.save(path)
        monkeypatch.undo()

        assert open(path, encoding="utf-8").read() == before
        assert not os.path.exists(path + ".tmp")
        loaded = DeadLetterQueue.load(path)
        assert len(loaded) == 1  # the pre-crash save, byte-for-byte

    def test_metrics_gauge_and_counter(self):
        metrics = MetricsRegistry(SimulatedClock())
        queue = DeadLetterQueue(metrics=metrics)
        snapshot = metrics.snapshot()
        assert snapshot["gauges"]["dlq.depth"] == 0
        queue.push(self.entry(1))
        queue.push(self.entry(2, source=SOURCE_PIPELINE))
        snapshot = metrics.snapshot()
        assert snapshot["gauges"]["dlq.depth"] == 2
        assert snapshot["counters"]["dlq.quarantined{source=crawl}"] == 1
        assert snapshot["counters"]["dlq.quarantined{source=pipeline}"] == 1
        queue.purge()
        assert metrics.snapshot()["gauges"]["dlq.depth"] == 0
