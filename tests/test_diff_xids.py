import pytest

from repro.diff.xids import (
    XidSpace,
    index_by_xid,
    max_xid,
    require_xid,
    space_for,
)
from repro.errors import DiffError
from repro.xmlstore import parse


class TestXidSpace:
    def test_allocations_increase(self):
        space = XidSpace()
        assert space.allocate() == 1
        assert space.allocate() == 2

    def test_assign_fresh_covers_all_nodes(self):
        doc = parse("<a><b>t</b><c/></a>")
        XidSpace().assign_fresh(doc.root)
        assert all(node.xid is not None for node in doc.preorder())

    def test_assign_fresh_is_preorder(self):
        doc = parse("<a><b/><c/></a>")
        XidSpace().assign_fresh(doc.root)
        b, c = doc.root.children
        assert doc.root.xid < b.xid < c.xid

    def test_assign_missing_only_fills_gaps(self):
        doc = parse("<a><b/></a>")
        space = XidSpace()
        doc.root.xid = space.allocate()
        assigned = space.assign_missing(doc.root)
        assert assigned == 1
        assert doc.root.children[0].xid == 2

    def test_next_xid_property(self):
        space = XidSpace(first_xid=5)
        assert space.next_xid == 5
        space.allocate()
        assert space.next_xid == 6


class TestIndexing:
    def test_index_by_xid(self):
        doc = parse("<a><b/></a>")
        XidSpace().assign_fresh(doc.root)
        index = index_by_xid(doc)
        assert index[doc.root.xid] is doc.root

    def test_duplicate_xids_rejected(self):
        doc = parse("<a><b/></a>")
        doc.root.xid = 1
        doc.root.children[0].xid = 1
        with pytest.raises(DiffError):
            index_by_xid(doc)

    def test_unidentified_nodes_skipped(self):
        doc = parse("<a><b/></a>")
        doc.root.xid = 7
        index = index_by_xid(doc)
        assert list(index) == [7]

    def test_require_xid(self):
        doc = parse("<a/>")
        with pytest.raises(DiffError):
            require_xid(doc.root)
        doc.root.xid = 3
        assert require_xid(doc.root) == 3


class TestSpaceFor:
    def test_max_xid(self):
        doc = parse("<a><b/></a>")
        doc.root.xid = 3
        doc.root.children[0].xid = 9
        assert max_xid(doc) == 9

    def test_space_for_starts_above_existing(self):
        doc = parse("<a/>")
        doc.root.xid = 41
        assert space_for(doc).allocate() == 42

    def test_space_for_respects_declared_next(self):
        doc = parse("<a/>")
        doc.root.xid = 5
        assert space_for(doc, declared_next=100).allocate() == 100
