from repro.minisql import (
    And,
    Eq,
    Everything,
    Ge,
    Gt,
    IsNull,
    Le,
    Like,
    Lt,
    Ne,
    Not,
    Or,
)

ROW = {"name": "nguyen", "age": 30, "email": None}


class TestAtoms:
    def test_everything(self):
        assert Everything().matches(ROW)

    def test_eq(self):
        assert Eq("name", "nguyen").matches(ROW)
        assert not Eq("name", "preda").matches(ROW)

    def test_ne(self):
        assert Ne("name", "preda").matches(ROW)

    def test_comparisons(self):
        assert Lt("age", 31).matches(ROW)
        assert Le("age", 30).matches(ROW)
        assert Gt("age", 29).matches(ROW)
        assert Ge("age", 30).matches(ROW)
        assert not Gt("age", 30).matches(ROW)

    def test_comparisons_with_null_are_false(self):
        assert not Lt("email", "z").matches(ROW)
        assert not Ge("email", "a").matches(ROW)

    def test_is_null(self):
        assert IsNull("email").matches(ROW)
        assert not IsNull("name").matches(ROW)

    def test_missing_column_behaves_as_null(self):
        assert IsNull("nonexistent").matches(ROW)
        assert not Eq("nonexistent", 1).matches(ROW)


class TestLike:
    def test_percent_wildcard(self):
        assert Like("name", "ngu%").matches(ROW)
        assert Like("name", "%yen").matches(ROW)
        assert Like("name", "%guy%").matches(ROW)

    def test_underscore_wildcard(self):
        assert Like("name", "n_uyen").matches(ROW)
        assert not Like("name", "n_yen").matches(ROW)

    def test_regex_metacharacters_escaped(self):
        row = {"path": "a.b+c"}
        assert Like("path", "a.b+c").matches(row)
        assert not Like("path", "aXb+c").matches(row)

    def test_non_string_value_never_matches(self):
        assert not Like("age", "3%").matches(ROW)


class TestCombinators:
    def test_and(self):
        assert And(Eq("name", "nguyen"), Gt("age", 20)).matches(ROW)
        assert not And(Eq("name", "nguyen"), Gt("age", 40)).matches(ROW)

    def test_or(self):
        assert Or(Eq("name", "x"), Eq("age", 30)).matches(ROW)
        assert not Or(Eq("name", "x"), Eq("age", 0)).matches(ROW)

    def test_not(self):
        assert Not(Eq("name", "x")).matches(ROW)

    def test_empty_and_matches_everything(self):
        assert And().matches(ROW)

    def test_empty_or_matches_nothing(self):
        assert not Or().matches(ROW)


class TestEqualityExtraction:
    def test_eq_pins_its_column(self):
        assert Eq("name", "nguyen").equality_on("name") == "nguyen"
        assert Eq("name", "nguyen").equality_on("age") is None

    def test_and_propagates(self):
        predicate = And(Gt("age", 3), Eq("name", "nguyen"))
        assert predicate.equality_on("name") == "nguyen"

    def test_or_does_not_pin(self):
        predicate = Or(Eq("name", "a"), Eq("name", "b"))
        assert predicate.equality_on("name") is None
