"""End-to-end resilience: retries, breakers, quarantine, convergence.

The central regression here is the determinism contract of
``repro.webworld.crawler``: under a fixed seed, a crawl with 20%
transient fault injection must produce *exactly* the same notification
set as the fault-free crawl — every injected failure is absorbed by a
backoff retry before the page's next nominal fetch, and retries re-serve
already-evolved content without perturbing the shared RNG streams.
"""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.errors import FetchTimeout, GarbageFetch, PipelineError
from repro.faults import (
    CLOSED,
    CircuitBreaker,
    DeadLetterQueue,
    FaultInjector,
    FaultPlan,
    OPEN,
    RetryPolicy,
)
from repro.pipeline import Fetch, SubscriptionSystem
from repro.webworld import ChangeModel, SimulatedCrawler, SiteGenerator
from repro.webworld.refresh import ChangeRateEstimator, RefreshPlanner

SOURCE = """
subscription Chaos
monitoring NewCam
select X
from self//Product X
where URL extends "http://www.shop"
  and new Product contains "camera"
report when count >= 3
"""


def build_world(fault_rate=0.0, fault_seed=0, sites=8, seed=7):
    """One simulated web + system, optionally under fault injection."""
    clock = SimulatedClock(990_000_000.0)
    system = SubscriptionSystem(clock=clock)
    injector = None
    dead_letters = None
    if fault_rate > 0:
        dead_letters = DeadLetterQueue(metrics=system.metrics)
        system.dead_letters = dead_letters
        injector = FaultInjector(
            FaultPlan.transient_only(fault_rate, seed=fault_seed),
            metrics=system.metrics,
        )
    generator = SiteGenerator(seed=seed)
    crawler = SimulatedCrawler(
        clock=clock,
        change_model=ChangeModel(seed=seed + 1),
        seed=seed + 2,
        fault_injector=injector,
        dead_letters=dead_letters,
        metrics=system.metrics,
        # A high threshold keeps breakers from opening under transient
        # noise; breaker behaviour has its own tests below.
        breaker_factory=lambda: CircuitBreaker(failure_threshold=50),
    )
    for i in range(sites):
        crawler.add_xml_page(
            f"http://www.shop{i}.example/catalog/products.xml",
            generator.catalog(products=6),
            change_probability=0.7,
        )
    system.subscribe(SOURCE, owner_email="chaos@example.org")
    captured = []
    system.processor.add_sink(captured.extend)
    return system, crawler, captured


def run_hourly(system, crawler, days, drain_hours=12):
    """Drain the crawl hourly so backoff retries land between fetches."""
    for _ in range(days * 24 + drain_hours):
        system.run_stream(crawler.due_fetches())
        system.advance_time(3600)


def notification_keys(notifications):
    return sorted((n.complex_code, n.document_url) for n in notifications)


class TestDeterministicConvergence:
    def test_transient_faults_converge_to_fault_free_run(self):
        baseline_system, baseline_crawler, baseline_notes = build_world()
        faulty_system, faulty_crawler, faulty_notes = build_world(
            fault_rate=0.2, fault_seed=0
        )
        run_hourly(baseline_system, baseline_crawler, days=10)
        run_hourly(faulty_system, faulty_crawler, days=10)

        # The chaos run really was chaotic...
        assert faulty_crawler.faults_seen > 5
        assert faulty_crawler.retries_scheduled > 5
        # ...yet nothing was lost: no quarantine, no open breakers,
        assert faulty_crawler.dead_lettered == 0
        assert len(faulty_system.dead_letters) == 0
        assert faulty_crawler.open_breaker_urls() == []
        # ...and the observable outcome is *identical* to the clean run.
        assert faulty_system.documents_fed == baseline_system.documents_fed
        assert notification_keys(faulty_notes) == notification_keys(
            baseline_notes
        )
        assert len(baseline_notes) > 0

    def test_fault_runs_are_reproducible(self):
        first_system, first_crawler, first_notes = build_world(
            fault_rate=0.2, fault_seed=3, sites=4
        )
        second_system, second_crawler, second_notes = build_world(
            fault_rate=0.2, fault_seed=3, sites=4
        )
        run_hourly(first_system, first_crawler, days=5)
        run_hourly(second_system, second_crawler, days=5)
        assert first_crawler.faults_seen == second_crawler.faults_seen
        assert first_system.documents_fed == second_system.documents_fed
        assert notification_keys(first_notes) == notification_keys(
            second_notes
        )


class _ScriptedInjector:
    """Injector stub: replays a programmed fault sequence, then clean."""

    def __init__(self, faults):
        self.faults = list(faults)
        self.rolls = 0

    def roll(self, url, content=None):
        self.rolls += 1
        if self.faults:
            return self.faults.pop(0)
        return None


def make_crawler(clock, injector, **kwargs):
    crawler = SimulatedCrawler(
        clock=clock,
        change_model=ChangeModel(seed=1),
        seed=2,
        fault_injector=injector,
        **kwargs,
    )
    generator = SiteGenerator(seed=3)
    crawler.add_xml_page(
        "http://www.shop0.example/catalog.xml", generator.catalog(products=3)
    )
    return crawler


class TestCrawlerRetries:
    def test_transient_fault_retries_and_reserves_same_content(self):
        clock = SimulatedClock(0.0)
        injector = _ScriptedInjector([FetchTimeout("t")])
        crawler = make_crawler(clock, injector)
        assert list(crawler.due_fetches()) == []  # first attempt faulted
        assert crawler.faults_seen == 1
        assert crawler.retries_scheduled == 1
        clock.advance(70.0)  # base backoff 60s (+/- 10% jitter)
        retried = list(crawler.due_fetches())
        assert len(retried) == 1
        # The retry served the content evolved at the nominal attempt:
        # exactly one page evolution happened (fetch_count is per page
        # read, not per attempt).
        assert crawler.page("http://www.shop0.example/catalog.xml").fetch_count == 1

    def test_retry_preserves_nominal_cadence(self):
        clock = SimulatedClock(0.0)
        injector = _ScriptedInjector([FetchTimeout("t")])
        crawler = make_crawler(clock, injector)
        list(crawler.due_fetches())
        clock.advance(70.0)
        assert len(list(crawler.due_fetches())) == 1
        page = crawler.page("http://www.shop0.example/catalog.xml")
        # Rescheduled from the *nominal* due time (0.0), not the retry time.
        assert page.next_fetch == page.refresh_interval

    def test_exhausted_retries_quarantine_the_fetch(self):
        clock = SimulatedClock(0.0)
        injector = _ScriptedInjector(
            [FetchTimeout("t"), FetchTimeout("t"), FetchTimeout("t")]
        )
        dlq = DeadLetterQueue()
        crawler = make_crawler(
            clock,
            injector,
            retry_policy=RetryPolicy(max_attempts=3, jitter=0.0),
            dead_letters=dlq,
        )
        for _ in range(6):
            list(crawler.due_fetches())
            clock.advance(150.0)
        assert crawler.dead_lettered == 1
        assert len(dlq) == 1
        entry = dlq.entries()[0]
        assert entry.url == "http://www.shop0.example/catalog.xml"
        assert entry.error_class == "FetchTimeout"
        assert entry.attempts == 3
        assert entry.source == "crawl"
        # The page stays in rotation at its nominal cadence.
        page = crawler.page(entry.url)
        assert page.next_fetch == page.refresh_interval

    def test_non_transient_fault_skips_retries(self):
        clock = SimulatedClock(0.0)
        injector = _ScriptedInjector([GarbageFetch("g")])
        dlq = DeadLetterQueue()
        crawler = make_crawler(clock, injector, dead_letters=dlq)
        assert list(crawler.due_fetches()) == []
        assert crawler.retries_scheduled == 0
        assert len(dlq) == 1
        assert dlq.entries()[0].error_class == "GarbageFetch"

    def test_retry_metrics_flow_to_registry(self):
        clock = SimulatedClock(0.0)
        metrics_clock = SimulatedClock(0.0)
        from repro.observability import MetricsRegistry

        metrics = MetricsRegistry(metrics_clock)
        injector = _ScriptedInjector([FetchTimeout("t")])
        crawler = make_crawler(clock, injector, metrics=metrics)
        list(crawler.due_fetches())
        assert metrics.snapshot()["counters"]["retry.attempts"] == 1


class TestCrawlerBreakers:
    def always_timeout(self):
        class _Always:
            def roll(self, url, content=None):
                return FetchTimeout("t")

        return _Always()

    def test_breaker_opens_and_suspends_fetching(self):
        clock = SimulatedClock(0.0)
        crawler = make_crawler(
            clock,
            self.always_timeout(),
            retry_policy=RetryPolicy(max_attempts=1),
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=2, reset_timeout=300_000.0
            ),
        )
        url = "http://www.shop0.example/catalog.xml"
        list(crawler.due_fetches())  # failure 1 (quarantine-less)
        clock.advance(crawler.page(url).refresh_interval)
        list(crawler.due_fetches())  # failure 2 -> breaker opens
        assert crawler.breaker(url).state == OPEN
        assert crawler.open_breaker_urls() == [url]
        # While open, due fetches neither emit nor evolve the page.
        count_before = crawler.page(url).fetch_count
        clock.advance(crawler.page(url).refresh_interval)
        assert list(crawler.due_fetches()) == []
        assert crawler.page(url).fetch_count == count_before

    def test_half_open_probe_closes_breaker_on_success(self):
        clock = SimulatedClock(0.0)
        injector = _ScriptedInjector([FetchTimeout("t"), FetchTimeout("t")])
        crawler = make_crawler(
            clock,
            injector,
            retry_policy=RetryPolicy(max_attempts=1),
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=2, reset_timeout=1000.0
            ),
        )
        url = "http://www.shop0.example/catalog.xml"
        interval = crawler.page(url).refresh_interval
        list(crawler.due_fetches())
        clock.advance(interval)
        list(crawler.due_fetches())
        assert crawler.breaker(url).state == OPEN
        # After the reset timeout the single half-open probe goes through
        # clean and the circuit closes again.
        clock.advance(interval)
        assert len(list(crawler.due_fetches())) == 1
        assert crawler.breaker(url).state == CLOSED
        assert crawler.open_breaker_urls() == []

    def test_breaker_state_feeds_refresh_planner(self):
        planner = RefreshPlanner(ChangeRateEstimator(), daily_budget=10.0)
        planner.add_page("http://www.shop0.example/catalog.xml")
        planner.add_page("http://www.shop1.example/catalog.xml")
        planner.apply_breaker_state(["http://www.shop0.example/catalog.xml"])
        intervals = planner.plan_intervals()
        assert "http://www.shop0.example/catalog.xml" not in intervals
        assert "http://www.shop1.example/catalog.xml" in intervals
        # Recovery: an empty open set resumes everything.
        planner.apply_breaker_state([])
        assert len(planner.plan_intervals()) == 2

    def test_breaker_state_changes_counted(self):
        clock = SimulatedClock(0.0)
        from repro.observability import MetricsRegistry

        metrics = MetricsRegistry(SimulatedClock(0.0))
        crawler = make_crawler(
            clock,
            self.always_timeout(),
            retry_policy=RetryPolicy(max_attempts=1),
            breaker_factory=lambda: CircuitBreaker(failure_threshold=1),
            metrics=metrics,
        )
        list(crawler.due_fetches())
        counters = metrics.snapshot()["counters"]
        assert counters["breaker.state_changes{to=open}"] == 1


class TestPipelineQuarantine:
    def test_rejected_documents_enter_the_dlq(self):
        system = SubscriptionSystem(dead_letters=DeadLetterQueue())
        system.feed_batch(
            [
                Fetch("http://x.example/bad.xml", "<broken"),
                Fetch("http://x.example/ok.xml", "<r/>"),
            ]
        )
        assert system.documents_rejected == 1
        assert len(system.dead_letters) == 1
        entry = system.dead_letters.entries()[0]
        assert entry.url == "http://x.example/bad.xml"
        assert entry.source == "pipeline"
        assert entry.error_class == "XMLSyntaxError"

    def test_requeue_replays_quarantined_documents(self):
        system = SubscriptionSystem(dead_letters=DeadLetterQueue())
        system.feed_batch([Fetch("http://x.example/bad.xml", "<broken")])
        # Still broken: the document goes straight back into quarantine.
        recovered, requarantined = system.requeue_dead_letters()
        assert (recovered, requarantined) == (0, 1)
        # "Fix" the page content, then requeue again: now it recovers.
        entry = system.dead_letters.drain()[0]
        entry.content = "<catalog><Product>camera</Product></catalog>"
        system.dead_letters.push(entry)
        recovered, requarantined = system.requeue_dead_letters()
        assert (recovered, requarantined) == (1, 0)
        assert len(system.dead_letters) == 0
        assert system.repository.has_url("http://x.example/bad.xml")

    def test_requeue_without_dlq_is_an_error(self):
        system = SubscriptionSystem()
        with pytest.raises(PipelineError):
            system.requeue_dead_letters()

    def test_requeue_on_empty_queue_is_a_noop(self):
        system = SubscriptionSystem(dead_letters=DeadLetterQueue())
        assert system.requeue_dead_letters() == (0, 0)


class TestChaosSmokeCommand:
    def test_chaos_cli_absorbs_all_faults(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "chaos",
                    "--sites", "5",
                    "--days", "5",
                    "--fault-rate", "0.2",
                    "--seed", "7",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "chaos: OK" in out

    def test_chaos_requires_a_fault_rate(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--fault-rate", "0"]) == 2
