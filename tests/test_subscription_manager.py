import pytest

from repro.alerters import AlerterChain
from repro.clock import SimulatedClock
from repro.core import Alert, MonitoringQueryProcessor
from repro.errors import ResourceLimitError, SubscriptionError
from repro.minisql import Database
from repro.reporting import Reporter
from repro.subscription import (
    CostController,
    SubscriptionCompiler,
    SubscriptionManager,
)

SOURCE = """
subscription MyXyleme
monitoring UpdatedPage
select <UpdatedPage url=URL/>
where URL extends "http://inria.fr/Xy/"
  and modified self
report when immediate
"""

VIRTUAL_SOURCE = """
subscription Follower
virtual MyXyleme.UpdatedPage
report when immediate
"""


class Harness:
    def __init__(self, database=None):
        self.clock = SimulatedClock(1000.0)
        self.processor = MonitoringQueryProcessor(clock=self.clock)
        self.chain = AlerterChain()
        self.reporter = Reporter(clock=self.clock)
        self.compiler = SubscriptionCompiler(
            processor=self.processor,
            alerter_chain=self.chain,
            trigger_engine=None,
            reporter=self.reporter,
        )
        self.manager = SubscriptionManager(
            compiler=self.compiler,
            cost_controller=CostController(),
            database=database,
        )
        self.processor.add_sink(self.manager.handle_notifications)

    def feed(self, url, status="updated"):
        from repro.alerters.context import FetchedDocument
        from repro.repository import DocumentMeta
        from repro.xmlstore import parse

        fetched = FetchedDocument(
            url=url,
            meta=DocumentMeta(doc_id=1, url=url),
            status=status,
            document=parse("<r/>"),
        )
        alert = self.chain.build_alert(fetched)
        if alert is None:
            return []
        return self.processor.process_alert(alert)


@pytest.fixture
def harness():
    return Harness()


class TestLifecycle:
    def test_add_returns_increasing_ids(self, harness):
        first = harness.manager.add_subscription(SOURCE, "a@x")
        second = harness.manager.add_subscription(
            SOURCE.replace("MyXyleme", "Other"), "b@x"
        )
        assert second == first + 1

    def test_duplicate_name_rejected(self, harness):
        harness.manager.add_subscription(SOURCE, "a@x")
        with pytest.raises(SubscriptionError):
            harness.manager.add_subscription(SOURCE, "b@x")

    def test_matching_document_reaches_reporter(self, harness):
        sub_id = harness.manager.add_subscription(SOURCE, "a@x")
        notifications = harness.feed("http://inria.fr/Xy/index.html")
        assert len(notifications) == 1
        assert harness.reporter.stats.reports_generated == 1

    def test_nonmatching_document_ignored(self, harness):
        harness.manager.add_subscription(SOURCE, "a@x")
        assert harness.feed("http://elsewhere.org/") == []

    def test_remove_subscription_stops_matching(self, harness):
        sub_id = harness.manager.add_subscription(SOURCE, "a@x")
        harness.manager.remove_subscription(sub_id)
        assert harness.feed("http://inria.fr/Xy/index.html") == []
        assert harness.manager.count() == 0

    def test_remove_unknown_raises(self, harness):
        with pytest.raises(SubscriptionError):
            harness.manager.remove_subscription(99)

    def test_cost_control_applied(self, harness):
        expensive = SOURCE.replace(
            'URL extends "http://inria.fr/Xy/"', 'self contains "the"'
        )
        with pytest.raises(ResourceLimitError):
            harness.manager.add_subscription(expensive, "a@x")

    def test_privileged_user_bypasses_cost_control(self, harness):
        harness.manager.register_user("boss@x", privileged=True)
        expensive = SOURCE.replace(
            'URL extends "http://inria.fr/Xy/"', 'self contains "the"'
        )
        sub_id = harness.manager.add_subscription(expensive, "boss@x")
        assert sub_id > 0


class TestInhibition:
    def test_inhibit_stops_routing_but_keeps_matching(self, harness):
        sub_id = harness.manager.add_subscription(SOURCE, "a@x")
        harness.manager.inhibit(sub_id)
        notifications = harness.feed("http://inria.fr/Xy/index.html")
        # The MQP still matches (a-posteriori inhibition), but nothing is
        # delivered to the Reporter.
        assert len(notifications) == 1
        assert harness.reporter.stats.reports_generated == 0

    def test_resume_restores_routing(self, harness):
        sub_id = harness.manager.add_subscription(SOURCE, "a@x")
        harness.manager.inhibit(sub_id)
        harness.manager.resume(sub_id)
        harness.feed("http://inria.fr/Xy/index.html")
        assert harness.reporter.stats.reports_generated == 1


class TestVirtualSubscriptions:
    def test_virtual_subscriber_receives_copies(self, harness):
        harness.manager.add_subscription(SOURCE, "owner@x")
        follower_id = harness.manager.add_subscription(
            VIRTUAL_SOURCE, "follower@x"
        )
        harness.feed("http://inria.fr/Xy/index.html")
        # Both the owner and the follower got a report.
        assert harness.reporter.stats.reports_generated == 2
        body = harness.reporter.publisher.fetch(follower_id)
        assert "UpdatedPage" in body

    def test_virtual_does_not_add_monitoring_load(self, harness):
        harness.manager.add_subscription(SOURCE, "owner@x")
        before = len(harness.processor.matcher)
        harness.manager.add_subscription(VIRTUAL_SOURCE, "f@x")
        assert len(harness.processor.matcher) == before


class TestEventSharing:
    def test_identical_conditions_share_atomic_events(self, harness):
        harness.manager.add_subscription(SOURCE, "a@x")
        atomic_before = harness.processor.registry.atomic_count()
        harness.manager.add_subscription(
            SOURCE.replace("MyXyleme", "Clone"), "b@x"
        )
        assert harness.processor.registry.atomic_count() == atomic_before

    def test_shared_event_survives_one_removal(self, harness):
        first = harness.manager.add_subscription(SOURCE, "a@x")
        second = harness.manager.add_subscription(
            SOURCE.replace("MyXyleme", "Clone"), "b@x"
        )
        harness.manager.remove_subscription(first)
        notifications = harness.feed("http://inria.fr/Xy/index.html")
        assert len(notifications) == 1


class TestPersistenceAndRecovery:
    def test_recovery_restores_subscriptions(self, tmp_path):
        path = str(tmp_path / "subs.wal")
        harness = Harness(database=Database(path=path))
        harness.manager.add_subscription(SOURCE, "a@x")
        harness.manager.database.close()

        recovered_db = Database.recover(path)
        fresh = Harness(database=recovered_db)
        restored = fresh.manager.recover()
        assert restored == 1
        notifications = fresh.feed("http://inria.fr/Xy/index.html")
        assert len(notifications) == 1
        assert fresh.reporter.stats.reports_generated == 1

    def test_recovery_preserves_inhibition(self, tmp_path):
        path = str(tmp_path / "subs.wal")
        harness = Harness(database=Database(path=path))
        sub_id = harness.manager.add_subscription(SOURCE, "a@x")
        harness.manager.inhibit(sub_id)
        harness.manager.database.close()

        fresh = Harness(database=Database.recover(path))
        fresh.manager.recover()
        fresh.feed("http://inria.fr/Xy/index.html")
        assert fresh.reporter.stats.reports_generated == 0

    def test_new_ids_continue_after_recovery(self, tmp_path):
        path = str(tmp_path / "subs.wal")
        harness = Harness(database=Database(path=path))
        first = harness.manager.add_subscription(SOURCE, "a@x")
        harness.manager.database.close()

        fresh = Harness(database=Database.recover(path))
        fresh.manager.recover()
        second = fresh.manager.add_subscription(
            SOURCE.replace("MyXyleme", "Next"), "b@x"
        )
        assert second > first


class TestRefreshHints:
    def test_hints_collected(self, harness):
        harness.manager.add_subscription(
            'subscription R\nrefresh "http://u/" weekly', "a@x"
        )
        hints = harness.manager.refresh_hints()
        assert "http://u/" in hints
