"""Property-based tests of the versioning invariants (hypothesis).

The invariants the repository relies on:

* ``apply_delta(old, compute_delta(old, new)) == new`` (reconstruction);
* ``apply_delta(new, delta.inverted()) == old`` (bidirectional chains);
* matched nodes keep XIDs, inserted nodes get fresh ones, never duplicated.
"""

import random
import string

from hypothesis import given, settings, strategies as st

from repro.diff import XidSpace, apply_delta, compute_delta, copy_document
from repro.xmlstore import parse, serialize
from repro.xmlstore.nodes import Document, ElementNode, TextNode

tags = st.sampled_from(["a", "b", "c", "item", "Product"])
words = st.sampled_from(["one", "two", "camera", "xml", "price"])


@st.composite
def documents(draw, depth=3):
    def build(level):
        element = ElementNode(draw(tags))
        if draw(st.booleans()):
            element.attributes["k"] = draw(words)
        count = draw(st.integers(0, 3)) if level < depth else 0
        for _ in range(count):
            if draw(st.booleans()):
                element.append(TextNode(draw(words)))
            else:
                element.append(build(level + 1))
        return element

    root = ElementNode("root")
    for _ in range(draw(st.integers(0, 4))):
        root.append(build(1))
    return Document(root)


@st.composite
def edit_seeds(draw):
    return draw(st.integers(0, 2**31))


def mutate(document, seed):
    """Random structural edits applied to a copy (no xid hygiene needed —
    compute_delta only reads xids from the OLD document)."""
    rng = random.Random(seed)
    result = copy_document(document)
    for node in result.preorder():
        node.xid = None
    elements = [
        n for n in result.preorder() if isinstance(n, ElementNode)
    ]
    for _ in range(rng.randint(0, 5)):
        action = rng.choice(("insert", "delete", "retext", "attr"))
        elements = [
            n for n in result.preorder() if isinstance(n, ElementNode)
        ]
        if action == "insert":
            parent = rng.choice(elements)
            child = ElementNode(rng.choice(["a", "b", "new"]))
            child.append(TextNode(rng.choice(["x", "y"])))
            parent.insert(rng.randint(0, len(parent.children)), child)
        elif action == "delete":
            candidates = [n for n in elements if n.parent is not None]
            if candidates:
                rng.choice(candidates).detach()
        elif action == "retext":
            texts = [
                n for n in result.preorder() if isinstance(n, TextNode)
            ]
            if texts:
                rng.choice(texts).data = rng.choice(["p", "q", "zz"])
        else:
            target = rng.choice(elements)
            target.attributes["k"] = rng.choice(["1", "2", "3"])
    return result


@settings(max_examples=60, deadline=None)
@given(documents(), edit_seeds())
def test_reconstruction_roundtrip(old, seed):
    new = mutate(old, seed)
    space = XidSpace()
    space.assign_fresh(old.root)
    delta = compute_delta(old, new, space)
    assert serialize(apply_delta(old, delta)) == serialize(new)


@settings(max_examples=60, deadline=None)
@given(documents(), edit_seeds())
def test_inversion_roundtrip(old, seed):
    new = mutate(old, seed)
    space = XidSpace()
    space.assign_fresh(old.root)
    delta = compute_delta(old, new, space)
    assert serialize(apply_delta(new, delta.inverted())) == serialize(old)


@settings(max_examples=60, deadline=None)
@given(documents(), edit_seeds())
def test_new_document_xids_unique_and_complete(old, seed):
    new = mutate(old, seed)
    space = XidSpace()
    space.assign_fresh(old.root)
    compute_delta(old, new, space)
    xids = [n.xid for n in new.preorder()]
    assert all(x is not None for x in xids)
    assert len(xids) == len(set(xids))


@settings(max_examples=40, deadline=None)
@given(documents())
def test_identical_documents_give_empty_delta(old):
    # Canonicalize first: the strategy may produce adjacent text nodes,
    # which parsing folds into one.
    old = parse(serialize(old))
    twin = parse(serialize(old))
    space = XidSpace()
    space.assign_fresh(old.root)
    delta = compute_delta(old, twin, space)
    assert not delta
