"""Golden test: the paper's running example end to end (Section 2.2).

The MyXyleme subscription and the exact report shape the paper prints::

    <Report>
      <UpdatedPage url="http://inria.fr/Xy/index.html"/>
      <UpdatedPage url="http://inria.fr/Xy/members.xml"/>
      <Member><name>jouglet</name><fn>jeremie</fn></Member>
      ...
    </Report>
"""

import pytest

from repro.xmlstore import parse

SUBSCRIPTION = """
subscription MyXyleme

monitoring UpdatedPage
select <UpdatedPage url=URL/>
where URL extends "http://inria.fr/Xy/"
  and modified self

monitoring Member
select X
from self//Member X
where URL = "http://inria.fr/Xy/members.xml"
  and new X

report when notifications.count >= 5
"""

INDEX_V1 = "<page><title>Xyleme</title></page>"
INDEX_V2 = "<page><title>Xyleme project</title></page>"
MEMBERS_V1 = (
    "<members><Member><name>jouglet</name><fn>jeremie</fn></Member>"
    "</members>"
)
MEMBERS_V2 = (
    "<members><Member><name>jouglet</name><fn>jeremie</fn></Member>"
    "<Member><name>nguyen</name><fn>benjamin</fn></Member>"
    "<Member><name>preda</name><fn>mihai</fn></Member></members>"
)


@pytest.fixture
def report_body(system, clock):
    system.subscribe(SUBSCRIPTION, owner_email="ben@inria.fr")
    system.feed_xml("http://inria.fr/Xy/index.html", INDEX_V1)
    system.feed_xml("http://inria.fr/Xy/members.xml", MEMBERS_V1)
    clock.advance(3600)
    system.feed_xml("http://inria.fr/Xy/index.html", INDEX_V2)
    system.feed_xml("http://inria.fr/Xy/members.xml", MEMBERS_V2)
    assert system.email_sink.total_sent == 1
    return system.email_sink.sent[-1].body


class TestPaperReport:
    def test_report_root(self, report_body):
        assert parse(report_body).root.tag == "Report"

    def test_updated_pages_listed_with_urls(self, report_body):
        report = parse(report_body)
        urls = {
            element.attributes["url"]
            for element in report.root.find_all("UpdatedPage")
        }
        assert urls == {
            "http://inria.fr/Xy/index.html",
            "http://inria.fr/Xy/members.xml",
        }

    def test_new_members_carried_in_full(self, report_body):
        report = parse(report_body)
        members = list(report.root.find_all("Member"))
        names = {
            member.first("name").text_content() for member in members
        }
        # jouglet was in V1 (new document: all members new then); nguyen
        # and preda arrived with the update.
        assert {"nguyen", "preda"} <= names
        for member in members:
            assert member.first("fn") is not None

    def test_paper_sample_structure(self, report_body):
        # The exact elements the paper's sample report shows.
        assert '<UpdatedPage url="http://inria.fr/Xy/index.html"/>' in (
            report_body
        )
        assert "<Member><name>nguyen</name><fn>benjamin</fn></Member>" in (
            report_body
        )
