from repro.repository import DocumentMeta, filename_of
from repro.repository.metadata import HTML, XML


class TestFilenameOf:
    def test_simple_tail(self):
        assert filename_of("http://inria.fr/Xy/index.html") == "index.html"

    def test_trailing_slash(self):
        assert filename_of("http://inria.fr/Xy/") == "Xy"

    def test_query_string_stripped(self):
        assert filename_of("http://x/a.xml?version=2") == "a.xml"

    def test_fragment_stripped(self):
        assert filename_of("http://x/a.xml#top") == "a.xml"

    def test_paper_example(self):
        # Section 5.1: "filename is the tail of an URL (e.g., index.html)".
        assert filename_of("http://www.site.com/deep/path/Xyleme2000.xml") == (
            "Xyleme2000.xml"
        )


class TestDocumentMeta:
    def test_filename_derived_from_url(self):
        meta = DocumentMeta(doc_id=1, url="http://x/y/catalog.xml")
        assert meta.filename == "catalog.xml"

    def test_is_xml(self):
        assert DocumentMeta(doc_id=1, url="http://x/a", kind=XML).is_xml
        assert not DocumentMeta(doc_id=1, url="http://x/a", kind=HTML).is_xml

    def test_default_importance(self):
        assert DocumentMeta(doc_id=1, url="http://x/a").importance == 1.0
