"""Structural property tests: bookkeeping stays consistent under churn."""

from hypothesis import given, settings, strategies as st

from repro.alerters import PrefixHashTable, PrefixTrie
from repro.core import AESMatcher

# (prefix, code) operations; removal mirrors a previous add.
prefix_ops = st.lists(
    st.tuples(
        st.sampled_from(["http://a/", "http://a/b/", "http://c/", "x"]),
        st.integers(0, 6),
    ),
    max_size=25,
)


@settings(max_examples=80, deadline=None)
@given(prefix_ops, st.data())
def test_prefix_hash_length_index_consistent(ops, data):
    """After arbitrary add/remove interleavings, the fast length-indexed
    lookup equals the literal scan of every prefix."""
    table = PrefixHashTable()
    live = []
    for prefix, code in ops:
        if live and data.draw(st.booleans(), label="remove?"):
            victim = live.pop(data.draw(
                st.integers(0, len(live) - 1), label="victim"
            ))
            table.remove(*victim)
        table.add(prefix, code)
        live.append((prefix, code))
    for url in ["http://a/b/c", "http://c/x", "xyz", "", "http://a/"]:
        assert table.matches(url) == table.matches_scanning_all_prefixes(url)


@settings(max_examples=80, deadline=None)
@given(prefix_ops)
def test_hash_and_trie_agree_after_removals(ops):
    table = PrefixHashTable()
    trie = PrefixTrie()
    for index, (prefix, code) in enumerate(ops):
        table.add(prefix, code)
        trie.add(prefix, code)
        if index % 3 == 2:
            table.remove(prefix, code)
            trie.remove(prefix, code)
    for url in ["http://a/b/page", "http://c/", "xx", "http://a/"]:
        assert table.matches(url) == trie.matches(url)


aes_events = st.lists(
    st.lists(st.integers(0, 20), min_size=1, max_size=4, unique=True),
    min_size=1,
    max_size=15,
)


@settings(max_examples=80, deadline=None)
@given(aes_events)
def test_aes_structure_empty_after_removing_everything(events):
    matcher = AESMatcher()
    registered = []
    for code, atomic in enumerate(events, start=1):
        atomic = sorted(atomic)
        matcher.add(code, atomic)
        registered.append((code, atomic))
    for code, atomic in registered:
        matcher.remove(code, atomic)
    stats = matcher.structure_stats()
    assert stats["cells"] == 0
    assert stats["marks"] == 0
    assert len(matcher) == 0


@settings(max_examples=80, deadline=None)
@given(aes_events)
def test_aes_marks_equal_registrations(events):
    matcher = AESMatcher()
    for code, atomic in enumerate(events, start=1):
        matcher.add(code, sorted(atomic))
    assert matcher.structure_stats()["marks"] == len(events)
