import pytest

from repro.errors import ResourceLimitError
from repro.language import parse_subscription
from repro.repository import WarehouseIndexes
from repro.subscription import CostController
from repro.xmlstore import parse


def subscription_with_condition(condition):
    return parse_subscription(
        f"subscription T\nmonitoring\nselect X\nfrom self//a X\n"
        f"where {condition}\nreport when immediate"
    )


class TestStopWords:
    def test_contains_stop_word_rejected(self):
        controller = CostController()
        subscription = subscription_with_condition('self contains "the"')
        with pytest.raises(ResourceLimitError):
            controller.check_subscription(subscription)

    def test_contains_content_word_accepted(self):
        controller = CostController()
        controller.check_subscription(
            subscription_with_condition('self contains "camera"')
        )

    def test_element_contains_stop_word_rejected(self):
        controller = CostController()
        subscription = subscription_with_condition(
            'Product contains "and"'
        )
        with pytest.raises(ResourceLimitError):
            controller.check_subscription(subscription)

    def test_privileged_user_bypasses(self):
        controller = CostController()
        subscription = subscription_with_condition('self contains "the"')
        controller.check_subscription(subscription, privileged=True)


class TestURLWidth:
    def test_short_prefix_rejected(self):
        controller = CostController(min_prefix_length=8)
        subscription = subscription_with_condition('URL extends "http://"')
        with pytest.raises(ResourceLimitError):
            controller.check_subscription(subscription)

    def test_long_prefix_accepted(self):
        controller = CostController(min_prefix_length=8)
        controller.check_subscription(
            subscription_with_condition(
                'URL extends "http://www.xyleme.com/"'
            )
        )


class TestFrequencies:
    def test_too_frequent_continuous_query_rejected(self):
        controller = CostController(min_trigger_period="daily")
        subscription = parse_subscription(
            "subscription T\ncontinuous Q\nselect a from d/a a\nwhen hourly\n"
            "report when immediate"
        )
        with pytest.raises(ResourceLimitError):
            controller.check_subscription(subscription)

    def test_too_frequent_refresh_rejected(self):
        controller = CostController(min_trigger_period="daily")
        subscription = parse_subscription(
            'subscription T\nrefresh "http://u/" hourly'
        )
        with pytest.raises(ResourceLimitError):
            controller.check_subscription(subscription)

    def test_weekly_accepted(self):
        controller = CostController(min_trigger_period="daily")
        controller.check_subscription(
            parse_subscription('subscription T\nrefresh "http://u/" weekly')
        )


class TestFrequencyViaIndexes:
    def test_too_common_word_in_warehouse_rejected(self):
        indexes = WarehouseIndexes()
        for doc_id in range(10):
            indexes.index_document(doc_id, parse("<a>popular term</a>"))
        indexes.index_document(100, parse("<a>rare</a>"))
        controller = CostController(
            indexes=indexes,
            total_documents=11,
            max_word_document_fraction=0.5,
        )
        with pytest.raises(ResourceLimitError):
            controller.check_subscription(
                subscription_with_condition('self contains "popular"')
            )
        controller.check_subscription(
            subscription_with_condition('self contains "rare"')
        )
