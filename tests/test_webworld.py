import pytest

from repro.clock import SECONDS_PER_DAY, SimulatedClock
from repro.errors import PipelineError
from repro.webworld import (
    ChangeModel,
    ChangeRates,
    SimulatedCrawler,
    SiteGenerator,
    SyntheticWorkload,
    WorkloadParams,
    biased_document_sets,
)
from repro.xmlstore import parse, serialize
from repro.diff import XidSpace, compute_delta


class TestSiteGenerator:
    def test_catalog_structure(self):
        doc = SiteGenerator(seed=1).catalog(products=5)
        assert doc.root.tag == "catalog"
        assert len(list(doc.root.find_all("Product"))) == 5
        assert doc.dtd_url is not None

    def test_museum_structure(self):
        doc = SiteGenerator(seed=1).museum(paintings=3, city="Amsterdam")
        assert len(list(doc.root.find_all("painting"))) == 3
        assert "Amsterdam" in doc.root.first("address").text_content()

    def test_members_structure(self):
        doc = SiteGenerator(seed=1).members(count=4)
        assert len(list(doc.root.find_all("Member"))) == 4

    def test_deterministic_given_seed(self):
        a = serialize(SiteGenerator(seed=7).catalog(products=3))
        b = serialize(SiteGenerator(seed=7).catalog(products=3))
        assert a == b

    def test_generated_documents_parse(self):
        generator = SiteGenerator(seed=2)
        for document in (
            generator.catalog(4),
            generator.museum(4),
            generator.members(4),
        ):
            assert parse(serialize(document)).root.tag == document.root.tag

    def test_generic_document_bounds(self):
        doc = SiteGenerator(seed=3).generic_document(size=50, depth=4)
        assert doc.depth() <= 5  # +1 for text nodes under leaf elements

    def test_html_page(self):
        html = SiteGenerator(seed=4).html_page(paragraphs=3)
        assert html.startswith("<html>") and html.count("<p>") == 3


class TestChangeModel:
    def test_mutation_changes_content(self):
        generator = SiteGenerator(seed=1)
        model = ChangeModel(seed=2)
        original = generator.catalog(products=5)
        mutated = model.mutate(original)
        assert serialize(mutated) != serialize(original)

    def test_original_untouched(self):
        generator = SiteGenerator(seed=1)
        original = generator.catalog(products=5)
        before = serialize(original)
        ChangeModel(seed=2).mutate(original)
        assert serialize(original) == before

    def test_mutations_diffable(self):
        generator = SiteGenerator(seed=1)
        model = ChangeModel(seed=3)
        v1 = generator.catalog(products=5)
        v2 = model.mutate(v1)
        space = XidSpace()
        space.assign_fresh(v1.root)
        delta = compute_delta(v1, v2, space)
        assert delta  # something changed and the diff expresses it

    def test_zero_rates_produce_identity(self):
        rates = ChangeRates(
            inserts=0, text_updates=0, deletes=0, attribute_updates=0
        )
        generator = SiteGenerator(seed=1)
        model = ChangeModel(seed=2, rates=rates)
        doc = generator.catalog(3)
        assert serialize(model.mutate(doc)) == serialize(doc)


class TestCrawler:
    def test_pages_fetched_when_due(self):
        clock = SimulatedClock(0.0)
        crawler = SimulatedCrawler(clock=clock, seed=1)
        crawler.add_xml_page(
            "http://a/x.xml", SiteGenerator(seed=1).catalog(3)
        )
        fetches = list(crawler.due_fetches())
        assert [f.url for f in fetches] == ["http://a/x.xml"]

    def test_refetch_after_interval(self):
        clock = SimulatedClock(0.0)
        crawler = SimulatedCrawler(clock=clock, seed=1)
        crawler.add_xml_page(
            "http://a/x.xml", SiteGenerator(seed=1).catalog(3)
        )
        list(crawler.due_fetches())
        assert list(crawler.due_fetches()) == []
        clock.advance(SECONDS_PER_DAY)
        assert len(list(crawler.due_fetches())) == 1

    def test_importance_shortens_interval(self):
        clock = SimulatedClock(0.0)
        crawler = SimulatedCrawler(clock=clock, seed=1)
        page = crawler.add_xml_page(
            "http://a/x.xml", SiteGenerator(seed=1).catalog(3),
            importance=4.0,
        )
        assert page.refresh_interval == SECONDS_PER_DAY / 4

    def test_refresh_hints_shorten_interval(self):
        clock = SimulatedClock(0.0)
        crawler = SimulatedCrawler(clock=clock, seed=1)
        crawler.add_xml_page(
            "http://a/x.xml", SiteGenerator(seed=1).catalog(3)
        )
        crawler.apply_refresh_hints({"http://a/x.xml": 3600.0})
        assert crawler.page("http://a/x.xml").refresh_interval == 3600.0

    def test_content_changes_respect_probability(self):
        clock = SimulatedClock(0.0)
        crawler = SimulatedCrawler(clock=clock, seed=1)
        crawler.add_xml_page(
            "http://a/x.xml",
            SiteGenerator(seed=1).catalog(3),
            change_probability=0.0,
        )
        first = list(crawler.due_fetches())[0]
        clock.advance(SECONDS_PER_DAY)
        second = list(crawler.due_fetches())[0]
        assert first.content == second.content

    def test_html_pages(self):
        clock = SimulatedClock(0.0)
        crawler = SimulatedCrawler(clock=clock, seed=1)
        crawler.add_html_page(
            "http://a/i.html", "<html><body>x</body></html>",
            change_probability=1.0,
        )
        first = list(crawler.due_fetches())[0]
        clock.advance(SECONDS_PER_DAY)
        second = list(crawler.due_fetches())[0]
        assert first.kind == "html"
        assert second.content != first.content

    def test_reschedule_anchors_on_due_time_not_drain_time(self):
        """A late drain must not stretch the page's effective cadence."""
        clock = SimulatedClock(0.0)
        crawler = SimulatedCrawler(clock=clock, seed=1)
        crawler.add_xml_page(
            "http://a/x.xml", SiteGenerator(seed=1).catalog(3)
        )
        list(crawler.due_fetches())
        # The consumer drains six hours late, every day: under the old
        # now-anchored reschedule the interval would drift to 30 hours.
        for day in range(1, 4):
            clock.advance(SECONDS_PER_DAY + 6 * 3600)
            assert len(list(crawler.due_fetches())) == 1
            page = crawler.page("http://a/x.xml")
            # Rescheduled from the nominal slot: still on the daily grid.
            assert page.next_fetch % SECONDS_PER_DAY == 0
            clock.set_time(page.next_fetch - 6 * 3600)

    def test_reschedule_skips_missed_slots_without_bursts(self):
        clock = SimulatedClock(0.0)
        crawler = SimulatedCrawler(clock=clock, seed=1)
        crawler.add_xml_page(
            "http://a/x.xml", SiteGenerator(seed=1).catalog(3)
        )
        list(crawler.due_fetches())
        # Fall three full intervals behind: exactly one fetch comes out
        # (no catch-up burst) and the next slot stays on the daily grid,
        # strictly in the future.
        clock.advance(3.5 * SECONDS_PER_DAY)
        assert len(list(crawler.due_fetches())) == 1
        page = crawler.page("http://a/x.xml")
        assert page.next_fetch == 4 * SECONDS_PER_DAY
        assert page.next_fetch > clock.now()

    def test_missing_xml_document_is_a_pipeline_error(self):
        clock = SimulatedClock(0.0)
        crawler = SimulatedCrawler(clock=clock, seed=1)
        page = crawler.add_xml_page(
            "http://a/x.xml", SiteGenerator(seed=1).catalog(3)
        )
        page.document = None  # corrupted page table
        with pytest.raises(PipelineError, match="has no document"):
            list(crawler.due_fetches())

    def test_missing_html_content_is_a_pipeline_error(self):
        clock = SimulatedClock(0.0)
        crawler = SimulatedCrawler(clock=clock, seed=1)
        page = crawler.add_html_page(
            "http://a/i.html", "<html><body>x</body></html>"
        )
        page.html = None
        with pytest.raises(PipelineError, match="has no content"):
            list(crawler.due_fetches())


class TestSyntheticWorkload:
    def params(self, **overrides):
        defaults = dict(card_a=1000, card_c=500, c_min=2, c_max=4, s=10,
                        seed=3)
        defaults.update(overrides)
        return WorkloadParams(**defaults)

    def test_complex_event_count_and_sizes(self):
        workload = SyntheticWorkload(self.params())
        events = workload.complex_events()
        assert len(events) == 500
        assert all(2 <= len(atomic) <= 4 for _, atomic in events)
        assert all(atomic == sorted(atomic) for _, atomic in events)

    def test_complex_events_cached(self):
        workload = SyntheticWorkload(self.params())
        assert workload.complex_events() is workload.complex_events()

    def test_document_sets_shape(self):
        workload = SyntheticWorkload(self.params(s=15))
        sets = workload.document_event_sets(20)
        assert len(sets) == 20
        assert all(len(s) == 15 for s in sets)
        assert all(s == sorted(s) for s in sets)

    def test_draw_order_independence(self):
        early_docs = SyntheticWorkload(self.params())
        docs_first = early_docs.document_event_sets(5)
        early_docs.complex_events()

        events_first = SyntheticWorkload(self.params())
        events_first.complex_events()
        docs_second = events_first.document_event_sets(5)
        assert docs_first == docs_second

    def test_estimated_vs_observed_k(self):
        workload = SyntheticWorkload(self.params(card_a=200, card_c=2000))
        estimate = workload.params.estimated_k
        observed = workload.observed_k()
        assert abs(observed - estimate) / estimate < 0.2

    def test_build_matcher(self):
        from repro.core import AESMatcher

        workload = SyntheticWorkload(self.params(card_c=50))
        matcher = workload.build(AESMatcher)
        assert len(matcher) == 50

    def test_zipf_skew_concentrates_mass(self):
        uniform = SyntheticWorkload(self.params())
        skewed = SyntheticWorkload(self.params(zipf_exponent=1.2))
        popular_hits = lambda wl: sum(
            1
            for _, atomic in wl.complex_events()
            if any(code < 10 for code in atomic)
        )
        assert popular_hits(skewed) > popular_hits(uniform) * 2

    def test_biased_sets_raise_hit_rate(self):
        from repro.core import AESMatcher

        workload = SyntheticWorkload(
            self.params(card_a=10_000, card_c=200, s=12)
        )
        matcher = workload.build(AESMatcher)
        uniform = workload.document_event_sets(200)
        biased = biased_document_sets(workload, 200, hit_fraction=0.5)
        uniform_hits = sum(1 for s in uniform if matcher.match(s))
        biased_hits = sum(1 for s in biased if matcher.match(s))
        assert biased_hits > uniform_hits + 20
