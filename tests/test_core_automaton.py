import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AESMatcher, SubsetAutomatonMatcher
from repro.core.automaton import StateExplosionError
from repro.errors import MonitoringError


class TestMatching:
    def test_exact_and_superset_match(self):
        automaton = SubsetAutomatonMatcher()
        automaton.add(1, [2, 5])
        assert automaton.match([2, 5]) == [1]
        assert automaton.match([1, 2, 3, 5, 9]) == [1]

    def test_subset_does_not_match(self):
        automaton = SubsetAutomatonMatcher()
        automaton.add(1, [2, 5])
        assert automaton.match([2]) == []
        assert automaton.match([5]) == []

    def test_multiple_chains(self):
        automaton = SubsetAutomatonMatcher()
        automaton.add(1, [1, 3])
        automaton.add(2, [3, 4])
        automaton.add(3, [2])
        assert automaton.match([1, 2, 3, 4]) == [1, 2, 3]
        assert automaton.match([3, 4]) == [2]

    def test_remove(self):
        automaton = SubsetAutomatonMatcher()
        automaton.add(1, [1, 2])
        automaton.remove(1, [1, 2])
        assert automaton.match([1, 2]) == []
        with pytest.raises(MonitoringError):
            automaton.remove(1, [1, 2])

    def test_empty_event_rejected(self):
        with pytest.raises(MonitoringError):
            SubsetAutomatonMatcher().add(1, [])


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(0, 15), min_size=1, max_size=4, unique=True),
        max_size=8,
    ),
    st.lists(st.integers(0, 15), max_size=10, unique=True),
)
def test_automaton_agrees_with_aes(events, detected):
    automaton = SubsetAutomatonMatcher()
    aes = AESMatcher()
    for code, atomic in enumerate(events, start=1):
        automaton.add(code, sorted(atomic))
        aes.add(code, sorted(atomic))
    detected = sorted(detected)
    assert automaton.match(detected) == sorted(aes.match(detected))


class TestStateExplosion:
    def test_materialize_counts_states(self):
        automaton = SubsetAutomatonMatcher()
        automaton.add(1, [1, 2])
        count = automaton.materialize(alphabet=[1, 2, 3])
        assert count >= 3  # start, {chain@1}, {matched}

    def test_states_grow_with_chains(self):
        """More chains over a shared alphabet -> combinatorial states."""
        counts = []
        for chains in (2, 4, 6):
            automaton = SubsetAutomatonMatcher()
            alphabet = list(range(12))
            for code in range(chains):
                # Overlapping chains (every pair of symbols).
                automaton.add(code + 1, [code, code + 2, code + 4])
            counts.append(automaton.materialize(alphabet))
        assert counts[0] < counts[1] < counts[2]

    def test_state_limit_enforced(self):
        automaton = SubsetAutomatonMatcher(state_limit=50)
        for code in range(12):
            automaton.add(code + 1, [code, code + 3, code + 6, code + 9])
        with pytest.raises(StateExplosionError):
            automaton.materialize(alphabet=list(range(22)))

    def test_lazy_matching_discovers_few_states(self):
        """Matching only materializes states along actual words — the lazy
        automaton is AES-like; the *full* DFA is what explodes."""
        automaton = SubsetAutomatonMatcher()
        for code in range(10):
            automaton.add(code + 1, [code, code + 5])
        automaton.match([0, 5])
        assert automaton.discovered_states() <= 4
