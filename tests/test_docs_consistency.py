"""Documentation stays in sync with the code it describes."""

import os
import re

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(relative):
    with open(os.path.join(ROOT, relative), encoding="utf-8") as handle:
        return handle.read()


class TestDesignDocument:
    def test_every_bench_in_design_exists(self):
        design = read("DESIGN.md")
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", design):
            path = os.path.join(ROOT, "benchmarks", match.group(1))
            assert os.path.exists(path), f"{match.group(1)} listed but absent"

    def test_every_module_in_design_importable(self):
        import importlib

        design = read("DESIGN.md")
        for name in sorted(set(re.findall(r"`(repro(?:\.\w+)+)`", design))):
            try:
                importlib.import_module(name)
            except ModuleNotFoundError:
                # Dotted references may name a class inside a module.
                parent, _, attribute = name.rpartition(".")
                module = importlib.import_module(parent)
                assert hasattr(module, attribute), f"{name} does not exist"


class TestReadme:
    def test_every_bench_file_mentioned(self):
        readme = read("README.md")
        import glob

        for path in glob.glob(os.path.join(ROOT, "benchmarks", "bench_*.py")):
            assert os.path.basename(path) in readme, (
                f"{os.path.basename(path)} missing from README bench table"
            )

    def test_every_example_mentioned(self):
        readme = read("README.md")
        import glob

        for path in glob.glob(os.path.join(ROOT, "examples", "*.py")):
            assert os.path.basename(path) in readme

    def test_quickstart_snippet_runs(self, system):
        # The README's quickstart subscription must actually parse.
        readme = read("README.md")
        match = re.search(
            r'system\.subscribe\("""(.+?)"""', readme, re.DOTALL
        )
        assert match is not None
        system.subscribe(match.group(1), owner_email="readme@example.org")


class TestExperimentsDocument:
    def test_every_experiment_has_a_bench(self):
        experiments = read("EXPERIMENTS.md")
        for match in re.finditer(r"`(bench_\w+\.py)`", experiments):
            path = os.path.join(ROOT, "benchmarks", match.group(1))
            assert os.path.exists(path)

    def test_summary_table_covers_core_experiments(self):
        experiments = read("EXPERIMENTS.md")
        for experiment in ("Fig 5", "Fig 6", "T-c", "T-thr", "T-mem",
                           "T-base", "T-fsa", "T-url", "T-xml", "T-rep",
                           "T-dist", "T-load", "T-sub"):
            assert experiment in experiments


class TestPipelineDocument:
    def test_every_registered_executor_documented(self):
        from repro.pipeline.executors import available

        doc = read("docs/PIPELINE.md")
        for name in available():
            assert f"`{name}`" in doc, f"executor {name} missing"

    def test_migration_table_present(self):
        doc = read("docs/PIPELINE.md")
        assert "## Migration from the pre-registry API" in doc
        for old, new in [
            ("make_executor", "repro.pipeline.executors.create"),
            ("--executor threaded --batch-size 64", "threaded:batch=64"),
            ("EXECUTORS", "available()"),
        ]:
            assert old in doc and new in doc, f"migration row {old!r} missing"

    def test_documented_spec_examples_parse(self):
        from repro.pipeline.executors import ExecutorSpec

        doc = read("docs/PIPELINE.md")
        specs = re.findall(
            r"^((?:serial|threaded|process|sharded)(?::[a-z_]+=\w+"
            r"(?:,[a-z_]+=\w+)*)?)$",
            doc,
            re.MULTILINE,
        )
        assert len(specs) >= 4, "spec grammar examples missing"
        for text in specs:
            spec = ExecutorSpec.parse(text)
            assert spec.render() == text

    def test_documented_spec_keys_match_parser(self):
        from repro.pipeline.executors import _DETECT_VALUES, _INT_KEYS

        doc = read("docs/PIPELINE.md")
        for key in set(_INT_KEYS) | {"detect"}:
            assert f"`{key}`" in doc, f"spec key {key} undocumented"
        for value in _DETECT_VALUES:
            assert value in doc

    def test_ingest_metrics_mentioned(self):
        from repro.observability.names import (
            COUNTER_FRONTEND_FETCHES,
            COUNTER_INGEST_BACKPRESSURE_WAITS,
        )

        doc = read("docs/PIPELINE.md")
        assert COUNTER_INGEST_BACKPRESSURE_WAITS in doc
        assert COUNTER_FRONTEND_FETCHES in doc

    def test_readme_links_pipeline_doc(self):
        assert "docs/PIPELINE.md" in read("README.md")


class TestObservabilityDocument:
    #: Backticked dotted lowercase tokens are metric-shaped; module paths
    #: (``repro...``) and file names are not metric references.
    METRIC_TOKEN = re.compile(r"`([a-z_]+(?:\.[a-z_]+)+)`")
    IGNORED_SUFFIXES = (".py", ".md", ".json", ".yml")

    def test_every_metric_name_documented(self):
        from repro.observability.names import ALL_METRIC_NAMES

        doc = read("docs/OBSERVABILITY.md")
        for name in ALL_METRIC_NAMES:
            assert f"`{name}`" in doc, f"{name} missing from OBSERVABILITY.md"

    def test_every_documented_metric_exists(self):
        from repro.observability.names import (
            ALL_METRIC_NAMES,
            EXECUTOR_STAGE_NAMES,
            STAGE_NAMES,
        )

        known = (
            set(ALL_METRIC_NAMES)
            | set(STAGE_NAMES)
            | set(EXECUTOR_STAGE_NAMES)
        )
        doc = read("docs/OBSERVABILITY.md")
        for token in self.METRIC_TOKEN.findall(doc):
            if token.startswith("repro") or token.endswith(
                self.IGNORED_SUFFIXES
            ):
                continue
            assert token in known, f"OBSERVABILITY.md names unknown {token}"

    def test_readme_links_observability_doc(self):
        assert "docs/OBSERVABILITY.md" in read("README.md")


class TestRobustnessDocument:
    def test_doc_exists_and_linked_from_readme(self):
        assert "Fault tolerance" in read("docs/ROBUSTNESS.md")
        assert "docs/ROBUSTNESS.md" in read("README.md")

    def test_every_fault_metric_documented(self):
        from repro.observability.names import (
            COUNTER_BREAKER_STATE_CHANGES,
            COUNTER_DLQ_QUARANTINED,
            COUNTER_EXECUTOR_FALLBACKS,
            COUNTER_FAULTS_INJECTED,
            COUNTER_RETRY_ATTEMPTS,
            GAUGE_DLQ_DEPTH,
        )

        doc = read("docs/ROBUSTNESS.md")
        for name in (
            COUNTER_BREAKER_STATE_CHANGES,
            COUNTER_DLQ_QUARANTINED,
            COUNTER_EXECUTOR_FALLBACKS,
            COUNTER_FAULTS_INJECTED,
            COUNTER_RETRY_ATTEMPTS,
            GAUGE_DLQ_DEPTH,
        ):
            assert name in doc, f"{name} missing from ROBUSTNESS.md"

    def test_every_documented_fault_class_exists(self):
        import repro.errors

        doc = read("docs/ROBUSTNESS.md")
        for token in re.findall(r"`(Fetch\w+|TruncatedFetch|GarbageFetch)`",
                                doc):
            assert hasattr(repro.errors, token), f"{token} does not exist"

    def test_documented_fault_kinds_match_code(self):
        from repro.faults import FAULT_KINDS

        doc = read("docs/ROBUSTNESS.md")
        for kind in FAULT_KINDS:
            assert f"`{kind}`" in doc, f"kind {kind} missing"

    def test_chaos_command_in_ci_workflow(self):
        workflow = read(".github/workflows/ci.yml")
        assert "repro chaos" in workflow
        assert "--fault-rate" in workflow

    def test_recovery_section_documents_metrics_and_kill_points(self):
        from repro.faults import KILL_POINTS
        from repro.observability.names import (
            COUNTER_EXECUTOR_WATCHDOG_TIMEOUTS,
            COUNTER_RECOVERY_CHECKPOINTS,
            COUNTER_RECOVERY_DEDUPED,
            COUNTER_RECOVERY_REPLAYED,
        )

        doc = read("docs/ROBUSTNESS.md")
        assert "Crash recovery & exactly-once delivery" in doc
        for name in (
            COUNTER_RECOVERY_CHECKPOINTS,
            COUNTER_RECOVERY_REPLAYED,
            COUNTER_RECOVERY_DEDUPED,
            COUNTER_EXECUTOR_WATCHDOG_TIMEOUTS,
        ):
            assert name in doc, f"{name} missing from ROBUSTNESS.md"
        for point in KILL_POINTS:
            assert f"`{point}`" in doc, f"kill point {point} undocumented"

    def test_resume_command_in_ci_workflow(self):
        workflow = read(".github/workflows/ci.yml")
        assert "repro resume" in workflow
        assert "--kill" in workflow
        assert "--journal" in workflow


class TestLanguageReference:
    def test_grammar_examples_parse(self):
        from repro.language import parse_subscription

        # The reference's canonical shapes.
        parse_subscription(
            'subscription S\nmonitoring\nselect <UpdatedPage url=URL/>\n'
            'where URL extends "http://inria.fr/Xy/"\n  and modified self\n'
            "report when immediate"
        )

    def test_language_doc_exists(self):
        assert "subscription" in read("docs/LANGUAGE.md")
