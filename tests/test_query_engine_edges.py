import pytest

from repro.errors import DocumentNotFound, QueryError
from repro.query import QueryEngine, parse_query
from repro.xmlstore import parse


@pytest.fixture
def engine(repository):
    repository.store_xml(
        "http://a.example/doc.xml",
        '<museum><name>A</name><painting year="1700"/></museum>',
    )
    repository.store_xml(
        "http://b.example/doc.xml",
        "<catalog><Product><price>9.5</price></Product></catalog>",
    )
    return QueryEngine(repository)


class TestSources:
    def test_star_source(self, engine):
        result = engine.evaluate("select m from */name m")
        assert len(result) == 1

    def test_doc_source_missing_url_raises(self, engine):
        with pytest.raises(DocumentNotFound):
            engine.evaluate('select x from doc("http://nope/")/a x')

    def test_override_document_ignores_warehouse(self, engine):
        standalone = parse("<list><name>standalone</name></list>")
        result = engine.evaluate_on_document(
            "select n from list/name n", standalone
        )
        assert [item.text_content() for item in result] == ["standalone"]

    def test_from_binding_attribute_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.evaluate("select p from culture/painting@year p")


class TestComparisonSemantics:
    def test_numeric_comparison_on_floats(self, engine):
        result = engine.evaluate(
            "select p from commerce/catalog c, c/Product p"
            " where p/price < 10"
        )
        assert len(result) == 1

    def test_not_equals(self, engine):
        result = engine.evaluate(
            'select m/name from culture/museum m where m/name != "Z"'
        )
        assert len(result) == 1

    def test_missing_path_condition_is_false(self, engine):
        result = engine.evaluate(
            "select m from culture/museum m where m/nonexistent = 1"
        )
        assert len(result) == 0

    def test_condition_on_attribute_path(self, engine):
        result = engine.evaluate(
            "select p from culture/museum m, m/painting p"
            " where p@year >= 1700"
        )
        assert len(result) == 1


class TestResults:
    def test_result_name_precedence(self, engine):
        named = engine.evaluate("select m from culture/museum m", name="X")
        assert named.to_element().tag == "X"
        default = engine.evaluate("select m from culture/museum m")
        assert default.to_element().tag == "result"

    def test_attribute_values_wrapped_in_value_elements(self, engine):
        result = engine.evaluate(
            "select p@year from culture/museum m, m/painting p"
        )
        xml = result.to_xml()
        assert "<value>1700</value>" in xml

    def test_result_iteration_and_len(self, engine):
        result = engine.evaluate("select m from culture/museum m")
        assert len(result) == len(list(result))
