from repro.xmlstore import parse, serialize
from repro.xmlstore.serializer import escape_attribute, escape_text


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_escapes_quotes_too(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"


class TestRoundTrip:
    def test_simple_roundtrip(self):
        source = '<a x="1"><b>text</b><c/></a>'
        assert serialize(parse(source)) == source

    def test_special_characters_roundtrip(self):
        doc = parse("<a>&lt;tag&gt; &amp; friends</a>")
        again = parse(serialize(doc))
        assert again.root.text_content() == "<tag> & friends"

    def test_doctype_preserved(self):
        source = '<!DOCTYPE m SYSTEM "http://d/m.dtd"><m/>'
        doc = parse(source)
        assert 'SYSTEM "http://d/m.dtd"' in serialize(doc)

    def test_mixed_content_roundtrip(self):
        source = "<a>one<b>two</b>three</a>"
        assert serialize(parse(source)) == source

    def test_roundtrip_is_stable(self):
        source = '<r><p k="v">x</p><q/></r>'
        once = serialize(parse(source))
        twice = serialize(parse(once))
        assert once == twice


class TestFormatting:
    def test_empty_element_self_closes(self):
        assert serialize(parse("<a></a>")) == "<a/>"

    def test_xml_declaration_option(self):
        out = serialize(parse("<a/>"), xml_declaration=True)
        assert out.startswith("<?xml")

    def test_indented_output_reparses_equal(self):
        source = '<a><b x="1">text</b><c><d/></c></a>'
        pretty = serialize(parse(source), indent=2)
        assert "\n" in pretty
        assert serialize(parse(pretty)) == source

    def test_serialize_subtree(self):
        doc = parse("<a><b>inner</b></a>")
        assert serialize(doc.root.children[0]) == "<b>inner</b>"
