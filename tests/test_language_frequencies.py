import pytest

from repro.clock import SECONDS_PER_DAY, SECONDS_PER_WEEK
from repro.errors import SubscriptionSyntaxError
from repro.language import period_seconds
from repro.language.frequencies import FREQUENCY_WORDS


class TestPeriods:
    def test_daily(self):
        assert period_seconds("daily") == SECONDS_PER_DAY

    def test_weekly(self):
        assert period_seconds("weekly") == SECONDS_PER_WEEK

    def test_biweekly_means_twice_a_week(self):
        # The paper's gloss: "try biweekly ... twice a week".
        assert period_seconds("biweekly") == SECONDS_PER_WEEK / 2

    def test_monthly_is_thirty_days(self):
        assert period_seconds("monthly") == 30 * SECONDS_PER_DAY

    def test_hourly(self):
        assert period_seconds("hourly") == 3600.0

    def test_unknown_frequency_rejected(self):
        with pytest.raises(SubscriptionSyntaxError):
            period_seconds("fortnightly")

    def test_word_set_matches_periods(self):
        for word in FREQUENCY_WORDS:
            assert period_seconds(word) > 0
