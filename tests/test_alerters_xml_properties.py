"""Property test: the XML alerter's postorder algorithm against a
brute-force reference evaluation of the same conditions."""

from typing import Set

from hypothesis import given, settings, strategies as st

from repro.alerters import XMLAlerter
from repro.alerters.context import FetchedDocument
from repro.core import AtomicEventKey
from repro.repository import DocumentMeta
from repro.xmlstore.nodes import Document, ElementNode, TextNode
from repro.xmlstore.words import unique_words

TAGS = ["a", "b", "Product", "item"]
WORDS = ["camera", "piano", "xml", "word"]


@st.composite
def xml_documents(draw, depth=3):
    def build(level):
        element = ElementNode(draw(st.sampled_from(TAGS)))
        for _ in range(draw(st.integers(0, 3)) if level < depth else 0):
            if draw(st.booleans()):
                element.append(
                    TextNode(
                        " ".join(
                            draw(
                                st.lists(
                                    st.sampled_from(WORDS),
                                    min_size=1,
                                    max_size=3,
                                )
                            )
                        )
                    )
                )
            else:
                element.append(build(level + 1))
        return element

    root = ElementNode("root")
    for _ in range(draw(st.integers(0, 3))):
        root.append(build(1))
    return Document(root)


@st.composite
def condition_sets(draw):
    conditions = []
    for code in range(1, draw(st.integers(1, 8)) + 1):
        kind = draw(st.sampled_from(["self", "contains", "strict", "tag"]))
        tag = draw(st.sampled_from(TAGS))
        word = draw(st.sampled_from(WORDS))
        if kind == "self":
            conditions.append((code, AtomicEventKey("self_contains", word)))
        elif kind == "contains":
            conditions.append(
                (code, AtomicEventKey("tag_present", (tag, word, False)))
            )
        elif kind == "strict":
            conditions.append(
                (code, AtomicEventKey("tag_present", (tag, word, True)))
            )
        else:
            conditions.append(
                (code, AtomicEventKey("tag_present", (tag, None, False)))
            )
    return conditions


def brute_force(document: Document, conditions) -> Set[int]:
    all_words: Set[str] = set()
    for node in document.preorder():
        if isinstance(node, TextNode):
            all_words |= unique_words(node.data)
    detected: Set[int] = set()
    for code, key in conditions:
        if key.kind == "self_contains":
            if key.argument in all_words:
                detected.add(code)
            continue
        tag, word, strict = key.argument
        for node in document.preorder():
            if not isinstance(node, ElementNode) or node.tag != tag:
                continue
            if word is None:
                detected.add(code)
                break
            if strict:
                direct: Set[str] = set()
                for child in node.children:
                    if isinstance(child, TextNode):
                        direct |= unique_words(child.data)
                if word in direct:
                    detected.add(code)
                    break
            else:
                subtree: Set[str] = set()
                for inner in node.preorder():
                    if isinstance(inner, TextNode):
                        subtree |= unique_words(inner.data)
                if word in subtree:
                    detected.add(code)
                    break
    return detected


@settings(max_examples=120, deadline=None)
@given(xml_documents(), condition_sets())
def test_alerter_matches_brute_force(document, conditions):
    alerter = XMLAlerter()
    for code, key in conditions:
        alerter.register(code, key)
    fetched = FetchedDocument(
        url="http://x/",
        meta=DocumentMeta(doc_id=1, url="http://x/"),
        status="unchanged",
        document=document,
    )
    detected, _ = alerter.detect(fetched)
    assert detected == brute_force(document, conditions)


@settings(max_examples=60, deadline=None)
@given(xml_documents(), condition_sets(), st.data())
def test_alerter_consistent_after_unregistrations(document, conditions, data):
    alerter = XMLAlerter()
    for code, key in conditions:
        alerter.register(code, key)
    keep = []
    for code, key in conditions:
        if data.draw(st.booleans(), label=f"keep-{code}"):
            keep.append((code, key))
        else:
            alerter.unregister(code, key)
    fetched = FetchedDocument(
        url="http://x/",
        meta=DocumentMeta(doc_id=1, url="http://x/"),
        status="unchanged",
        document=document,
    )
    detected, _ = alerter.detect(fetched)
    assert detected == brute_force(document, keep)
