import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.alerters import PrefixHashTable, PrefixTrie

STRUCTURES = [PrefixHashTable, PrefixTrie]


@pytest.fixture(params=STRUCTURES, ids=["hash", "trie"])
def structure(request):
    return request.param()


class TestPrefixMatching:
    def test_simple_prefix(self, structure):
        structure.add("http://www.xyleme.com/", 1)
        assert structure.matches("http://www.xyleme.com/products.xml") == {1}

    def test_exact_length_match(self, structure):
        structure.add("http://a/", 1)
        assert structure.matches("http://a/") == {1}

    def test_no_match_when_url_shorter(self, structure):
        structure.add("http://www.long-prefix.com/", 1)
        assert structure.matches("http://www") == set()

    def test_multiple_nested_prefixes(self, structure):
        structure.add("http://a/", 1)
        structure.add("http://a/b/", 2)
        structure.add("http://a/b/c/", 3)
        assert structure.matches("http://a/b/c/page.xml") == {1, 2, 3}
        assert structure.matches("http://a/b/") == {1, 2}

    def test_multiple_codes_per_prefix(self, structure):
        # "thousands of complex events ... involve the url of Amazon's".
        for code in range(5):
            structure.add("http://www.amazon.com/", code)
        assert structure.matches("http://www.amazon.com/catalog/") == set(
            range(5)
        )

    def test_disjoint_prefixes(self, structure):
        structure.add("http://a/", 1)
        structure.add("http://b/", 2)
        assert structure.matches("http://b/x") == {2}

    def test_empty_structure(self, structure):
        assert structure.matches("http://anything/") == set()


class TestRemoval:
    def test_remove_code(self, structure):
        structure.add("http://a/", 1)
        structure.add("http://a/", 2)
        structure.remove("http://a/", 1)
        assert structure.matches("http://a/x") == {2}

    def test_remove_last_code_drops_prefix(self, structure):
        structure.add("http://a/", 1)
        structure.remove("http://a/", 1)
        assert structure.matches("http://a/x") == set()
        assert len(structure) == 0

    def test_remove_unknown_is_noop(self, structure):
        structure.remove("http://never/", 1)
        assert len(structure) == 0


class TestTrieSpecifics:
    def test_trie_prunes_nodes_on_removal(self):
        trie = PrefixTrie()
        trie.add("http://abc/", 1)
        nodes_full = trie.node_count()
        trie.remove("http://abc/", 1)
        assert trie.node_count() < nodes_full
        assert trie.node_count() == 1  # just the root

    def test_trie_memory_overhead_visible(self):
        # The paper rejected the trie for memory: node count is much larger
        # than the number of registered prefixes.
        trie = PrefixTrie()
        hash_table = PrefixHashTable()
        for i in range(50):
            prefix = f"http://site-{i:04d}.example.com/"
            trie.add(prefix, i)
            hash_table.add(prefix, i)
        assert trie.node_count() > len(hash_table) * 5


class TestHashSpecifics:
    def test_scanning_all_prefixes_agrees_with_fast_path(self):
        table = PrefixHashTable()
        rng = random.Random(7)
        prefixes = [
            "http://" + "".join(rng.choices("abc/", k=rng.randint(3, 12)))
            for _ in range(50)
        ]
        for code, prefix in enumerate(prefixes):
            table.add(prefix, code)
        for _ in range(100):
            url = "http://" + "".join(rng.choices("abc/", k=20))
            assert table.matches(url) == table.matches_scanning_all_prefixes(
                url
            )


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.text("abz/:.", min_size=1, max_size=12), st.integers(0, 30)),
        max_size=20,
    ),
    st.text("abz/:.", min_size=0, max_size=25),
)
def test_hash_and_trie_always_agree(entries, url):
    hash_table = PrefixHashTable()
    trie = PrefixTrie()
    for prefix, code in entries:
        hash_table.add(prefix, code)
        trie.add(prefix, code)
    assert hash_table.matches(url) == trie.matches(url)
