"""End-to-end crash recovery: journal, kill points, exactly-once resume.

The tentpole property lives in :class:`TestExactlyOnceCrashRecovery`:
crash a fault-injected crawl at *every* kill point under several seeds,
recover into a fresh world (simulating a new process), resume — and the
final journal must hold exactly the fault-free run's delivery ids, with
``recovery.deduped == recovery.replayed`` proving no delivery was ever
journaled (or would have been emailed) twice.

The satellites around it: journal/WAL unit semantics (including the
torn ``mid-checkpoint`` state), the kill-point switch itself, the
capture/restore error paths, manager wiring + lazily interned metrics,
the process executor's watchdog, and the CLI ``chaos --kill`` →
``resume`` round trip.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError

import pytest

from repro.clock import SimulatedClock
from repro.errors import PipelineError, RecoveryError
from repro.faults import (
    KILL_POINTS,
    CircuitBreaker,
    CrashPoint,
    DeadLetterQueue,
    FaultInjector,
    FaultPlan,
    armed_point,
    clear,
    install,
)
from repro.faults.killpoints import (
    KILL_POINT_MID_CHECKPOINT,
    KILL_POINT_POST_DELIVER,
    KILL_POINT_POST_FETCH,
    KILL_POINT_POST_MATCH,
    KILL_POINT_PRE_DELIVER,
)
from repro.minisql import Database
from repro.pipeline import (
    IngestSession,
    ProcessExecutor,
    SubscriptionSystem,
    from_pairs,
)
from repro.recovery import RecoveryManager, RuntimeJournal
from repro.recovery.state import capture_runtime, restore_runtime
from repro.webworld import ChangeModel, SimulatedCrawler, SiteGenerator

SOURCE = """
subscription Chaos
monitoring NewCam
select X
from self//Product X
where URL extends "http://www.shop"
  and new Product contains "camera"
report when count >= 3
"""

START = 990_000_000.0
END = START + 2 * 86_400
FAULT_RATE = 0.15
SITES = 5
CHECKPOINT_EVERY = 4


@pytest.fixture(autouse=True)
def _disarm_kill_switch():
    clear()
    yield
    clear()


def build_world(subs_db, seed, fault_seed=0):
    clock = SimulatedClock(START)
    system = SubscriptionSystem(clock=clock, database=subs_db, batch_size=4)
    dead_letters = DeadLetterQueue(metrics=system.metrics)
    system.dead_letters = dead_letters
    injector = FaultInjector(
        FaultPlan.transient_only(FAULT_RATE, seed=fault_seed),
        metrics=system.metrics,
    )
    crawler = SimulatedCrawler(
        clock=clock,
        change_model=ChangeModel(seed=seed + 1),
        seed=seed + 2,
        fault_injector=injector,
        dead_letters=dead_letters,
        metrics=system.metrics,
        breaker_factory=lambda: CircuitBreaker(failure_threshold=50),
    )
    return system, crawler


def seed_world(system, crawler, seed):
    generator = SiteGenerator(seed=seed)
    for i in range(SITES):
        crawler.add_xml_page(
            f"http://www.shop{i}.example/catalog/products.xml",
            generator.catalog(products=6),
            change_probability=0.7,
        )
    system.subscribe(SOURCE, owner_email="chaos@example.org")


def drive(system, crawler):
    """Hourly drain until END — the same loop a resumed run re-enters,
    so the regenerated window lines up with the crashed one's."""
    while system.clock.now() < END:
        system.run_stream(crawler.due_fetches())
        system.advance_time(3600)


# ---------------------------------------------------------------------------
# The journal
# ---------------------------------------------------------------------------


class TestRuntimeJournal:
    def test_append_then_load_counts_replayed(self, tmp_path):
        path = str(tmp_path / "j")
        journal = RuntimeJournal(path)
        journal.checkpoint({"k": 1}, {"a:1"}, {"a": 1}, checkpoints=1)
        journal.append_delivery("b:1")
        journal.append_delivery("c:1")
        journal.close()

        reader = RuntimeJournal(path)
        state, seen, occurrences, replayed = reader.load()
        assert state == {"k": 1}
        assert seen == {"a:1", "b:1", "c:1"}
        # Occurrences come from the snapshot ONLY: the resumed run must
        # recompute the post-checkpoint ids itself.
        assert occurrences == {"a": 1}
        assert replayed == 2
        assert reader.loaded_checkpoints == 1
        reader.close()

    def test_checkpoint_truncates_the_log(self, tmp_path):
        path = str(tmp_path / "j")
        journal = RuntimeJournal(path)
        journal.append_delivery("a:1")
        journal.checkpoint({}, {"a:1"}, {"a": 1}, checkpoints=1)
        journal.close()

        reader = RuntimeJournal(path)
        _, seen, _, replayed = reader.load()
        assert seen == {"a:1"}
        assert replayed == 0  # the log record was compacted away
        reader.close()

    def test_torn_mid_checkpoint_state_replays_idempotently(self, tmp_path):
        """Snapshot written, log NOT yet truncated (the ``mid-checkpoint``
        crash window): stale log ids are already in ``seen`` — no-ops."""
        path = str(tmp_path / "j")
        journal = RuntimeJournal(path)
        journal.append_delivery("a:1")
        install(KILL_POINT_MID_CHECKPOINT)
        with pytest.raises(CrashPoint):
            journal.checkpoint({"k": 2}, {"a:1"}, {"a": 1}, checkpoints=1)
        journal.close()

        reader = RuntimeJournal(path)
        state, seen, _, replayed = reader.load()
        assert state == {"k": 2}  # the new snapshot landed before the kill
        assert seen == {"a:1"}
        assert replayed == 0  # stale record absorbed, not replayed
        reader.close()

    def test_unknown_record_op_rejected(self, tmp_path):
        path = str(tmp_path / "j")
        journal = RuntimeJournal(path)
        journal._wal.append({"op": "route", "id": "x"})
        journal.close()
        reader = RuntimeJournal(path)
        with pytest.raises(RecoveryError, match="unknown journal record"):
            reader.load()
        reader.close()

    def test_exists_requires_a_snapshot(self, tmp_path):
        path = str(tmp_path / "j")
        journal = RuntimeJournal(path)
        assert not journal.exists()
        journal.append_delivery("a:1")
        assert not journal.exists()  # a bare log is not a resume point
        journal.checkpoint({}, {"a:1"}, {}, checkpoints=1)
        assert journal.exists()
        journal.close()


# ---------------------------------------------------------------------------
# The kill-point switch
# ---------------------------------------------------------------------------


class TestKillPointHarness:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown kill point"):
            install("post-office")

    def test_at_must_be_positive(self):
        with pytest.raises(ValueError, match="at must be >= 1"):
            install(KILL_POINT_POST_FETCH, at=0)

    def test_fires_on_nth_hit_and_disarms(self):
        from repro.faults.killpoints import maybe_kill

        install(KILL_POINT_POST_MATCH, at=3)
        maybe_kill(KILL_POINT_POST_MATCH)
        maybe_kill(KILL_POINT_POST_FETCH)  # other points never count
        maybe_kill(KILL_POINT_POST_MATCH)
        with pytest.raises(CrashPoint) as crash:
            maybe_kill(KILL_POINT_POST_MATCH)
        assert crash.value.point == KILL_POINT_POST_MATCH
        assert crash.value.hit == 3
        assert armed_point() is None  # one crash per arming
        maybe_kill(KILL_POINT_POST_MATCH)  # now a no-op

    def test_crash_point_is_not_an_exception(self):
        # The pipeline's error isolation catches Exception/ReproError; a
        # simulated process death must sail through both.
        assert issubclass(CrashPoint, BaseException)
        assert not issubclass(CrashPoint, Exception)

    def test_crash_sails_through_the_error_slot(self, tmp_path):
        subs = Database(path=str(tmp_path / "s.subs"))
        system, crawler = build_world(subs, seed=7)
        seed_world(system, crawler, seed=7)
        install(KILL_POINT_POST_MATCH, at=1)
        with pytest.raises(CrashPoint):
            drive(system, crawler)
        # The document was NOT parked as a rejection.
        assert system.documents_rejected == 0


# ---------------------------------------------------------------------------
# Capture/restore error paths
# ---------------------------------------------------------------------------


class TestStateErrors:
    def _fresh_pair(self, tmp_path, seed=7):
        source = Database(path=str(tmp_path / "a.subs"))
        system, crawler = build_world(source, seed=seed)
        seed_world(system, crawler, seed=seed)
        return system, crawler

    def test_version_mismatch_rejected(self, tmp_path):
        system, crawler = self._fresh_pair(tmp_path)
        state = capture_runtime(system, crawler=crawler)
        state["version"] = 999
        fresh = SubscriptionSystem(clock=SimulatedClock(START))
        with pytest.raises(RecoveryError, match="version"):
            restore_runtime(fresh, state)

    def test_clock_rewind_rejected(self, tmp_path):
        system, crawler = self._fresh_pair(tmp_path)
        state = capture_runtime(system, crawler=crawler)
        fresh = SubscriptionSystem(clock=SimulatedClock(START + 1))
        with pytest.raises(RecoveryError, match="rewind"):
            restore_runtime(fresh, state)

    def test_non_empty_repository_rejected(self, tmp_path):
        system, crawler = self._fresh_pair(tmp_path)
        drive(system, crawler)
        state = capture_runtime(system)
        # The captured system itself is not a restore target.
        with pytest.raises(RecoveryError, match="empty repository"):
            restore_runtime(system, state)

    def test_missing_report_buffer_rejected(self, tmp_path):
        system, crawler = self._fresh_pair(tmp_path)
        state = capture_runtime(system)
        # A fresh system that never recovered the subscription database
        # has no buffer for the checkpointed subscription.
        fresh = SubscriptionSystem(clock=SimulatedClock(START))
        with pytest.raises(RecoveryError, match="no report buffer"):
            restore_runtime(fresh, state)

    def test_custom_element_factory_uncapturable(self, tmp_path):
        from repro.xmlstore.nodes import ElementNode

        system, _ = self._fresh_pair(tmp_path)
        clock = SimulatedClock(START)
        crawler = SimulatedCrawler(
            clock=clock,
            change_model=ChangeModel(
                seed=1, element_factory=lambda: ElementNode("custom")
            ),
        )
        with pytest.raises(RecoveryError, match="element_factory"):
            capture_runtime(system, crawler=crawler)

    def test_checkpoint_without_crawler_cannot_restore_one(self, tmp_path):
        system, crawler = self._fresh_pair(tmp_path)
        state = capture_runtime(system)  # no crawler section
        fresh_subs = Database(path=str(tmp_path / "b.subs"))
        fresh, fresh_crawler = build_world(fresh_subs, seed=7)
        seed_world(fresh, fresh_crawler, seed=7)
        with pytest.raises(RecoveryError, match="no crawler state"):
            restore_runtime(fresh, state, crawler=fresh_crawler)


# ---------------------------------------------------------------------------
# Manager wiring + metrics
# ---------------------------------------------------------------------------


class TestRecoveryManager:
    def test_checkpoint_every_validated(self, tmp_path):
        system = SubscriptionSystem(clock=SimulatedClock(START))
        with pytest.raises(RecoveryError, match="checkpoint_every"):
            RecoveryManager(system, str(tmp_path / "j"), checkpoint_every=0)

    def test_second_manager_rejected(self, tmp_path):
        system = SubscriptionSystem(clock=SimulatedClock(START))
        system.enable_recovery(str(tmp_path / "a"))
        with pytest.raises(RecoveryError, match="already has"):
            system.enable_recovery(str(tmp_path / "b"))

    def test_enable_recovery_writes_an_initial_checkpoint(self, tmp_path):
        system = SubscriptionSystem(clock=SimulatedClock(START))
        manager = system.enable_recovery(str(tmp_path / "j"))
        assert manager.checkpoints == 1
        assert manager.journal.exists()
        assert os.path.exists(str(tmp_path / "j") + ".snapshot")

    def test_recover_without_a_journal_rejected(self, tmp_path):
        system = SubscriptionSystem(clock=SimulatedClock(START))
        with pytest.raises(RecoveryError, match="nothing to recover"):
            system.recover_runtime(str(tmp_path / "missing"))

    def test_recovery_metrics_interned_lazily(self, tmp_path):
        """Satellite: a system that never enables recovery keeps a
        byte-identical metric snapshot — no recovery.* series appear."""
        plain = SubscriptionSystem(clock=SimulatedClock(START))
        plain.feed_xml("http://a.example/x.xml", "<r><a>hi</a></r>")
        snapshot = plain.metrics_snapshot()
        for name in list(snapshot["counters"]) + list(snapshot["gauges"]):
            assert not name.startswith("recovery."), name
            assert "watchdog" not in name

        journaled = SubscriptionSystem(clock=SimulatedClock(START))
        journaled.enable_recovery(str(tmp_path / "j"))
        counters = journaled.metrics_snapshot()["counters"]
        assert counters["recovery.checkpoints"] == 1
        assert counters["recovery.deduped"] == 0
        assert counters["recovery.replayed"] == 0

    def test_checkpoint_cadence_counts_batches(self, tmp_path):
        system = SubscriptionSystem(
            clock=SimulatedClock(START), batch_size=2
        )
        manager = system.enable_recovery(
            str(tmp_path / "j"), checkpoint_every=2
        )
        for i in range(4):  # 4 quiescent batches -> 2 checkpoints
            system.feed_batch(
                from_pairs([(f"http://a.example/{i}.xml", "<r><a>hi</a></r>")])
            )
        assert manager.checkpoints == 3  # initial + 2

    def test_mid_stream_checkpoint_deferred_to_stream_end(self, tmp_path):
        system = SubscriptionSystem(
            clock=SimulatedClock(START), batch_size=2
        )
        manager = system.enable_recovery(
            str(tmp_path / "j"), checkpoint_every=1
        )
        during = []
        original = manager.checkpoint

        def spy():
            during.append(manager._stream_active)
            original()

        manager.checkpoint = spy
        pages = [
            (f"http://a.example/{i}.xml", "<r><a>hi</a></r>")
            for i in range(6)
        ]
        system.run_stream(from_pairs(pages))
        # Every checkpoint fired at a quiescent point: never mid-stream.
        assert during and all(active is False for active in during)

    def test_crash_mid_stream_never_checkpoints(self, tmp_path):
        subs = Database(path=str(tmp_path / "s.subs"))
        system, crawler = build_world(subs, seed=7)
        seed_world(system, crawler, seed=7)
        manager = system.enable_recovery(
            str(tmp_path / "j"), crawler=crawler, checkpoint_every=1
        )
        install(KILL_POINT_POST_FETCH, at=1)
        with pytest.raises(CrashPoint):
            drive(system, crawler)
        # Only the initial enable_recovery checkpoint exists: the armed
        # stream aborted before reaching a quiescent point.
        assert manager.checkpoints == 1

    def test_repeated_payloads_get_distinct_ids(self, tmp_path):
        system = SubscriptionSystem(clock=SimulatedClock(START))
        manager = system.enable_recovery(str(tmp_path / "j"))
        manager._on_deliver(1, "Q", [])
        manager._on_deliver(1, "Q", [])
        assert len(manager.seen) == 2
        digests = {i.split(":")[0] for i in manager.seen}
        occurrences = {i.split(":")[1] for i in manager.seen}
        assert len(digests) == 1  # same content -> same digest
        assert occurrences == {"1", "2"}  # ...distinguished by occurrence


# ---------------------------------------------------------------------------
# The tentpole property: crash anywhere, resume, exactly-once
# ---------------------------------------------------------------------------

#: Hit counts chosen so every point fires under every seed: early enough
#: to exist in a 2-day run, late enough to leave real state behind.
CRASH_MATRIX = [
    (KILL_POINT_POST_FETCH, 3),
    (KILL_POINT_POST_MATCH, 2),
    (KILL_POINT_PRE_DELIVER, 1),
    (KILL_POINT_POST_DELIVER, 2),
    # The switch is armed after enable_recovery's initial checkpoint, so
    # hit 1 is the first *mid-run* checkpoint (after checkpoint_every
    # batches) — the torn snapshot-written/log-not-truncated window.
    (KILL_POINT_MID_CHECKPOINT, 1),
]

SEEDS = (7, 11, 23)

_baselines: dict = {}


def fault_free_deliveries(tmp_path_factory, seed):
    """The crash-free run's delivery-id set (cached per seed)."""
    if seed not in _baselines:
        tmp = tmp_path_factory.mktemp(f"baseline-{seed}")
        subs = Database(path=str(tmp / "base.subs"))
        system, crawler = build_world(subs, seed=seed)
        seed_world(system, crawler, seed=seed)
        manager = system.enable_recovery(
            str(tmp / "base.journal"),
            crawler=crawler,
            checkpoint_every=CHECKPOINT_EVERY,
        )
        drive(system, crawler)
        assert manager.seen, "baseline produced no deliveries"
        assert manager.deduped == 0
        _baselines[seed] = frozenset(manager.seen)
    return _baselines[seed]


class TestExactlyOnceCrashRecovery:
    @pytest.mark.parametrize("point,at", CRASH_MATRIX)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_crash_recover_resume_is_exactly_once(
        self, tmp_path, tmp_path_factory, point, at, seed
    ):
        baseline = fault_free_deliveries(tmp_path_factory, seed)
        subs_path = str(tmp_path / "run.subs")
        journal = str(tmp_path / "run.journal")

        # -- the doomed run -------------------------------------------------
        system, crawler = build_world(Database(path=subs_path), seed=seed)
        seed_world(system, crawler, seed=seed)
        system.enable_recovery(
            journal, crawler=crawler, checkpoint_every=CHECKPOINT_EVERY
        )
        install(point, at=at)
        with pytest.raises(CrashPoint) as crash:
            drive(system, crawler)
        assert crash.value.point == point

        # -- a "fresh process": rebuild everything from disk ----------------
        recovered_subs = Database.recover(subs_path)
        fresh, fresh_crawler = build_world(recovered_subs, seed=seed)
        manager = fresh.recover_runtime(journal, crawler=fresh_crawler)
        assert fresh.clock.now() <= END
        drive(fresh, fresh_crawler)

        # -- the exactly-once invariant -------------------------------------
        assert manager.deduped == manager.replayed
        assert set(manager.seen) == set(baseline), (
            f"{point}@{at} seed={seed}: "
            f"missing={len(baseline - manager.seen)} "
            f"extra={len(manager.seen - baseline)}"
        )
        counters = fresh.metrics_snapshot()["counters"]
        assert counters["recovery.deduped"] == manager.deduped
        assert counters["recovery.replayed"] == manager.replayed

    @pytest.mark.parametrize("seed", SEEDS)
    def test_journal_on_disk_never_holds_a_duplicate(
        self, tmp_path, tmp_path_factory, seed
    ):
        """After a post-deliver crash + resume, the on-disk journal
        (snapshot seen-set plus log records) has no repeated id."""
        journal = str(tmp_path / "run.journal")
        system, crawler = build_world(
            Database(path=str(tmp_path / "run.subs")), seed=seed
        )
        seed_world(system, crawler, seed=seed)
        system.enable_recovery(
            journal, crawler=crawler, checkpoint_every=CHECKPOINT_EVERY
        )
        install(KILL_POINT_POST_DELIVER, at=1)
        with pytest.raises(CrashPoint):
            drive(system, crawler)

        fresh, fresh_crawler = build_world(
            Database.recover(str(tmp_path / "run.subs")), seed=seed
        )
        manager = fresh.recover_runtime(journal, crawler=fresh_crawler)
        drive(fresh, fresh_crawler)
        manager.close()

        from repro.minisql.wal import read_snapshot

        snapshot = read_snapshot(journal)
        ids = list(snapshot["seen"])
        with open(journal, encoding="utf-8") as handle:
            import json

            for line in handle:
                if line.strip():
                    ids.append(json.loads(line)["id"])
        assert len(ids) == len(set(ids)), "journal holds a duplicate id"
        assert set(ids) == set(
            fault_free_deliveries(tmp_path_factory, seed)
        )

    def test_resume_requires_a_recovered_system(self):
        system = SubscriptionSystem(clock=SimulatedClock(START))
        session = IngestSession(system)
        with pytest.raises(RecoveryError, match="recover_runtime"):
            session.resume(iter([]))


# ---------------------------------------------------------------------------
# The CLI round trip
# ---------------------------------------------------------------------------


class TestCliCrashResume:
    def test_chaos_kill_then_resume_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        journal = str(tmp_path / "cli.journal")
        args = [
            "chaos",
            "--sites", "3",
            "--days", "2",
            "--fault-rate", "0.15",
            "--seed", "7",
            "--journal", journal,
            "--checkpoint-every", "4",
        ]
        assert main(args + ["--kill", "post-deliver:2"]) == 42
        out = capsys.readouterr().out
        assert "crashed at kill point post-deliver (hit 2)" in out

        assert main(["resume", "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "resume: OK (exactly-once delivery held)" in out

    def test_kill_flag_requires_journal(self, capsys):
        from repro.cli import main

        code = main(
            ["chaos", "--sites", "2", "--days", "1", "--kill", "post-fetch"]
        )
        assert code == 2
        assert "--kill requires --journal" in capsys.readouterr().err

    def test_resume_without_snapshot_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["resume", "--journal", str(tmp_path / "nope")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# The process executor's watchdog
# ---------------------------------------------------------------------------


def _sleepy_slice(requests):
    """Module-level so the pool can pickle it by reference."""
    for seconds in requests:
        time.sleep(seconds)
    return []


class TestWatchdog:
    def test_watchdog_validated(self):
        with pytest.raises(PipelineError, match="watchdog"):
            ProcessExecutor(watchdog=0)

    def test_spec_grammar_accepts_watchdog(self):
        from repro.pipeline.executors import ExecutorSpec, create

        spec = ExecutorSpec.parse("process:watchdog=30")
        assert spec.watchdog == 30
        executor = create("process:workers=1,watchdog=30")
        assert executor.watchdog == 30
        executor.close()

    @pytest.mark.parametrize("name", ["serial", "threaded", "sharded"])
    def test_other_executors_reject_watchdog(self, name):
        from repro.pipeline.executors import create

        with pytest.raises(PipelineError, match="no watchdog"):
            create(f"{name}:watchdog=5")

    def test_hung_worker_times_the_sweep_out(self):
        executor = ProcessExecutor(workers=2, watchdog=0.2)
        try:
            # Two requests -> two slices; the parent takes the first, so
            # the hang lands in the worker process.
            with pytest.raises(FuturesTimeoutError):
                executor._process_sweep(
                    _sleepy_slice, [0.0, 30.0], lambda response: None
                )
        finally:
            executor.close()

    def test_degrade_on_timeout_counts_and_discards_pool(self):
        clock = SimulatedClock(START)
        system = SubscriptionSystem(clock=clock)
        executor = ProcessExecutor(workers=3, watchdog=5)
        executor._ensure_pool()
        assert executor._pool is not None
        executor._degrade(system, FuturesTimeoutError())
        assert executor._pool is None  # a stuck worker poisons the pool
        counters = system.metrics_snapshot()["counters"]
        assert counters["executor.watchdog_timeouts{executor=process}"] == 1
        assert counters["executor.fallbacks{executor=process}"] == 1
        executor.close()

    def test_no_watchdog_timeouts_metric_without_timeouts(self):
        system = SubscriptionSystem(clock=SimulatedClock(START))
        system.feed_xml("http://a.example/x.xml", "<r><a>hi</a></r>")
        assert not any(
            "watchdog" in name
            for name in system.metrics_snapshot()["counters"]
        )
