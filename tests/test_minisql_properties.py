"""Property-based tests of the embedded store.

Invariants:

* a table behaves like a dict keyed by primary key under random operation
  sequences (model-based testing);
* recovery from WAL reproduces the exact table contents, whatever the
  operation sequence and wherever checkpoints fall.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MiniSQLError
from repro.minisql import (
    Column,
    Database,
    Eq,
    INTEGER,
    TEXT,
    schema,
)

USERS = schema(
    "users",
    Column("id", INTEGER, primary_key=True),
    Column("name", TEXT, nullable=False),
    Column("score", INTEGER),
)

# An operation: ("insert", id, name) | ("update", id, score) |
#               ("delete", id) | ("checkpoint",)
operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"), st.integers(0, 15),
            st.sampled_from(["a", "b", "c"]),
        ),
        st.tuples(st.just("update"), st.integers(0, 15), st.integers(0, 99)),
        st.tuples(st.just("delete"), st.integers(0, 15)),
        st.tuples(st.just("checkpoint")),
    ),
    max_size=30,
)


def apply_ops(db, model, ops):
    table = db.table("users")
    for op in ops:
        if op[0] == "insert":
            _, key, name = op
            if key in model:
                with pytest.raises(MiniSQLError):
                    table.insert({"id": key, "name": name})
            else:
                table.insert({"id": key, "name": name})
                model[key] = {"id": key, "name": name, "score": None}
        elif op[0] == "update":
            _, key, score = op
            count = table.update(Eq("id", key), {"score": score})
            if key in model:
                assert count == 1
                model[key]["score"] = score
            else:
                assert count == 0
        elif op[0] == "delete":
            _, key = op
            count = table.delete(Eq("id", key))
            assert count == (1 if key in model else 0)
            model.pop(key, None)
        else:
            db.checkpoint()


def assert_matches_model(table, model):
    assert len(table) == len(model)
    for key, row in model.items():
        assert table.get(key) == row
    for row in table.rows():
        assert model[row["id"]] == row


@settings(max_examples=60, deadline=None)
@given(operations)
def test_table_behaves_like_model(ops):
    db = Database()
    db.create_table(USERS)
    model = {}
    apply_ops(db, model, ops)
    assert_matches_model(db.table("users"), model)


@settings(max_examples=40, deadline=None)
@given(operations)
def test_recovery_reproduces_state(tmp_path_factory, ops):
    path = str(tmp_path_factory.mktemp("wal") / "db.wal")
    db = Database(path=path)
    db.create_table(USERS)
    model = {}
    apply_ops(db, model, ops)
    db.close()

    recovered = Database.recover(path)
    assert_matches_model(recovered.table("users"), model)
    recovered.close()


@settings(max_examples=30, deadline=None)
@given(operations, operations)
def test_recovery_then_more_operations(tmp_path_factory, first, second):
    """State stays correct across a crash in the middle of a workload."""
    path = str(tmp_path_factory.mktemp("wal") / "db.wal")
    db = Database(path=path)
    db.create_table(USERS)
    model = {}
    apply_ops(db, model, first)
    db.close()

    recovered = Database.recover(path)
    apply_ops(recovered, model, second)
    recovered.close()

    final = Database.recover(path)
    assert_matches_model(final.table("users"), model)
    final.close()
